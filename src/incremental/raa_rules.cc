#include "incremental/raa_rules.h"

#include <algorithm>
#include <map>

#include "util/strings.h"

namespace scalein {
namespace {

constexpr size_t kMaxFamily = 32;

/// Antichain insert: keeps only ⊆-minimal sets.
void AddMinimal(std::vector<AttrSet>* family, AttrSet s) {
  for (const AttrSet& kept : *family) {
    if (AttrSubset(kept, s)) return;
  }
  std::erase_if(*family, [&s](const AttrSet& kept) { return AttrSubset(s, kept); });
  if (family->size() < kMaxFamily) family->push_back(std::move(s));
}

bool ControlledBy(const std::vector<AttrSet>& family, const AttrSet& fixed) {
  for (const AttrSet& s : family) {
    if (AttrSubset(s, fixed)) return true;
  }
  return false;
}

/// "(E, attr(E)) ∈ RA_A": via the closure rule this holds iff anything is
/// derivable at all.
bool Fully(const std::vector<AttrSet>& family) { return !family.empty(); }

AttrSet MapAttrs(const AttrSet& s, const std::map<std::string, std::string>& m) {
  AttrSet out;
  for (const std::string& a : s) {
    auto it = m.find(a);
    out.insert(it == m.end() ? a : it->second);
  }
  return out;
}

class RaaEngine {
 public:
  RaaEngine(const Schema& schema, const AccessSchema& access)
      : schema_(schema), access_(access) {}

  Result<RaaSets> Analyze(const RaExpr& e) {
    auto memo = memo_.find(e.Key());
    if (memo != memo_.end()) return memo->second;
    SI_ASSIGN_OR_RETURN(RaaSets sets, Compute(e));
    memo_.emplace(e.Key(), sets);
    return sets;
  }

 private:
  Result<RaaSets> Compute(const RaExpr& e) {
    RaaSets out;
    switch (e.kind()) {
      case RaExpr::Kind::kRelation: {
        const RelationSchema* rs = schema_.FindRelation(e.relation_name());
        if (rs == nullptr) {
          return Status::NotFound("RA leaf over unknown relation '" +
                                  e.relation_name() + "'");
        }
        if (rs->arity() != e.attributes().size()) {
          return Status::InvalidArgument("RA leaf arity mismatch for '" +
                                         e.relation_name() + "'");
        }
        for (const AccessStatement* stmt :
             access_.ForRelation(e.relation_name())) {
          if (!stmt->is_plain()) continue;
          // Map schema attribute names to the leaf's (possibly renamed)
          // output attribute at the same position.
          AttrSet key;
          bool ok = true;
          for (const std::string& a : stmt->key_attrs) {
            std::optional<size_t> pos = rs->AttributePosition(a);
            if (!pos.has_value()) {
              ok = false;
              break;
            }
            key.insert(e.attributes()[*pos]);
          }
          if (ok) AddMinimal(&out.plain, std::move(key));
        }
        // Decrement/increment rules: (R∇, ∅) and (R∆, ∅).
        AddMinimal(&out.decrement, {});
        AddMinimal(&out.increment, {});
        return out;
      }
      case RaExpr::Kind::kSelect: {
        SI_ASSIGN_OR_RETURN(RaaSets child, Analyze(e.input()));
        AttrSet const_bound =
            e.condition().ConstantBoundAttrs(e.input().attributes());
        for (const AttrSet& x : child.plain) {
          AddMinimal(&out.plain, AttrMinus(x, const_bound));
        }
        for (const AttrSet& x : child.decrement) {
          AddMinimal(&out.decrement, x);
        }
        for (const AttrSet& x : child.increment) {
          AddMinimal(&out.increment, x);
        }
        return out;
      }
      case RaExpr::Kind::kProject: {
        SI_ASSIGN_OR_RETURN(RaaSets child, Analyze(e.input()));
        AttrSet y(e.projection().begin(), e.projection().end());
        for (const AttrSet& x : child.plain) {
          if (AttrSubset(x, y)) AddMinimal(&out.plain, x);
        }
        // (πY E)∇ needs (E∇, X), (E, X), (E∆, X) with X ⊆ Y.
        for (const AttrSet& x1 : child.decrement) {
          for (const AttrSet& x2 : child.plain) {
            for (const AttrSet& x3 : child.increment) {
              AttrSet x = AttrUnion(AttrUnion(x1, x2), x3);
              if (AttrSubset(x, y)) AddMinimal(&out.decrement, std::move(x));
            }
          }
        }
        // (πY E)∆ needs (E∆, X) and (E, X) with X ⊆ Y.
        for (const AttrSet& x1 : child.increment) {
          for (const AttrSet& x2 : child.plain) {
            AttrSet x = AttrUnion(x1, x2);
            if (AttrSubset(x, y)) AddMinimal(&out.increment, std::move(x));
          }
        }
        return out;
      }
      case RaExpr::Kind::kRename: {
        SI_ASSIGN_OR_RETURN(RaaSets child, Analyze(e.input()));
        for (const AttrSet& x : child.plain) {
          AddMinimal(&out.plain, MapAttrs(x, e.renaming()));
        }
        for (const AttrSet& x : child.decrement) {
          AddMinimal(&out.decrement, MapAttrs(x, e.renaming()));
        }
        for (const AttrSet& x : child.increment) {
          AddMinimal(&out.increment, MapAttrs(x, e.renaming()));
        }
        return out;
      }
      case RaExpr::Kind::kUnion: {
        SI_ASSIGN_OR_RETURN(RaaSets c1, Analyze(e.left()));
        SI_ASSIGN_OR_RETURN(RaaSets c2, Analyze(e.right()));
        for (const AttrSet& x1 : c1.plain) {
          for (const AttrSet& x2 : c2.plain) {
            AddMinimal(&out.plain, AttrUnion(x1, x2));
          }
        }
        // (E1 ∪ E2)∇: both sides fully controlled, incl. their ∆ parts.
        if (Fully(c1.plain) && Fully(c2.plain) && Fully(c1.increment) &&
            Fully(c2.increment)) {
          for (const AttrSet& x1 : c1.decrement) {
            for (const AttrSet& x2 : c2.decrement) {
              AddMinimal(&out.decrement, AttrUnion(x1, x2));
            }
          }
        }
        // (E1 ∪ E2)∆.
        if (Fully(c1.plain) && Fully(c2.plain)) {
          for (const AttrSet& x1 : c1.increment) {
            for (const AttrSet& x2 : c2.increment) {
              AddMinimal(&out.increment, AttrUnion(x1, x2));
            }
          }
        }
        return out;
      }
      case RaExpr::Kind::kDiff: {
        SI_ASSIGN_OR_RETURN(RaaSets c1, Analyze(e.left()));
        SI_ASSIGN_OR_RETURN(RaaSets c2, Analyze(e.right()));
        if (Fully(c2.plain)) {
          for (const AttrSet& x1 : c1.plain) AddMinimal(&out.plain, x1);
        }
        // (E1 − E2)∇ = (E1∇ − E2) ∪ (E2∆ ∩ E1): needs X ∈ dec(E1),
        // Z ∈ inc(E2), both sides fully controlled.
        if (Fully(c1.plain) && Fully(c2.plain)) {
          for (const AttrSet& x : c1.decrement) {
            for (const AttrSet& z : c2.increment) {
              AddMinimal(&out.decrement, AttrUnion(x, z));
            }
          }
          // (E1 − E2)∆ = (E1∆ − E2new) ∪ (E2∇ ∩ E1new).
          for (const AttrSet& x : c1.increment) {
            for (const AttrSet& z : c2.decrement) {
              AddMinimal(&out.increment, AttrUnion(x, z));
            }
          }
        }
        return out;
      }
      case RaExpr::Kind::kJoin: {
        SI_ASSIGN_OR_RETURN(RaaSets c1, Analyze(e.left()));
        SI_ASSIGN_OR_RETURN(RaaSets c2, Analyze(e.right()));
        AttrSet a1 = e.left().AttributeSet();
        AttrSet a2 = e.right().AttributeSet();
        for (const AttrSet& x1 : c1.plain) {
          for (const AttrSet& x2 : c2.plain) {
            AddMinimal(&out.plain, AttrUnion(x1, AttrMinus(x2, a1)));
            AddMinimal(&out.plain, AttrUnion(x2, AttrMinus(x1, a2)));
          }
        }
        // (E1 ⋈ E2)∇: Xi ∈ dec(Ei), (Ei, Yi) ∈ RA_A:
        //   X1 ∪ X2 ∪ (Y1 − attr(E2)) ∪ (Y2 − attr(E1)).
        for (const AttrSet& x1 : c1.decrement) {
          for (const AttrSet& x2 : c2.decrement) {
            for (const AttrSet& y1 : c1.plain) {
              for (const AttrSet& y2 : c2.plain) {
                AttrSet x = AttrUnion(AttrUnion(x1, x2),
                                      AttrUnion(AttrMinus(y1, a2),
                                                AttrMinus(y2, a1)));
                AddMinimal(&out.decrement, std::move(x));
              }
            }
          }
        }
        // (E1 ⋈ E2)∆: Xi ∈ inc(Ei), (Ei∇, attr(Ei)), (Ei, Yi).
        if (Fully(c1.decrement) && Fully(c2.decrement)) {
          for (const AttrSet& x1 : c1.increment) {
            for (const AttrSet& x2 : c2.increment) {
              for (const AttrSet& y1 : c1.plain) {
                for (const AttrSet& y2 : c2.plain) {
                  AttrSet x = AttrUnion(AttrUnion(x1, x2),
                                        AttrUnion(AttrMinus(y1, a2),
                                                  AttrMinus(y2, a1)));
                  AddMinimal(&out.increment, std::move(x));
                }
              }
            }
          }
        }
        return out;
      }
    }
    SI_CHECK(false);
    return out;
  }

  const Schema& schema_;
  const AccessSchema& access_;
  std::map<const void*, RaaSets> memo_;
};

std::string FamilyToString(const std::vector<AttrSet>& family) {
  std::vector<std::string> parts;
  parts.reserve(family.size());
  for (const AttrSet& s : family) parts.push_back(AttrSetToString(s));
  return "[" + Join(parts, ", ") + "]";
}

}  // namespace

bool RaaSets::PlainControlledBy(const AttrSet& fixed) const {
  return ControlledBy(plain, fixed);
}
bool RaaSets::DecrementControlledBy(const AttrSet& fixed) const {
  return ControlledBy(decrement, fixed);
}
bool RaaSets::IncrementControlledBy(const AttrSet& fixed) const {
  return ControlledBy(increment, fixed);
}

Result<RaaAnalysis> RaaAnalysis::Analyze(const RaExpr& expr,
                                         const Schema& schema,
                                         const AccessSchema& access) {
  SI_RETURN_IF_ERROR(access.Validate(schema));
  RaaEngine engine(schema, access);
  SI_ASSIGN_OR_RETURN(RaaSets sets, engine.Analyze(expr));
  RaaAnalysis out;
  out.root_ = std::make_unique<RaaSets>(std::move(sets));
  return out;
}

std::string RaaAnalysis::ToString() const {
  return "plain=" + FamilyToString(root_->plain) +
         " decrement=" + FamilyToString(root_->decrement) +
         " increment=" + FamilyToString(root_->increment);
}

Result<FoQuery> RaToFoQuery(const RaExpr& expr, const Schema& schema) {
  // Recursive translation; projected-away columns get fresh variables so no
  // quantifier ever shadows an outer variable.
  auto term_for = [](const std::string& attr) {
    return Term::Var(Variable::Named(attr));
  };
  auto translate = [&](auto&& self, const RaExpr& e) -> Result<Formula> {
    switch (e.kind()) {
      case RaExpr::Kind::kRelation: {
        const RelationSchema* rs = schema.FindRelation(e.relation_name());
        if (rs == nullptr) {
          return Status::NotFound("unknown relation '" + e.relation_name() +
                                  "'");
        }
        std::vector<Term> args;
        for (const std::string& a : e.attributes()) args.push_back(term_for(a));
        return Formula::Atom(e.relation_name(), std::move(args));
      }
      case RaExpr::Kind::kSelect: {
        SI_ASSIGN_OR_RETURN(Formula body, self(self, e.input()));
        std::vector<Formula> conjuncts = {body};
        for (const SelectionAtom& c : e.condition().conjuncts) {
          Term lhs = term_for(c.lhs);
          Term rhs = c.rhs_kind == SelectionAtom::Rhs::kAttribute
                         ? term_for(c.rhs_attr)
                         : Term::Const(c.rhs_const);
          Formula eq = Formula::Eq(lhs, rhs);
          conjuncts.push_back(c.negated ? Formula::Not(eq) : eq);
        }
        return Formula::And(std::move(conjuncts));
      }
      case RaExpr::Kind::kProject: {
        SI_ASSIGN_OR_RETURN(Formula body, self(self, e.input()));
        AttrSet keep(e.projection().begin(), e.projection().end());
        std::map<Variable, Term> rename;
        std::vector<Variable> quantified;
        for (const std::string& a : e.input().attributes()) {
          if (keep.count(a)) continue;
          Variable fresh = Variable::Fresh(a);
          rename.emplace(Variable::Named(a), Term::Var(fresh));
          quantified.push_back(fresh);
        }
        return Formula::Exists(std::move(quantified), body.Substitute(rename));
      }
      case RaExpr::Kind::kRename: {
        SI_ASSIGN_OR_RETURN(Formula body, self(self, e.input()));
        std::map<Variable, Term> subst;
        for (const auto& [from, to] : e.renaming()) {
          subst.emplace(Variable::Named(from), term_for(to));
        }
        return body.Substitute(subst);
      }
      case RaExpr::Kind::kUnion: {
        SI_ASSIGN_OR_RETURN(Formula lhs, self(self, e.left()));
        SI_ASSIGN_OR_RETURN(Formula rhs, self(self, e.right()));
        return Formula::Or(std::move(lhs), std::move(rhs));
      }
      case RaExpr::Kind::kDiff: {
        SI_ASSIGN_OR_RETURN(Formula lhs, self(self, e.left()));
        SI_ASSIGN_OR_RETURN(Formula rhs, self(self, e.right()));
        return Formula::And(std::move(lhs), Formula::Not(std::move(rhs)));
      }
      case RaExpr::Kind::kJoin: {
        SI_ASSIGN_OR_RETURN(Formula lhs, self(self, e.left()));
        SI_ASSIGN_OR_RETURN(Formula rhs, self(self, e.right()));
        return Formula::And(std::move(lhs), std::move(rhs));
      }
    }
    return Status::Internal("unreachable RA kind");
  };
  SI_ASSIGN_OR_RETURN(Formula body, translate(translate, expr));
  FoQuery q;
  q.name = "ra";
  for (const std::string& a : expr.attributes()) {
    q.head.push_back(Variable::Named(a));
  }
  q.body = std::move(body);
  return q;
}

}  // namespace scalein
