#include "incremental/delta_rules.h"

#include <algorithm>

#include "eval/ra_evaluator.h"
#include "util/strings.h"

namespace scalein {

size_t Update::TotalTuples() const {
  size_t total = 0;
  for (const auto& [rel, rows] : insertions) total += rows.size();
  for (const auto& [rel, rows] : deletions) total += rows.size();
  return total;
}

Status Update::Validate(const Database& d) const {
  for (const auto& [rel, rows] : deletions) {
    const Relation* r = d.FindRelation(rel);
    if (r == nullptr) return Status::NotFound("update on unknown relation " + rel);
    for (const Tuple& t : rows) {
      if (!r->Contains(t)) {
        return Status::InvalidArgument("∇D tuple not present in D: " + rel +
                                       TupleToString(t));
      }
    }
  }
  for (const auto& [rel, rows] : insertions) {
    const Relation* r = d.FindRelation(rel);
    if (r == nullptr) return Status::NotFound("update on unknown relation " + rel);
    for (const Tuple& t : rows) {
      if (r->Contains(t)) {
        return Status::InvalidArgument("∆D tuple already present in D: " + rel +
                                       TupleToString(t));
      }
    }
  }
  return Status::OK();
}

std::string Update::ToString() const {
  std::string out;
  for (const auto& [rel, rows] : insertions) {
    for (const Tuple& t : rows) out += "+" + rel + TupleToString(t) + " ";
  }
  for (const auto& [rel, rows] : deletions) {
    for (const Tuple& t : rows) out += "-" + rel + TupleToString(t) + " ";
  }
  return out;
}

void ApplyUpdate(Database* d, const Update& u) {
  for (const auto& [rel, rows] : u.deletions) {
    for (const Tuple& t : rows) d->Remove(rel, t);
  }
  for (const auto& [rel, rows] : u.insertions) {
    for (const Tuple& t : rows) d->Insert(rel, t);
  }
}

void RevertUpdate(Database* d, const Update& u) {
  for (const auto& [rel, rows] : u.insertions) {
    for (const Tuple& t : rows) d->Remove(rel, t);
  }
  for (const auto& [rel, rows] : u.deletions) {
    for (const Tuple& t : rows) d->Insert(rel, t);
  }
}

Relation ApplyDelta(const Relation& old_result, const DeltaResult& delta) {
  Relation out = old_result.Clone();
  for (size_t i = 0; i < delta.removed.size(); ++i) {
    out.Remove(delta.removed.TupleAt(i));
  }
  for (size_t i = 0; i < delta.inserted.size(); ++i) {
    out.Insert(delta.inserted.TupleAt(i));
  }
  return out;
}

namespace {

size_t PositionOf(const std::vector<std::string>& attrs,
                  const std::string& name) {
  auto it = std::find(attrs.begin(), attrs.end(), name);
  SI_CHECK(it != attrs.end());
  return static_cast<size_t>(it - attrs.begin());
}

std::vector<size_t> PositionsOf(const std::vector<std::string>& attrs,
                                const std::vector<std::string>& names) {
  std::vector<size_t> out;
  out.reserve(names.size());
  for (const std::string& n : names) out.push_back(PositionOf(attrs, n));
  return out;
}

/// Lazily materializes subexpression values on the old and new databases;
/// the change-propagation rules only probe these for membership of candidate
/// tuples, mirroring the structure of the GLT maintenance expressions.
class DeltaEngine {
 public:
  DeltaEngine(const Database* d_old, const Database* d_new)
      : d_old_(d_old), d_new_(d_new) {}

  const Relation& Old(const RaExpr& e) { return Cache(&old_cache_, e, *d_old_); }
  const Relation& New(const RaExpr& e) { return Cache(&new_cache_, e, *d_new_); }

  DeltaResult Delta(const RaExpr& e, const Update& u) {
    switch (e.kind()) {
      case RaExpr::Kind::kRelation: {
        DeltaResult out{Relation(e.attributes().size()),
                        Relation(e.attributes().size())};
        auto del = u.deletions.find(e.relation_name());
        if (del != u.deletions.end()) {
          for (const Tuple& t : del->second) out.removed.Insert(t);
        }
        auto ins = u.insertions.find(e.relation_name());
        if (ins != u.insertions.end()) {
          for (const Tuple& t : ins->second) out.inserted.Insert(t);
        }
        return out;
      }
      case RaExpr::Kind::kSelect: {
        // (σθ E)∇ = σθ(E∇); (σθ E)∆ = σθ(E∆).
        DeltaResult child = Delta(e.input(), u);
        const std::vector<std::string>& attrs = e.input().attributes();
        DeltaResult out{Relation(attrs.size()), Relation(attrs.size())};
        for (size_t i = 0; i < child.removed.size(); ++i) {
          TupleView row = child.removed.TupleAt(i);
          if (EvalCondition(e.condition(), attrs, row)) out.removed.Insert(row);
        }
        for (size_t i = 0; i < child.inserted.size(); ++i) {
          TupleView row = child.inserted.TupleAt(i);
          if (EvalCondition(e.condition(), attrs, row)) out.inserted.Insert(row);
        }
        return out;
      }
      case RaExpr::Kind::kRename: {
        return Delta(e.input(), u);  // data unchanged
      }
      case RaExpr::Kind::kProject: {
        // (πY E)∇ = πY(E∇) − πY(E_new);  (πY E)∆ = πY(E∆) − πY(E_old).
        DeltaResult child = Delta(e.input(), u);
        std::vector<size_t> positions =
            PositionsOf(e.input().attributes(), e.projection());
        DeltaResult out{Relation(positions.size()), Relation(positions.size())};
        if (child.removed.size() > 0) {
          Relation& child_new = MutableNew(e.input());
          const HashIndex& idx = child_new.EnsureIndex(positions);
          for (size_t i = 0; i < child.removed.size(); ++i) {
            Tuple proj = ProjectTuple(child.removed.TupleAt(i), positions);
            // Canonical index order may differ from projection order.
            Tuple key = ProjectTuple(child.removed.TupleAt(i), idx.positions());
            if (idx.Lookup(key) == nullptr) out.removed.Insert(proj);
          }
        }
        if (child.inserted.size() > 0) {
          Relation& child_old = MutableOld(e.input());
          const HashIndex& idx = child_old.EnsureIndex(positions);
          for (size_t i = 0; i < child.inserted.size(); ++i) {
            Tuple proj = ProjectTuple(child.inserted.TupleAt(i), positions);
            Tuple key = ProjectTuple(child.inserted.TupleAt(i), idx.positions());
            if (idx.Lookup(key) == nullptr) out.inserted.Insert(proj);
          }
        }
        return out;
      }
      case RaExpr::Kind::kUnion: {
        DeltaResult d1 = Delta(e.left(), u);
        DeltaResult d2 = Delta(e.right(), u);
        std::vector<size_t> align =
            PositionsOf(e.right().attributes(), e.left().attributes());
        DeltaResult out{Relation(e.attributes().size()),
                        Relation(e.attributes().size())};
        auto each = [&](const Relation& rel, bool aligned, auto&& fn) {
          for (size_t i = 0; i < rel.size(); ++i) {
            Tuple t = aligned ? ToTuple(rel.TupleAt(i))
                              : ProjectTuple(rel.TupleAt(i), align);
            fn(t);
          }
        };
        // Removed: left or right removal that is in neither new side.
        auto try_remove = [&](const Tuple& t) {
          if (!InNew(e.left(), t, {}) && !InNewAligned(e.right(), t, align)) {
            out.removed.Insert(t);
          }
        };
        each(d1.removed, true, try_remove);
        each(d2.removed, false, try_remove);
        auto try_insert = [&](const Tuple& t) {
          if (!InOld(e.left(), t, {}) && !InOldAligned(e.right(), t, align)) {
            out.inserted.Insert(t);
          }
        };
        each(d1.inserted, true, try_insert);
        each(d2.inserted, false, try_insert);
        return out;
      }
      case RaExpr::Kind::kDiff: {
        // (E1 − E2)∇ candidates: E1∇ ∪ E2∆; (E1 − E2)∆: E1∆ ∪ E2∇.
        DeltaResult d1 = Delta(e.left(), u);
        DeltaResult d2 = Delta(e.right(), u);
        std::vector<size_t> align =
            PositionsOf(e.right().attributes(), e.left().attributes());
        DeltaResult out{Relation(e.attributes().size()),
                        Relation(e.attributes().size())};
        auto in_old_diff = [&](const Tuple& t) {
          return InOld(e.left(), t, {}) && !InOldAligned(e.right(), t, align);
        };
        auto in_new_diff = [&](const Tuple& t) {
          return InNew(e.left(), t, {}) && !InNewAligned(e.right(), t, align);
        };
        auto consider_removed = [&](const Tuple& t) {
          if (in_old_diff(t) && !in_new_diff(t)) out.removed.Insert(t);
        };
        auto consider_inserted = [&](const Tuple& t) {
          if (!in_old_diff(t) && in_new_diff(t)) out.inserted.Insert(t);
        };
        for (size_t i = 0; i < d1.removed.size(); ++i) {
          consider_removed(ToTuple(d1.removed.TupleAt(i)));
        }
        for (size_t i = 0; i < d2.inserted.size(); ++i) {
          consider_removed(ProjectTuple(d2.inserted.TupleAt(i), align));
        }
        for (size_t i = 0; i < d1.inserted.size(); ++i) {
          consider_inserted(ToTuple(d1.inserted.TupleAt(i)));
        }
        for (size_t i = 0; i < d2.removed.size(); ++i) {
          consider_inserted(ProjectTuple(d2.removed.TupleAt(i), align));
        }
        return out;
      }
      case RaExpr::Kind::kJoin: {
        return JoinDelta(e, u);
      }
    }
    SI_CHECK(false);
    return DeltaResult{Relation(0), Relation(0)};
  }

 private:
  const Relation& Cache(std::map<const void*, Relation>* cache, const RaExpr& e,
                        const Database& db) {
    auto it = cache->find(e.Key());
    if (it != cache->end()) return it->second;
    auto [pos, inserted] = cache->emplace(e.Key(), EvalRa(e, db));
    (void)inserted;
    return pos->second;
  }
  Relation& MutableOld(const RaExpr& e) {
    Old(e);
    return old_cache_.at(e.Key());
  }
  Relation& MutableNew(const RaExpr& e) {
    New(e);
    return new_cache_.at(e.Key());
  }

  bool InOld(const RaExpr& e, const Tuple& t, const std::vector<size_t>&) {
    return Old(e).Contains(t);
  }
  bool InNew(const RaExpr& e, const Tuple& t, const std::vector<size_t>&) {
    return New(e).Contains(t);
  }
  /// Membership of a left-aligned tuple in the right child (whose column
  /// order differs): `align[i]` is the right-side position of left column i.
  bool InOldAligned(const RaExpr& e, const Tuple& t,
                    const std::vector<size_t>& align) {
    return Old(e).Contains(Unalign(t, align));
  }
  bool InNewAligned(const RaExpr& e, const Tuple& t,
                    const std::vector<size_t>& align) {
    return New(e).Contains(Unalign(t, align));
  }
  static Tuple Unalign(const Tuple& t, const std::vector<size_t>& align) {
    Tuple out(t.size(), Value());
    // align maps right-position -> left index order: align was computed as
    // PositionsOf(right_attrs, left_attrs): align[left_i] = right position of
    // left attr i. So right tuple r satisfies r[align[i]] = t[i].
    for (size_t i = 0; i < t.size(); ++i) out[align[i]] = t[i];
    return out;
  }

  DeltaResult JoinDelta(const RaExpr& e, const Update& u) {
    DeltaResult d1 = Delta(e.left(), u);
    DeltaResult d2 = Delta(e.right(), u);
    const std::vector<std::string>& lattrs = e.left().attributes();
    const std::vector<std::string>& rattrs = e.right().attributes();
    AttrSet lset(lattrs.begin(), lattrs.end());
    std::vector<size_t> r_shared;
    std::vector<size_t> l_shared;
    std::vector<size_t> r_extra;
    for (size_t rp = 0; rp < rattrs.size(); ++rp) {
      if (lset.count(rattrs[rp])) {
        r_shared.push_back(rp);
        l_shared.push_back(PositionOf(lattrs, rattrs[rp]));
      } else {
        r_extra.push_back(rp);
      }
    }
    DeltaResult out{Relation(e.attributes().size()),
                    Relation(e.attributes().size())};

    // Combined-row membership in a join factorizes through its projections.
    auto in_join = [&](const Relation& left, const Relation& right,
                       TupleView combined) {
      Tuple lrow(combined.begin(), combined.begin() + lattrs.size());
      Tuple rrow(rattrs.size(), Value());
      for (size_t i = 0; i < r_shared.size(); ++i) {
        rrow[r_shared[i]] = combined[l_shared[i]];
      }
      for (size_t i = 0; i < r_extra.size(); ++i) {
        rrow[r_extra[i]] = combined[lattrs.size() + i];
      }
      return left.Contains(lrow) && right.Contains(rrow);
    };

    // Generates combined rows joining `delta_side` rows with `other` rows.
    auto emit_left_join = [&](const Relation& left_rows, Relation& other,
                              auto&& sink) {
      if (left_rows.size() == 0) return;
      const HashIndex& idx = other.EnsureIndex(r_shared);
      for (size_t i = 0; i < left_rows.size(); ++i) {
        TupleView lrow = left_rows.TupleAt(i);
        Tuple key;
        key.reserve(idx.positions().size());
        for (size_t rp : idx.positions()) {
          // idx.positions() are canonical-sorted right shared positions.
          size_t si =
              static_cast<size_t>(std::find(r_shared.begin(), r_shared.end(),
                                            rp) -
                                  r_shared.begin());
          key.push_back(lrow[l_shared[si]]);
        }
        const std::vector<uint32_t>* rows = idx.Lookup(key);
        if (rows == nullptr) continue;
        for (uint32_t r : *rows) {
          TupleView rrow = other.TupleAt(r);
          Tuple combined(lrow.begin(), lrow.end());
          for (size_t rp : r_extra) combined.push_back(rrow[rp]);
          sink(combined);
        }
      }
    };
    auto emit_right_join = [&](Relation& left_all, const Relation& right_rows,
                               auto&& sink) {
      if (right_rows.size() == 0) return;
      const HashIndex& idx = left_all.EnsureIndex(l_shared);
      for (size_t i = 0; i < right_rows.size(); ++i) {
        TupleView rrow = right_rows.TupleAt(i);
        Tuple key;
        key.reserve(idx.positions().size());
        for (size_t lp : idx.positions()) {
          size_t si = static_cast<size_t>(
              std::find(l_shared.begin(), l_shared.end(), lp) -
              l_shared.begin());
          key.push_back(rrow[r_shared[si]]);
        }
        const std::vector<uint32_t>* rows = idx.Lookup(key);
        if (rows == nullptr) continue;
        for (uint32_t r : *rows) {
          TupleView lrow = left_all.TupleAt(r);
          Tuple combined(lrow.begin(), lrow.end());
          for (size_t rp : r_extra) combined.push_back(rrow[rp]);
          sink(combined);
        }
      }
    };

    // Removed: (E1∇ ⋈ E2_old) ∪ (E1_old ⋈ E2∇), filtered out of the new join.
    auto removed_sink = [&](const Tuple& combined) {
      if (!in_join(New(e.left()), New(e.right()), combined)) {
        out.removed.Insert(combined);
      }
    };
    emit_left_join(d1.removed, MutableOld(e.right()), removed_sink);
    emit_right_join(MutableOld(e.left()), d2.removed, removed_sink);

    // Inserted: (E1∆ ⋈ E2_new) ∪ (E1_new ⋈ E2∆), filtered out of the old join.
    auto inserted_sink = [&](const Tuple& combined) {
      if (!in_join(Old(e.left()), Old(e.right()), combined)) {
        out.inserted.Insert(combined);
      }
    };
    emit_left_join(d1.inserted, MutableNew(e.right()), inserted_sink);
    emit_right_join(MutableNew(e.left()), d2.inserted, inserted_sink);
    return out;
  }

  const Database* d_old_;
  const Database* d_new_;
  std::map<const void*, Relation> old_cache_;
  std::map<const void*, Relation> new_cache_;
};

}  // namespace

Result<DeltaResult> ComputeDelta(const RaExpr& expr, const Database& d,
                                 const Update& u) {
  SI_RETURN_IF_ERROR(u.Validate(d));
  Database d_new = d.Clone();
  ApplyUpdate(&d_new, u);
  DeltaEngine engine(&d, &d_new);
  return engine.Delta(expr, u);
}

}  // namespace scalein
