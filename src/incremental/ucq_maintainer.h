#ifndef SCALEIN_INCREMENTAL_UCQ_MAINTAINER_H_
#define SCALEIN_INCREMENTAL_UCQ_MAINTAINER_H_

#include <vector>

#include "incremental/maintainer.h"
#include "query/cq.h"

namespace scalein {

/// Bounded incremental maintenance for UCQs (the paper's complexity results
/// for CQ carry to UCQ, §2 Remark): one per-disjunct maintainer plus
/// per-disjunct materialized answer sets, whose union is the query answer.
/// Set-union semantics makes deletions subtle — an answer leaves the union
/// only when every disjunct drops it — which is why the disjunct-level sets
/// are kept materialized.
class UcqMaintainer {
 public:
  static Result<UcqMaintainer> Create(const Ucq& q, const Schema& schema,
                                      const AccessSchema& access,
                                      const VarSet& params);

  /// True if insertions into `relation` are boundedly maintainable for every
  /// disjunct mentioning it.
  bool SupportsInsertions(const std::string& relation) const;

  /// True if every disjunct supports deletions.
  bool SupportsDeletions() const;

  /// Forwards the resource envelope to every per-disjunct maintainer;
  /// Maintain additionally pins a relative deadline once per call so all
  /// disjunct phases share one wall clock.
  void set_limits(const exec::GovernorLimits& limits);

  /// Full evaluation of every disjunct; returns the union. Must be called
  /// before the first Maintain.
  Result<AnswerSet> Initialize(Database* db, const Binding& params);

  /// Applies `u` to `*db`, maintains the per-disjunct sets, and returns the
  /// fresh union.
  Result<AnswerSet> Maintain(Database* db, const Update& u,
                             const Binding& params,
                             BoundedEvalStats* stats = nullptr);

  /// The current union (valid after Initialize).
  AnswerSet CurrentAnswers() const;

  const Ucq& query() const { return query_; }

 private:
  UcqMaintainer(Ucq q, VarSet params)
      : query_(std::move(q)), params_(std::move(params)) {}

  Ucq query_;
  VarSet params_;
  exec::GovernorLimits limits_;
  std::vector<IncrementalMaintainer> maintainers_;
  std::vector<AnswerSet> disjunct_answers_;
  bool initialized_ = false;
};

}  // namespace scalein

#endif  // SCALEIN_INCREMENTAL_UCQ_MAINTAINER_H_
