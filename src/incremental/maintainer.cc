#include "incremental/maintainer.h"

#include <algorithm>

#include "eval/cq_evaluator.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "util/failpoint.h"

namespace scalein {
namespace {

/// Existentially closes `atoms` keeping `keep` free; the head lists the kept
/// variables in VarSet order.
FoQuery ResidualQuery(const std::string& name, const std::vector<CqAtom>& atoms,
                      const VarSet& keep) {
  VarSet body_vars;
  for (const CqAtom& a : atoms) {
    VarSet av = a.Vars();
    body_vars.insert(av.begin(), av.end());
  }
  VarSet kept = VarIntersect(keep, body_vars);
  VarSet quantified = VarMinus(body_vars, kept);

  FoQuery q;
  q.name = name;
  q.head.assign(kept.begin(), kept.end());
  if (atoms.empty()) {
    q.body = Formula::True();
    return q;
  }
  std::vector<Formula> conjuncts;
  conjuncts.reserve(atoms.size());
  for (const CqAtom& a : atoms) {
    conjuncts.push_back(Formula::Atom(a.relation, a.args));
  }
  q.body = Formula::Exists(
      std::vector<Variable>(quantified.begin(), quantified.end()),
      Formula::And(std::move(conjuncts)));
  return q;
}

}  // namespace

Result<IncrementalMaintainer> IncrementalMaintainer::Create(
    const Cq& q, const Schema& schema, const AccessSchema& access,
    const VarSet& params) {
  SI_RETURN_IF_ERROR(access.Validate(schema));
  IncrementalMaintainer m(q, params);
  const VarSet head_vars = q.HeadVars();

  for (size_t i = 0; i < q.atoms().size(); ++i) {
    Occurrence occ;
    occ.atom_index = i;
    std::vector<CqAtom> others = q.atoms();
    others.erase(others.begin() + static_cast<ptrdiff_t>(i));
    VarSet atom_vars = q.atoms()[i].Vars();
    VarSet keep = VarUnion(VarUnion(head_vars, params), atom_vars);
    occ.residual =
        ResidualQuery(q.name() + "_res" + std::to_string(i), others, keep);
    SI_ASSIGN_OR_RETURN(
        ControllabilityAnalysis analysis,
        ControllabilityAnalysis::Analyze(occ.residual.body, schema, access));
    occ.analysis =
        std::make_shared<ControllabilityAnalysis>(std::move(analysis));
    VarSet given = VarUnion(params, atom_vars);
    occ.controlled = occ.analysis->IsControlledBy(given);
    if (occ.controlled) {
      SI_ASSIGN_OR_RETURN(occ.fetch_bound,
                          occ.analysis->StaticFetchBound(given));
    }
    m.occurrences_.push_back(std::move(occ));
  }

  // Membership re-check query for deletions.
  m.membership_query_ =
      ResidualQuery(q.name() + "_member", q.atoms(), VarUnion(head_vars, params));
  SI_ASSIGN_OR_RETURN(ControllabilityAnalysis membership,
                      ControllabilityAnalysis::Analyze(
                          m.membership_query_.body, schema, access));
  m.membership_analysis_ =
      std::make_shared<ControllabilityAnalysis>(std::move(membership));
  bool all_controlled = true;
  for (const Occurrence& occ : m.occurrences_) {
    all_controlled &= occ.controlled;
  }
  m.deletions_supported_ =
      all_controlled &&
      m.membership_analysis_->IsControlledBy(VarUnion(head_vars, params));
  return m;
}

bool IncrementalMaintainer::SupportsInsertions(
    const std::string& relation) const {
  for (const Occurrence& occ : occurrences_) {
    if (query_.atoms()[occ.atom_index].relation == relation && !occ.controlled) {
      return false;
    }
  }
  return true;
}

bool IncrementalMaintainer::SupportsDeletions() const {
  return deletions_supported_;
}

double IncrementalMaintainer::FetchBoundPerInsertedTuple(
    const std::string& relation) const {
  double bound = 0;
  for (const Occurrence& occ : occurrences_) {
    if (query_.atoms()[occ.atom_index].relation == relation) {
      bound += occ.fetch_bound;
    }
  }
  return bound;
}

Result<AnswerSet> IncrementalMaintainer::InitialAnswers(
    Database* db, const Binding& params) const {
  obs::ScopedSpan span(obs::Tracer::Global(), "incremental.initial_answers",
                       "incremental");
  CqEvaluator eval(db);
  return eval.EvaluateFull(query_, params);
}

std::optional<Binding> IncrementalMaintainer::UnifyAtom(
    size_t atom_index, TupleView t, const Binding& params) const {
  const CqAtom& atom = query_.atoms()[atom_index];
  if (atom.args.size() != t.size()) return std::nullopt;
  Binding env = params;
  for (size_t p = 0; p < atom.args.size(); ++p) {
    const Term& term = atom.args[p];
    if (term.is_const()) {
      if (!(term.constant() == t[p])) return std::nullopt;
      continue;
    }
    auto it = env.find(term.var());
    if (it != env.end()) {
      if (!(it->second == t[p])) return std::nullopt;
    } else {
      env.emplace(term.var(), t[p]);
    }
  }
  return env;
}

Status IncrementalMaintainer::CollectAnswers(
    const Occurrence& occ, Database* db, const Binding& env, AnswerSet* out,
    BoundedEvalStats* stats, const exec::GovernorLimits& limits) const {
  BoundedEvaluator be(db);
  be.set_limits(limits);
  SI_ASSIGN_OR_RETURN(AnswerSet partial,
                      be.Evaluate(occ.residual, *occ.analysis, env, stats));
  // Residual answers cover the head variables not bound by env, in the
  // residual's head order.
  std::vector<Variable> open;
  for (const Variable& v : occ.residual.head) {
    if (!env.count(v)) open.push_back(v);
  }
  for (const Tuple& row : partial) {
    Binding full = env;
    for (size_t i = 0; i < open.size(); ++i) full.emplace(open[i], row[i]);
    Tuple head;
    head.reserve(query_.head().size());
    bool ok = true;
    for (const Term& h : query_.head()) {
      if (h.is_const()) {
        head.push_back(h.constant());
        continue;
      }
      auto it = full.find(h.var());
      if (it == full.end()) {
        ok = false;
        break;
      }
      head.push_back(it->second);
    }
    SI_CHECK_MSG(ok, "residual did not bind every head variable");
    out->insert(std::move(head));
  }
  return Status::OK();
}

Status IncrementalMaintainer::CollectDeletionCandidates(
    Database* db, const Update& u, const Binding& params,
    AnswerSet* candidates, BoundedEvalStats* stats) const {
  return CollectDeletionCandidatesImpl(db, u, params, candidates, stats,
                                       limits_.Pinned());
}

Status IncrementalMaintainer::CollectDeletionCandidatesImpl(
    Database* db, const Update& u, const Binding& params,
    AnswerSet* candidates, BoundedEvalStats* stats,
    const exec::GovernorLimits& limits) const {
  obs::ScopedSpan span(obs::Tracer::Global(),
                       "incremental.collect_candidates", "incremental");
  size_t total_deletions = 0;
  for (const auto& [rel, rows] : u.deletions) total_deletions += rows.size();
  if (total_deletions == 0) return Status::OK();
  if (!deletions_supported_) {
    return Status::FailedPrecondition(
        "query '" + query_.name() +
        "' does not support bounded maintenance under deletions");
  }
  for (const Occurrence& occ : occurrences_) {
    const std::string& rel = query_.atoms()[occ.atom_index].relation;
    auto it = u.deletions.find(rel);
    if (it == u.deletions.end()) continue;
    for (const Tuple& t : it->second) {
      std::optional<Binding> env = UnifyAtom(occ.atom_index, t, params);
      if (!env.has_value()) continue;
      SI_RETURN_IF_ERROR(
          CollectAnswers(occ, db, *env, candidates, stats, limits));
    }
  }
  return Status::OK();
}

Status IncrementalMaintainer::IntegrateInsertions(Database* db, const Update& u,
                                                  const Binding& params,
                                                  AnswerSet* answers,
                                                  BoundedEvalStats* stats) const {
  return IntegrateInsertionsImpl(db, u, params, answers, stats,
                                 limits_.Pinned());
}

Status IncrementalMaintainer::IntegrateInsertionsImpl(
    Database* db, const Update& u, const Binding& params, AnswerSet* answers,
    BoundedEvalStats* stats, const exec::GovernorLimits& limits) const {
  obs::ScopedSpan span(obs::Tracer::Global(),
                       "incremental.integrate_insertions", "incremental");
  // Evaluated on D ⊕ ∆D so joins among several inserted tuples are covered.
  for (const Occurrence& occ : occurrences_) {
    const std::string& rel = query_.atoms()[occ.atom_index].relation;
    auto it = u.insertions.find(rel);
    if (it == u.insertions.end()) continue;
    if (!occ.controlled) {
      return Status::FailedPrecondition(
          "insertions into '" + rel + "' are not boundedly maintainable: " +
          "residual of atom " + std::to_string(occ.atom_index) +
          " is not controlled");
    }
    for (const Tuple& t : it->second) {
      std::optional<Binding> env = UnifyAtom(occ.atom_index, t, params);
      if (!env.has_value()) continue;
      SI_RETURN_IF_ERROR(
          CollectAnswers(occ, db, *env, answers, stats, limits));
    }
  }
  return Status::OK();
}

Status IncrementalMaintainer::RecheckCandidates(Database* db,
                                                const AnswerSet& candidates,
                                                const Binding& params,
                                                AnswerSet* answers,
                                                BoundedEvalStats* stats) const {
  return RecheckCandidatesImpl(db, candidates, params, answers, stats,
                               limits_.Pinned());
}

Status IncrementalMaintainer::RecheckCandidatesImpl(
    Database* db, const AnswerSet& candidates, const Binding& params,
    AnswerSet* answers, BoundedEvalStats* stats,
    const exec::GovernorLimits& limits) const {
  obs::ScopedSpan span(obs::Tracer::Global(),
                       "incremental.recheck_candidates", "incremental");
  for (const Tuple& candidate : candidates) {
    if (!answers->count(candidate)) continue;
    // Bind head variables to the candidate's values.
    Binding env = params;
    bool consistent = true;
    for (size_t i = 0; i < query_.head().size() && consistent; ++i) {
      const Term& h = query_.head()[i];
      if (h.is_const()) {
        consistent = h.constant() == candidate[i];
        continue;
      }
      auto it = env.find(h.var());
      if (it != env.end()) {
        consistent = it->second == candidate[i];
      } else {
        env.emplace(h.var(), candidate[i]);
      }
    }
    if (!consistent) continue;
    BoundedEvaluator be(db);
    be.set_limits(limits);
    SI_ASSIGN_OR_RETURN(
        AnswerSet still,
        be.Evaluate(membership_query_, *membership_analysis_, env, stats));
    if (still.empty()) answers->erase(candidate);
  }
  return Status::OK();
}

Status IncrementalMaintainer::Maintain(Database* db, const Update& u,
                                       const Binding& params,
                                       AnswerSet* answers,
                                       BoundedEvalStats* stats) const {
  obs::ScopedSpan span(obs::Tracer::Global(), "incremental.maintain",
                       "incremental");
  if (span.enabled()) {
    uint64_t ins = 0, del = 0;
    for (const auto& [name, rows] : u.insertions) ins += rows.size();
    for (const auto& [name, rows] : u.deletions) del += rows.size();
    span.Arg("insertions", ins);
    span.Arg("deletions", del);
  }
  if (obs::FlightRecorderEnabled()) {
    uint64_t ins = 0, del = 0;
    for (const auto& [name, rows] : u.insertions) ins += rows.size();
    for (const auto& [name, rows] : u.deletions) del += rows.size();
    obs::RecordFlightEvent(
        obs::EventKind::kMaintenanceStep, "incremental.maintain",
        {obs::EventArg("insertions", ins), obs::EventArg("deletions", del)});
  }
  SI_RETURN_IF_ERROR(u.Validate(*db));
  // One pinned deadline for the whole batch: all three phases (and every
  // per-tuple bounded evaluation inside them) share the same wall clock.
  const exec::GovernorLimits pinned = limits_.Pinned();
  AnswerSet deletion_candidates;
  SI_RETURN_IF_ERROR(CollectDeletionCandidatesImpl(
      db, u, params, &deletion_candidates, stats, pinned));
  // Failing here (before ApplyUpdate) leaves both the database and the
  // maintained answer set untouched — the chaos harness relies on that.
  if (Status s = SCALEIN_FAILPOINT("delta_apply"); !s.ok()) return s;
  ApplyUpdate(db, u);
  SI_RETURN_IF_ERROR(
      IntegrateInsertionsImpl(db, u, params, answers, stats, pinned));
  return RecheckCandidatesImpl(db, deletion_candidates, params, answers, stats,
                               pinned);
}

}  // namespace scalein
