#ifndef SCALEIN_INCREMENTAL_MAINTAINER_H_
#define SCALEIN_INCREMENTAL_MAINTAINER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/bounded_eval.h"
#include "core/controllability.h"
#include "incremental/delta_rules.h"
#include "query/cq.h"

namespace scalein {

/// Bounded incremental maintenance of a parameterized CQ (§5 made
/// executable: Corollary 5.3 and Proposition 5.5).
///
/// For each atom occurrence o of the query, the *residual query* replaces o
/// by a concrete update tuple (the paper's occurrence-substitution ∆Q —
/// compare ∆Q2 in Example 1.1(b)). When every residual is controlled under
/// the access schema by the parameters plus the occurrence's variables,
/// insertions maintain Q(D) with O(|∆D|) bounded lookups — the 3·|∆D| fetch
/// bound of Example 1.1(b). Deletions additionally need the whole body to be
/// controlled by parameters + head variables, so removed candidates can be
/// re-checked membership-wise.
class IncrementalMaintainer {
 public:
  /// Builds maintenance plans for `q` with the variables of `params` fixed.
  /// Fails only on structural errors; unsupported update paths are reported
  /// through SupportsInsertions/SupportsDeletions.
  static Result<IncrementalMaintainer> Create(const Cq& q, const Schema& schema,
                                              const AccessSchema& access,
                                              const VarSet& params);

  /// True if insertions into `relation` can be maintained boundedly (every
  /// occurrence's residual is controlled).
  bool SupportsInsertions(const std::string& relation) const;

  /// True if deletions (from any relation of the query) are maintainable:
  /// residuals controlled and the body re-checkable given head + params.
  bool SupportsDeletions() const;

  /// Resource envelope applied to every inner bounded evaluation. The fetch
  /// budget is per-evaluation (each residual/membership check gets the full
  /// budget — the per-tuple bound the paper's O(|∆D|) maintenance cost is
  /// built from); a relative deadline is pinned once per Maintain call so
  /// the whole update batch shares one wall clock.
  void set_limits(const exec::GovernorLimits& limits) { limits_ = limits; }
  const exec::GovernorLimits& limits() const { return limits_; }

  /// Static bound on base tuples fetched per inserted tuple into `relation`.
  double FetchBoundPerInsertedTuple(const std::string& relation) const;

  /// Full evaluation of Q(params, D): the once-and-offline precomputation.
  Result<AnswerSet> InitialAnswers(Database* db, const Binding& params) const;

  /// Applies `u` to `*db` and maintains `*answers` (which must currently
  /// equal Q(params, D)). Base-relation accesses are counted into `stats`;
  /// they are bounded by |∆D| times the static per-tuple bounds, independent
  /// of |D|.
  Status Maintain(Database* db, const Update& u, const Binding& params,
                  AnswerSet* answers, BoundedEvalStats* stats = nullptr) const;

  // --- Phase API ---
  // For callers coordinating several maintainers over ONE shared update
  // (e.g. the disjuncts of a UCQ): run CollectDeletionCandidates on every
  // maintainer *before* ApplyUpdate, then IntegrateInsertions and
  // RecheckCandidates after. Maintain() is the single-query composition.

  /// Phase 1 (pre-update): answers that might lose support under `u`'s
  /// deletions. Fails if deletions are present but unsupported.
  Status CollectDeletionCandidates(Database* db, const Update& u,
                                   const Binding& params, AnswerSet* candidates,
                                   BoundedEvalStats* stats = nullptr) const;

  /// Phase 2 (post-update): inserts answers gained through `u`'s insertions.
  Status IntegrateInsertions(Database* db, const Update& u,
                             const Binding& params, AnswerSet* answers,
                             BoundedEvalStats* stats = nullptr) const;

  /// Phase 3 (post-update): re-checks each candidate's membership and erases
  /// the ones that no longer hold.
  Status RecheckCandidates(Database* db, const AnswerSet& candidates,
                           const Binding& params, AnswerSet* answers,
                           BoundedEvalStats* stats = nullptr) const;

  const Cq& query() const { return query_; }

 private:
  struct Occurrence {
    size_t atom_index;
    FoQuery residual;  ///< remaining atoms, existentially closed
    std::shared_ptr<ControllabilityAnalysis> analysis;
    bool controlled = false;
    double fetch_bound = 0;
  };

  IncrementalMaintainer(Cq q, VarSet params)
      : query_(std::move(q)), params_(std::move(params)) {}

  /// Unifies atom `atom_index`'s arguments with `t` under `params`; returns
  /// the extended binding or nullopt on mismatch.
  std::optional<Binding> UnifyAtom(size_t atom_index, TupleView t,
                                   const Binding& params) const;

  /// Evaluates the residual of `occ` under `env`, emitting full head tuples.
  /// `limits` is the (already pinned) envelope for this evaluation.
  Status CollectAnswers(const Occurrence& occ, Database* db, const Binding& env,
                        AnswerSet* out, BoundedEvalStats* stats,
                        const exec::GovernorLimits& limits) const;

  // Pinned-limits internals behind the public phase API (the public phases
  // pin `limits_` themselves; Maintain pins once for all three).
  Status CollectDeletionCandidatesImpl(Database* db, const Update& u,
                                       const Binding& params,
                                       AnswerSet* candidates,
                                       BoundedEvalStats* stats,
                                       const exec::GovernorLimits& limits) const;
  Status IntegrateInsertionsImpl(Database* db, const Update& u,
                                 const Binding& params, AnswerSet* answers,
                                 BoundedEvalStats* stats,
                                 const exec::GovernorLimits& limits) const;
  Status RecheckCandidatesImpl(Database* db, const AnswerSet& candidates,
                               const Binding& params, AnswerSet* answers,
                               BoundedEvalStats* stats,
                               const exec::GovernorLimits& limits) const;

  Cq query_;
  VarSet params_;
  exec::GovernorLimits limits_;
  std::vector<Occurrence> occurrences_;
  /// Membership re-check: body controlled by params + head variables.
  FoQuery membership_query_;
  std::shared_ptr<ControllabilityAnalysis> membership_analysis_;
  bool deletions_supported_ = false;
};

}  // namespace scalein

#endif  // SCALEIN_INCREMENTAL_MAINTAINER_H_
