#ifndef SCALEIN_INCREMENTAL_DELTA_RULES_H_
#define SCALEIN_INCREMENTAL_DELTA_RULES_H_

#include <map>
#include <string>
#include <vector>

#include "query/ra_expr.h"
#include "relational/database.h"
#include "util/status.h"

namespace scalein {

/// An update ∆D = (∆D, ∇D) (§5): per-relation insertion and deletion sets.
/// Validity requires ∇D ⊆ D and ∆D ∩ D = ∅ (hence ∆D ∩ ∇D = ∅).
struct Update {
  std::map<std::string, std::vector<Tuple>> insertions;  ///< ∆D
  std::map<std::string, std::vector<Tuple>> deletions;   ///< ∇D

  /// |∆D|: total tuples inserted plus deleted.
  size_t TotalTuples() const;

  bool empty() const { return TotalTuples() == 0; }

  Status Validate(const Database& d) const;

  void AddInsertion(const std::string& relation, Tuple t) {
    insertions[relation].push_back(std::move(t));
  }
  void AddDeletion(const std::string& relation, Tuple t) {
    deletions[relation].push_back(std::move(t));
  }

  std::string ToString() const;
};

/// D ⊕ ∆D: applies deletions then insertions, relation-wise.
void ApplyUpdate(Database* d, const Update& u);

/// Undoes a previously applied update (valid only immediately after
/// ApplyUpdate on the same database).
void RevertUpdate(Database* d, const Update& u);

/// The deltas of an RA expression under an update:
///   E∇ = E(D) − E(D ⊕ ∆D)   (removed: E∇ ⊆ E(D))
///   E∆ = E(D ⊕ ∆D) − E(D)   (inserted: E∆ ∩ E(D) = ∅)
struct DeltaResult {
  Relation removed;
  Relation inserted;
};

/// Computes E∇ / E∆ compositionally via the Griffin–Libkin–Trickey
/// change-propagation rules ([14] in the paper) — the maintenance queries
/// §5 assumes. `d` must be the *pre-update* database. The implementation
/// materializes subexpressions as needed; the minimality guarantees
/// (E∇ ⊆ E, E∆ ∩ E = ∅) are exact, and property tests check the result
/// against the semantic definition above.
Result<DeltaResult> ComputeDelta(const RaExpr& expr, const Database& d,
                                 const Update& u);

/// Maintains a materialized result: given E(D) and the deltas, produces
/// E(D ⊕ ∆D) = (E(D) − E∇) ∪ E∆.
Relation ApplyDelta(const Relation& old_result, const DeltaResult& delta);

}  // namespace scalein

#endif  // SCALEIN_INCREMENTAL_DELTA_RULES_H_
