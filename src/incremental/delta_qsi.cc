#include "incremental/delta_qsi.h"

#include <algorithm>

#include "eval/cq_evaluator.h"
#include "exec/governor.h"
#include "obs/trace.h"

namespace scalein {
namespace {

/// Minimum number of old-database tuples needed to derive all new answers of
/// one update, or nullopt if some new answer has no support (cannot happen
/// for valid updates) or the budget is exceeded. `*search_exact` reports
/// whether the inner cover search was exhaustive — a nullopt from an inexact
/// (node-capped or governor-tripped) search is inconclusive, not a "no".
std::optional<uint64_t> MinOldTuplesForUpdate(const Cq& q, Database* db,
                                              const AnswerSet& old_answers,
                                              const TupleSet& delta_tuples,
                                              uint64_t budget,
                                              const QdsiOptions& qdsi,
                                              bool* search_exact) {
  CqEvaluator eval(db);
  AnswerSet new_answers = eval.EvaluateFull(q);

  std::vector<std::vector<TupleSet>> per_answer;
  for (const Tuple& a : new_answers) {
    if (old_answers.count(a)) continue;  // already known; no access needed
    std::vector<TupleSet> supports =
        AnswerSupports(q, *db, a, qdsi.max_supports_per_answer);
    // Tuples of ∆D are free: strip them from each support.
    std::vector<TupleSet> discounted;
    discounted.reserve(supports.size());
    for (const TupleSet& s : supports) {
      TupleSet old_part;
      for (const TupleRef& t : s) {
        if (!delta_tuples.count(t)) old_part.insert(t);
      }
      discounted.push_back(std::move(old_part));
    }
    // Keep minimal sets only.
    std::sort(discounted.begin(), discounted.end(),
              [](const TupleSet& a2, const TupleSet& b) {
                return a2.size() < b.size();
              });
    std::vector<TupleSet> minimal;
    for (TupleSet& s : discounted) {
      bool dominated = false;
      for (const TupleSet& kept : minimal) {
        if (std::includes(s.begin(), s.end(), kept.begin(), kept.end())) {
          dominated = true;
          break;
        }
      }
      if (!dominated) minimal.push_back(std::move(s));
    }
    per_answer.push_back(std::move(minimal));
  }
  if (per_answer.empty()) return static_cast<uint64_t>(0);
  MinWitnessResult cover =
      MinimumSupportCover(per_answer, budget, qdsi.governor);
  *search_exact = cover.exact;
  if (!cover.witness.has_value()) return std::nullopt;
  return static_cast<uint64_t>(cover.witness->size());
}

}  // namespace

DeltaQsiDecision DecideDeltaQsiCqInsertions(const Cq& q, const Database& d,
                                            uint64_t m, uint64_t k,
                                            const DeltaQsiOptions& options) {
  obs::ScopedSpan span(obs::Tracer::Global(), "delta_qsi.decide_insertions",
                       "incremental");
  DeltaQsiDecision decision;
  Database* db = const_cast<Database*>(&d);
  CqEvaluator eval(db);
  AnswerSet old_answers = eval.EvaluateFull(q);

  // Usable universe: candidate insertions not already in D.
  std::vector<TupleRef> universe;
  for (const TupleRef& t : options.insertion_universe) {
    const Relation* rel = d.FindRelation(t.relation);
    if (rel != nullptr && !rel->Contains(t.tuple)) universe.push_back(t);
  }
  const size_t n = universe.size();
  const size_t max_size = std::min<size_t>(k, n);

  bool capped = false;
  for (size_t size = 1; size <= max_size && !capped; ++size) {
    std::vector<size_t> idx(size);
    for (size_t i = 0; i < size; ++i) idx[i] = i;
    bool more = true;
    while (more) {
      if (++decision.updates_checked > options.max_updates) {
        capped = true;
        break;
      }
      // A governed enumeration degrades like a capped one (kUnknown).
      if (options.qdsi.governor != nullptr &&
          !options.qdsi.governor->Checkpoint()) {
        capped = true;
        break;
      }
      Update u;
      TupleSet delta_tuples;
      for (size_t i : idx) {
        u.AddInsertion(universe[i].relation, universe[i].tuple);
        delta_tuples.insert(universe[i]);
      }
      ApplyUpdate(db, u);
      bool search_exact = true;
      std::optional<uint64_t> cost = MinOldTuplesForUpdate(
          q, db, old_answers, delta_tuples, m, options.qdsi, &search_exact);
      RevertUpdate(db, u);
      if (!cost.has_value()) {
        if (!search_exact) {
          // The cover search was cut short (node cap or governor trip): the
          // missing witness is inconclusive, not a counterexample.
          capped = true;
          break;
        }
        decision.verdict = Verdict::kNo;
        decision.counterexample = std::move(u);
        if (span.enabled()) {
          span.Arg("m", m);
          span.Arg("k", k);
          span.Arg("verdict", VerdictName(decision.verdict));
          span.Arg("updates_checked", decision.updates_checked);
        }
        return decision;
      }
      decision.worst_fetch = std::max(decision.worst_fetch, *cost);
      // Next combination.
      size_t j = size;
      bool advanced = false;
      while (j > 0) {
        --j;
        if (idx[j] != j + n - size) {
          ++idx[j];
          for (size_t l = j + 1; l < size; ++l) idx[l] = idx[l - 1] + 1;
          advanced = true;
          break;
        }
      }
      if (!advanced) more = false;
    }
  }
  decision.verdict = capped ? Verdict::kUnknown : Verdict::kYes;
  if (span.enabled()) {
    span.Arg("m", m);
    span.Arg("k", k);
    span.Arg("verdict", VerdictName(decision.verdict));
    span.Arg("updates_checked", decision.updates_checked);
    span.Arg("worst_fetch", decision.worst_fetch);
  }
  return decision;
}

}  // namespace scalein
