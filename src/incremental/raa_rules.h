#ifndef SCALEIN_INCREMENTAL_RAA_RULES_H_
#define SCALEIN_INCREMENTAL_RAA_RULES_H_

#include <memory>
#include <string>
#include <vector>

#include "core/access_schema.h"
#include "query/formula.h"
#include "query/ra_expr.h"
#include "relational/schema.h"
#include "util/status.h"

namespace scalein {

/// The controlling-attribute families of one RA expression node: X-sets with
/// (E, X), (E∇, X), (E∆, X) ∈ RA_A (§5). Stored as ⊆-minimal antichains;
/// the closure rule (X ⊆ Y ⊆ attr(E) ⇒ (E, Y) ∈ RA_A) is implicit.
struct RaaSets {
  std::vector<AttrSet> plain;      ///< (E, X)
  std::vector<AttrSet> decrement;  ///< (E∇, X)
  std::vector<AttrSet> increment;  ///< (E∆, X)

  bool PlainControlledBy(const AttrSet& fixed) const;
  bool DecrementControlledBy(const AttrSet& fixed) const;
  bool IncrementControlledBy(const AttrSet& fixed) const;
};

/// Derivation engine for the §5 rule system RA_A over relational algebra:
/// the relational-algebra rules, the decrement rules for E∇, and the
/// increment rules for E∆.
class RaaAnalysis {
 public:
  static Result<RaaAnalysis> Analyze(const RaExpr& expr, const Schema& schema,
                                     const AccessSchema& access);

  const RaaSets& root() const { return *root_; }

  /// Theorem 5.4(1): (E, X) ∈ RA_A for some X ⊆ `fixed` means σ_{fixed=ā}(E)
  /// is scale-independent under A.
  bool IsScaleIndependent(const AttrSet& fixed) const {
    return root_->PlainControlledBy(fixed);
  }

  /// Theorem 5.4(2): both (E∆, X) and (E∇, X) derivable with X ⊆ `fixed`
  /// means σ_{fixed=ā}(E) is *incrementally* scale-independent under A.
  bool IsIncrementallyScaleIndependent(const AttrSet& fixed) const {
    return root_->DecrementControlledBy(fixed) &&
           root_->IncrementControlledBy(fixed);
  }

  std::string ToString() const;

 private:
  RaaAnalysis() = default;
  std::unique_ptr<RaaSets> root_;
};

/// Translates an RA expression to an equivalent FO query whose head variables
/// are named after the output attributes. Used to cross-validate the RAA
/// rules against the §4 controllability engine (a derived (E, X) should make
/// the translated query X-controlled) and to execute σ_{X=ā}(E) through the
/// bounded evaluator.
Result<FoQuery> RaToFoQuery(const RaExpr& expr, const Schema& schema);

}  // namespace scalein

#endif  // SCALEIN_INCREMENTAL_RAA_RULES_H_
