#ifndef SCALEIN_QUERY_FORMULA_H_
#define SCALEIN_QUERY_FORMULA_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "query/term.h"

namespace scalein {

/// Node kinds of the FO query language of §2 (equivalently, full relational
/// algebra). `kImplies` is kept as an explicit connective (rather than
/// desugaring to ¬∨) so the universal-quantification controllability rule
/// ∀ȳ(Q → Q') of §4 can be recognized syntactically.
enum class FormulaKind : uint8_t {
  kTrue,
  kFalse,
  kAtom,     ///< R(t1, ..., tk)
  kEq,       ///< t1 = t2
  kNot,      ///< ¬ f
  kAnd,      ///< f1 ∧ ... ∧ fn (n >= 1)
  kOr,       ///< f1 ∨ ... ∨ fn (n >= 1)
  kImplies,  ///< f1 → f2
  kExists,   ///< ∃ v1...vk . f
  kForall,   ///< ∀ v1...vk . f
};

/// Immutable first-order formula with shared subterms. Copying a Formula is
/// O(1) (shared_ptr bump); all construction goes through the static factories.
class Formula {
 public:
  static Formula True();
  static Formula False();
  static Formula Atom(std::string relation, std::vector<Term> args);
  static Formula Eq(Term lhs, Term rhs);
  static Formula Not(Formula f);
  static Formula And(std::vector<Formula> operands);
  static Formula And(Formula a, Formula b) { return And(std::vector{a, b}); }
  static Formula Or(std::vector<Formula> operands);
  static Formula Or(Formula a, Formula b) { return Or(std::vector{a, b}); }
  static Formula Implies(Formula premise, Formula conclusion);
  static Formula Exists(std::vector<Variable> vars, Formula body);
  static Formula Forall(std::vector<Variable> vars, Formula body);

  FormulaKind kind() const;

  // Accessors; each aborts unless the node has the right kind.
  const std::string& relation() const;            // kAtom
  const std::vector<Term>& args() const;          // kAtom
  const Term& eq_lhs() const;                     // kEq
  const Term& eq_rhs() const;                     // kEq
  const Formula& child() const;                   // kNot
  const std::vector<Formula>& operands() const;   // kAnd, kOr
  const Formula& premise() const;                 // kImplies
  const Formula& conclusion() const;              // kImplies
  const std::vector<Variable>& quantified() const;  // kExists, kForall
  const Formula& body() const;                    // kExists, kForall

  /// Free variables (memoized per node).
  const VarSet& FreeVariables() const;

  /// Node count, a simple size measure for the complexity experiments.
  size_t Size() const;

  /// Structural equality (same tree up to node identity).
  bool Equals(const Formula& other) const;

  /// Text rendering using the parser's concrete syntax.
  std::string ToString() const;

  /// Capture-avoiding substitution of terms for free variables. Bound
  /// variables that would capture a substituted variable are renamed fresh.
  Formula Substitute(const std::map<Variable, Term>& subst) const;

  /// True for formulas built only from equality atoms, ∧, ∨, ¬, kTrue/kFalse
  /// — the "conditions" of the §4 controllability rules.
  bool IsEqualityCondition() const;

  bool SamePointer(const Formula& other) const { return node_ == other.node_; }

 private:
  struct Node;
  explicit Formula(std::shared_ptr<const Node> node) : node_(std::move(node)) {}

  std::shared_ptr<const Node> node_;
};

/// A named FO query Q(x̄): a formula plus the declared order of its free
/// variables (the answer-column order). A Boolean query has an empty head.
struct FoQuery {
  std::string name;
  std::vector<Variable> head;
  Formula body = Formula::True();

  /// Head as a set.
  VarSet HeadSet() const { return VarSet(head.begin(), head.end()); }

  bool IsBoolean() const { return head.empty(); }

  /// Verifies head == free(body) as sets; the invariant all engines assume.
  bool IsWellFormed() const;

  std::string ToString() const;
};

}  // namespace scalein

#endif  // SCALEIN_QUERY_FORMULA_H_
