#ifndef SCALEIN_QUERY_TERM_H_
#define SCALEIN_QUERY_TERM_H_

#include <cstdint>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "relational/value.h"

namespace scalein {

/// A query variable. Variables are interned process-wide by name, so the same
/// name always denotes the same variable across queries, views, and rewritten
/// formulas — which makes combining formulas from different sources (e.g.,
/// view unfolding in §6) trivial and safe.
class Variable {
 public:
  /// The variable with the given name (interned).
  static Variable Named(std::string_view name);

  /// A globally fresh variable whose name starts with `hint` (used by
  /// rewriting and delta-query construction to avoid capture).
  static Variable Fresh(std::string_view hint = "v");

  const std::string& name() const;
  uint32_t id() const { return id_; }

  bool operator==(const Variable& o) const { return id_ == o.id_; }
  bool operator!=(const Variable& o) const { return id_ != o.id_; }
  /// Orders by intern id: deterministic for a fixed construction order.
  bool operator<(const Variable& o) const { return id_ < o.id_; }

 private:
  explicit Variable(uint32_t id) : id_(id) {}
  uint32_t id_;
};

/// Ordered set of variables; the representation of the controlling tuples x̄
/// of §4 (the paper treats them as sets, cf. its Remark on set-theoretic
/// tuple operations).
using VarSet = std::set<Variable>;

/// Renders "{x, y}" with names sorted for stable output.
std::string VarSetToString(const VarSet& vars);

/// Set helpers mirroring the paper's x̄ ∪ ȳ and x̄ − ȳ.
VarSet VarUnion(const VarSet& a, const VarSet& b);
VarSet VarMinus(const VarSet& a, const VarSet& b);
VarSet VarIntersect(const VarSet& a, const VarSet& b);
bool VarSubset(const VarSet& a, const VarSet& b);

/// A term is a variable or a constant (§2: relation atoms R(x̄) may mention
/// constants after normalizing x = c equalities).
class Term {
 public:
  static Term Var(Variable v) { return Term(v, true); }
  static Term Const(Value v) { return Term(v); }

  bool is_var() const { return is_var_; }
  bool is_const() const { return !is_var_; }

  Variable var() const {
    SI_CHECK(is_var_);
    return var_;
  }
  const Value& constant() const {
    SI_CHECK(!is_var_);
    return value_;
  }

  bool operator==(const Term& o) const {
    if (is_var_ != o.is_var_) return false;
    return is_var_ ? var_ == o.var_ : value_ == o.value_;
  }
  bool operator!=(const Term& o) const { return !(*this == o); }
  bool operator<(const Term& o) const {
    if (is_var_ != o.is_var_) return is_var_ < o.is_var_;
    return is_var_ ? var_ < o.var_ : value_ < o.value_;
  }

  std::string ToString() const {
    return is_var_ ? var_.name() : value_.ToString();
  }

 private:
  Term(Variable v, bool) : var_(v), is_var_(true) {}
  explicit Term(Value v) : var_(Variable::Named("_unused")), value_(v),
                           is_var_(false) {}

  Variable var_;
  Value value_;
  bool is_var_;
};

}  // namespace scalein

#endif  // SCALEIN_QUERY_TERM_H_
