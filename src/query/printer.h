#ifndef SCALEIN_QUERY_PRINTER_H_
#define SCALEIN_QUERY_PRINTER_H_

#include <string>
#include <vector>

namespace scalein {

/// Fixed-width ASCII table writer used by the benchmark harness to print
/// paper-style result tables ("who wins, by what factor, where the crossover
/// falls"). Columns are right-aligned except the first.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Adds one row; must match the header width.
  void AddRow(std::vector<std::string> row);

  /// Renders the table with a separator under the header.
  std::string Render() const;

  /// Renders and writes to stdout.
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant decimals ("12.34").
std::string FormatDouble(double v, int digits = 2);

/// Human-readable count with thousands separators ("12,345,678").
std::string FormatCount(uint64_t v);

}  // namespace scalein

#endif  // SCALEIN_QUERY_PRINTER_H_
