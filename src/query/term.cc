#include "query/term.h"

#include <algorithm>
#include <unordered_map>

#include "util/strings.h"

namespace scalein {
namespace {

class VariableInterner {
 public:
  static VariableInterner& Global() {
    static VariableInterner& pool = *new VariableInterner();
    return pool;
  }

  uint32_t Intern(std::string_view name) {
    auto it = ids_.find(std::string(name));
    if (it != ids_.end()) return it->second;
    uint32_t id = static_cast<uint32_t>(names_.size());
    names_.emplace_back(name);
    ids_.emplace(names_.back(), id);
    return id;
  }

  bool Known(const std::string& name) const { return ids_.count(name) > 0; }

  const std::string& Lookup(uint32_t id) const {
    SI_CHECK_LT(id, names_.size());
    return names_[id];
  }

  uint32_t NextFreshCounter() { return fresh_counter_++; }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, uint32_t> ids_;
  uint32_t fresh_counter_ = 0;
};

}  // namespace

Variable Variable::Named(std::string_view name) {
  return Variable(VariableInterner::Global().Intern(name));
}

Variable Variable::Fresh(std::string_view hint) {
  VariableInterner& pool = VariableInterner::Global();
  for (;;) {
    std::string candidate = std::string(hint) + "$" +
                            std::to_string(pool.NextFreshCounter());
    if (!pool.Known(candidate)) return Named(candidate);
  }
}

const std::string& Variable::name() const {
  return VariableInterner::Global().Lookup(id_);
}

std::string VarSetToString(const VarSet& vars) {
  std::vector<std::string> names;
  names.reserve(vars.size());
  for (const Variable& v : vars) names.push_back(v.name());
  std::sort(names.begin(), names.end());
  return "{" + Join(names, ", ") + "}";
}

VarSet VarUnion(const VarSet& a, const VarSet& b) {
  VarSet out = a;
  out.insert(b.begin(), b.end());
  return out;
}

VarSet VarMinus(const VarSet& a, const VarSet& b) {
  VarSet out;
  for (const Variable& v : a) {
    if (!b.count(v)) out.insert(v);
  }
  return out;
}

VarSet VarIntersect(const VarSet& a, const VarSet& b) {
  VarSet out;
  for (const Variable& v : a) {
    if (b.count(v)) out.insert(v);
  }
  return out;
}

bool VarSubset(const VarSet& a, const VarSet& b) {
  for (const Variable& v : a) {
    if (!b.count(v)) return false;
  }
  return true;
}

}  // namespace scalein
