#include "query/printer.h"

#include <cstdio>

#include "util/check.h"
#include "util/strings.h"

namespace scalein {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  SI_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::Render() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) line += "  ";
      size_t pad = widths[c] - row[c].size();
      if (c == 0) {
        line += row[c];
        line.append(pad, ' ');
      } else {
        line.append(pad, ' ');
        line += row[c];
      }
    }
    line += "\n";
    return line;
  };
  std::string out = render_row(header_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c ? 2 : 0);
  out.append(total, '-');
  out += "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TablePrinter::Print() const { std::fputs(Render().c_str(), stdout); }

std::string FormatDouble(double v, int digits) {
  return StrFormat("%.*f", digits, v);
}

std::string FormatCount(uint64_t v) {
  std::string raw = std::to_string(v);
  std::string out;
  int count = 0;
  for (auto it = raw.rbegin(); it != raw.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  return std::string(out.rbegin(), out.rend());
}

}  // namespace scalein
