#include "query/ra_expr.h"

#include <algorithm>

#include "util/strings.h"

namespace scalein {

std::string AttrSetToString(const AttrSet& attrs) {
  std::vector<std::string> v(attrs.begin(), attrs.end());
  return "{" + Join(v, ", ") + "}";
}

AttrSet AttrUnion(const AttrSet& a, const AttrSet& b) {
  AttrSet out = a;
  out.insert(b.begin(), b.end());
  return out;
}

AttrSet AttrMinus(const AttrSet& a, const AttrSet& b) {
  AttrSet out;
  for (const std::string& s : a) {
    if (!b.count(s)) out.insert(s);
  }
  return out;
}

AttrSet AttrIntersect(const AttrSet& a, const AttrSet& b) {
  AttrSet out;
  for (const std::string& s : a) {
    if (b.count(s)) out.insert(s);
  }
  return out;
}

bool AttrSubset(const AttrSet& a, const AttrSet& b) {
  for (const std::string& s : a) {
    if (!b.count(s)) return false;
  }
  return true;
}

std::string SelectionAtom::ToString() const {
  std::string out = lhs;
  out += negated ? " != " : " = ";
  out += rhs_kind == Rhs::kAttribute ? rhs_attr : rhs_const.ToString();
  return out;
}

AttrSet SelectionCondition::ConstantBoundAttrs(
    const std::vector<std::string>& attrs) const {
  // Union-find over attributes; positive attr=attr conjuncts merge classes,
  // positive attr=const conjuncts pin a class to a constant.
  std::map<std::string, std::string> parent;
  for (const std::string& a : attrs) parent[a] = a;
  auto find = [&parent](const std::string& a) {
    std::string cur = a;
    while (parent[cur] != cur) cur = parent[cur];
    return cur;
  };
  std::map<std::string, Value> pinned;
  for (const SelectionAtom& c : conjuncts) {
    if (c.negated) continue;
    if (!parent.count(c.lhs)) continue;
    if (c.rhs_kind == SelectionAtom::Rhs::kAttribute) {
      if (!parent.count(c.rhs_attr)) continue;
      std::string ra = find(c.lhs);
      std::string rb = find(c.rhs_attr);
      if (ra != rb) {
        auto it = pinned.find(rb);
        if (it != pinned.end() && !pinned.count(ra)) {
          pinned.emplace(ra, it->second);
        }
        pinned.erase(rb);
        parent[rb] = ra;
      }
    } else {
      pinned.emplace(find(c.lhs), c.rhs_const);
    }
  }
  AttrSet out;
  for (const std::string& a : attrs) {
    if (pinned.count(find(a))) out.insert(a);
  }
  return out;
}

AttrSet SelectionCondition::MentionedAttrs() const {
  AttrSet out;
  for (const SelectionAtom& c : conjuncts) {
    out.insert(c.lhs);
    if (c.rhs_kind == SelectionAtom::Rhs::kAttribute) out.insert(c.rhs_attr);
  }
  return out;
}

std::string SelectionCondition::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(conjuncts.size());
  for (const SelectionAtom& c : conjuncts) parts.push_back(c.ToString());
  return Join(parts, " and ");
}

struct RaExpr::Node {
  Kind kind;
  std::vector<std::string> attrs;  // ordered output attributes
  std::string relation;            // kRelation
  SelectionCondition condition;    // kSelect
  std::vector<std::string> projection_attrs;       // kProject
  std::map<std::string, std::string> renaming;     // kRename
  std::vector<RaExpr> children;    // unary: [input]; binary: [left, right]
};

RaExpr RaExpr::Relation(std::string name, std::vector<std::string> attrs) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kRelation;
  node->relation = std::move(name);
  node->attrs = std::move(attrs);
  AttrSet dedup(node->attrs.begin(), node->attrs.end());
  SI_CHECK_MSG(dedup.size() == node->attrs.size(),
               "duplicate attribute names in RA relation");
  return RaExpr(std::move(node));
}

RaExpr RaExpr::Select(RaExpr input, SelectionCondition condition) {
  AttrSet in_attrs = input.AttributeSet();
  for (const std::string& a : condition.MentionedAttrs()) {
    SI_CHECK_MSG(in_attrs.count(a) > 0, "selection mentions unknown attribute");
  }
  auto node = std::make_shared<Node>();
  node->kind = Kind::kSelect;
  node->attrs = input.attributes();
  node->condition = std::move(condition);
  node->children = {std::move(input)};
  return RaExpr(std::move(node));
}

RaExpr RaExpr::Project(RaExpr input, std::vector<std::string> attrs) {
  AttrSet in_attrs = input.AttributeSet();
  AttrSet dedup(attrs.begin(), attrs.end());
  SI_CHECK_MSG(dedup.size() == attrs.size(), "duplicate projection attributes");
  for (const std::string& a : attrs) {
    SI_CHECK_MSG(in_attrs.count(a) > 0, "projection of unknown attribute");
  }
  auto node = std::make_shared<Node>();
  node->kind = Kind::kProject;
  node->attrs = attrs;
  node->projection_attrs = std::move(attrs);
  node->children = {std::move(input)};
  return RaExpr(std::move(node));
}

RaExpr RaExpr::Rename(RaExpr input, std::map<std::string, std::string> mapping) {
  AttrSet in_attrs = input.AttributeSet();
  for (const auto& [from, to] : mapping) {
    (void)to;
    SI_CHECK_MSG(in_attrs.count(from) > 0, "rename of unknown attribute");
  }
  std::vector<std::string> out_attrs;
  out_attrs.reserve(input.attributes().size());
  for (const std::string& a : input.attributes()) {
    auto it = mapping.find(a);
    out_attrs.push_back(it == mapping.end() ? a : it->second);
  }
  AttrSet dedup(out_attrs.begin(), out_attrs.end());
  SI_CHECK_MSG(dedup.size() == out_attrs.size(),
               "rename produces duplicate attribute names");
  auto node = std::make_shared<Node>();
  node->kind = Kind::kRename;
  node->attrs = std::move(out_attrs);
  node->renaming = std::move(mapping);
  node->children = {std::move(input)};
  return RaExpr(std::move(node));
}

namespace {

void CheckSameAttrSet(const RaExpr& a, const RaExpr& b, const char* op) {
  SI_CHECK_MSG(a.AttributeSet() == b.AttributeSet(), op);
}

}  // namespace

RaExpr RaExpr::Union(RaExpr a, RaExpr b) {
  CheckSameAttrSet(a, b, "union requires equal attribute sets");
  auto node = std::make_shared<Node>();
  node->kind = Kind::kUnion;
  node->attrs = a.attributes();
  node->children = {std::move(a), std::move(b)};
  return RaExpr(std::move(node));
}

RaExpr RaExpr::Diff(RaExpr a, RaExpr b) {
  CheckSameAttrSet(a, b, "difference requires equal attribute sets");
  auto node = std::make_shared<Node>();
  node->kind = Kind::kDiff;
  node->attrs = a.attributes();
  node->children = {std::move(a), std::move(b)};
  return RaExpr(std::move(node));
}

RaExpr RaExpr::Join(RaExpr a, RaExpr b) {
  std::vector<std::string> attrs = a.attributes();
  AttrSet a_set = a.AttributeSet();
  for (const std::string& battr : b.attributes()) {
    if (!a_set.count(battr)) attrs.push_back(battr);
  }
  auto node = std::make_shared<Node>();
  node->kind = Kind::kJoin;
  node->attrs = std::move(attrs);
  node->children = {std::move(a), std::move(b)};
  return RaExpr(std::move(node));
}

RaExpr::Kind RaExpr::kind() const { return node_->kind; }

const std::vector<std::string>& RaExpr::attributes() const {
  return node_->attrs;
}

AttrSet RaExpr::AttributeSet() const {
  return AttrSet(node_->attrs.begin(), node_->attrs.end());
}

const std::string& RaExpr::relation_name() const {
  SI_CHECK(node_->kind == Kind::kRelation);
  return node_->relation;
}

const RaExpr& RaExpr::input() const {
  SI_CHECK(node_->kind == Kind::kSelect || node_->kind == Kind::kProject ||
           node_->kind == Kind::kRename);
  return node_->children[0];
}

const SelectionCondition& RaExpr::condition() const {
  SI_CHECK(node_->kind == Kind::kSelect);
  return node_->condition;
}

const std::vector<std::string>& RaExpr::projection() const {
  SI_CHECK(node_->kind == Kind::kProject);
  return node_->projection_attrs;
}

const std::map<std::string, std::string>& RaExpr::renaming() const {
  SI_CHECK(node_->kind == Kind::kRename);
  return node_->renaming;
}

const RaExpr& RaExpr::left() const {
  SI_CHECK(node_->kind == Kind::kUnion || node_->kind == Kind::kDiff ||
           node_->kind == Kind::kJoin);
  return node_->children[0];
}

const RaExpr& RaExpr::right() const {
  SI_CHECK(node_->kind == Kind::kUnion || node_->kind == Kind::kDiff ||
           node_->kind == Kind::kJoin);
  return node_->children[1];
}

std::set<std::string> RaExpr::BaseRelations() const {
  std::set<std::string> out;
  if (node_->kind == Kind::kRelation) {
    out.insert(node_->relation);
    return out;
  }
  for (const RaExpr& c : node_->children) {
    std::set<std::string> sub = c.BaseRelations();
    out.insert(sub.begin(), sub.end());
  }
  return out;
}

size_t RaExpr::Size() const {
  size_t n = 1;
  for (const RaExpr& c : node_->children) n += c.Size();
  return n;
}

std::string RaExpr::ToString() const {
  switch (node_->kind) {
    case Kind::kRelation:
      return node_->relation;
    case Kind::kSelect:
      return "select[" + node_->condition.ToString() + "](" +
             node_->children[0].ToString() + ")";
    case Kind::kProject:
      return "project[" + scalein::Join(node_->projection_attrs, ", ") + "](" +
             node_->children[0].ToString() + ")";
    case Kind::kRename: {
      std::vector<std::string> parts;
      for (const auto& [from, to] : node_->renaming) {
        parts.push_back(from + "->" + to);
      }
      return "rename[" + scalein::Join(parts, ", ") + "](" +
             node_->children[0].ToString() + ")";
    }
    case Kind::kUnion:
      return "(" + node_->children[0].ToString() + " union " +
             node_->children[1].ToString() + ")";
    case Kind::kDiff:
      return "(" + node_->children[0].ToString() + " minus " +
             node_->children[1].ToString() + ")";
    case Kind::kJoin:
      return "(" + node_->children[0].ToString() + " join " +
             node_->children[1].ToString() + ")";
  }
  SI_CHECK(false);
  return "";
}

}  // namespace scalein
