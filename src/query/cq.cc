#include "query/cq.h"

#include <algorithm>

#include "util/strings.h"

namespace scalein {

VarSet CqAtom::Vars() const {
  VarSet out;
  for (const Term& t : args) {
    if (t.is_var()) out.insert(t.var());
  }
  return out;
}

std::string CqAtom::ToString() const {
  std::string out = relation + "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ", ";
    out += args[i].ToString();
  }
  out += ")";
  return out;
}

Cq::Cq(std::string name, std::vector<Term> head, std::vector<CqAtom> atoms)
    : name_(std::move(name)), head_(std::move(head)), atoms_(std::move(atoms)) {
  SI_CHECK_MSG(IsSafe(), "unsafe CQ: head variable missing from body");
}

VarSet Cq::HeadVars() const {
  VarSet out;
  for (const Term& t : head_) {
    if (t.is_var()) out.insert(t.var());
  }
  return out;
}

VarSet Cq::BodyVars() const {
  VarSet out;
  for (const CqAtom& a : atoms_) {
    VarSet av = a.Vars();
    out.insert(av.begin(), av.end());
  }
  return out;
}

VarSet Cq::ExistentialVars() const { return VarMinus(BodyVars(), HeadVars()); }

bool Cq::IsSafe() const { return VarSubset(HeadVars(), BodyVars()); }

Formula Cq::ToFormula() const {
  if (atoms_.empty()) return Formula::True();
  std::vector<Formula> conjuncts;
  conjuncts.reserve(atoms_.size());
  for (const CqAtom& a : atoms_) {
    conjuncts.push_back(Formula::Atom(a.relation, a.args));
  }
  Formula body = Formula::And(std::move(conjuncts));
  VarSet existential = ExistentialVars();
  return Formula::Exists(
      std::vector<Variable>(existential.begin(), existential.end()),
      std::move(body));
}

FoQuery Cq::ToFoQuery() const {
  FoQuery q;
  q.name = name_;
  VarSet seen;
  for (const Term& t : head_) {
    SI_CHECK_MSG(t.is_var(), "ToFoQuery requires an all-variable head");
    SI_CHECK_MSG(!seen.count(t.var()), "ToFoQuery requires distinct head vars");
    seen.insert(t.var());
    q.head.push_back(t.var());
  }
  q.body = ToFormula();
  return q;
}

Cq Cq::Substitute(const std::map<Variable, Term>& subst) const {
  auto sub_term = [&subst](const Term& t) {
    if (t.is_var()) {
      auto it = subst.find(t.var());
      if (it != subst.end()) return it->second;
    }
    return t;
  };
  std::vector<Term> head;
  head.reserve(head_.size());
  for (const Term& t : head_) head.push_back(sub_term(t));
  std::vector<CqAtom> atoms;
  atoms.reserve(atoms_.size());
  for (const CqAtom& a : atoms_) {
    CqAtom na;
    na.relation = a.relation;
    na.args.reserve(a.args.size());
    for (const Term& t : a.args) na.args.push_back(sub_term(t));
    atoms.push_back(std::move(na));
  }
  return Cq(name_, std::move(head), std::move(atoms));
}

Cq Cq::FreshenVariables() const {
  std::map<Variable, Term> renaming;
  for (const Variable& v : BodyVars()) {
    renaming.emplace(v, Term::Var(Variable::Fresh(v.name())));
  }
  return Substitute(renaming);
}

std::string Cq::ToString() const {
  std::string out = name_ + "(";
  for (size_t i = 0; i < head_.size(); ++i) {
    if (i > 0) out += ", ";
    out += head_[i].ToString();
  }
  out += ") :- ";
  if (atoms_.empty()) {
    out += "true";
    return out;
  }
  for (size_t i = 0; i < atoms_.size(); ++i) {
    if (i > 0) out += ", ";
    out += atoms_[i].ToString();
  }
  return out;
}

Ucq::Ucq(std::string name, std::vector<Cq> disjuncts)
    : name_(std::move(name)), disjuncts_(std::move(disjuncts)) {
  SI_CHECK_MSG(!disjuncts_.empty(), "UCQ needs at least one disjunct");
  for (const Cq& d : disjuncts_) {
    SI_CHECK_MSG(d.head().size() == disjuncts_[0].head().size(),
                 "UCQ disjuncts must share head arity");
  }
}

size_t Ucq::TableauSize() const {
  size_t best = 0;
  for (const Cq& d : disjuncts_) best = std::max(best, d.TableauSize());
  return best;
}

std::string Ucq::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(disjuncts_.size());
  for (const Cq& d : disjuncts_) parts.push_back(d.ToString());
  return Join(parts, "\n");
}

}  // namespace scalein
