#include "query/cq_to_ra.h"

#include <map>
#include <optional>

namespace scalein {

Result<RaExpr> CqToRa(const Cq& q, const Schema& schema) {
  if (q.atoms().empty()) {
    return Status::Unimplemented(
        "trivial CQ (empty body) has no relational-algebra form");
  }
  // Head: distinct variables only.
  VarSet seen_head;
  std::vector<std::string> head_attrs;
  for (const Term& h : q.head()) {
    if (!h.is_var() || !seen_head.insert(h.var()).second) {
      return Status::InvalidArgument(
          "CqToRa requires a distinct-variable head");
    }
    head_attrs.push_back(h.var().name());
  }

  std::optional<RaExpr> joined;
  for (const CqAtom& atom : q.atoms()) {
    const RelationSchema* rs = schema.FindRelation(atom.relation);
    if (rs == nullptr) {
      return Status::NotFound("unknown relation '" + atom.relation + "'");
    }
    if (rs->arity() != atom.args.size()) {
      return Status::InvalidArgument("arity mismatch on '" + atom.relation +
                                     "'");
    }
    // Column plan: first occurrence of a variable keeps (renamed to) the
    // variable's name; constants and repeated variables get fresh columns
    // constrained by selections and projected away.
    std::map<std::string, std::string> renaming;
    SelectionCondition condition;
    std::vector<std::string> keep;
    VarSet bound_here;
    for (size_t p = 0; p < atom.args.size(); ++p) {
      const std::string& attr = rs->attributes()[p];
      const Term& t = atom.args[p];
      if (t.is_var() && bound_here.insert(t.var()).second) {
        if (attr != t.var().name()) renaming.emplace(attr, t.var().name());
        keep.push_back(t.var().name());
        continue;
      }
      std::string fresh = Variable::Fresh("c").name();
      renaming.emplace(attr, fresh);
      if (t.is_const()) {
        condition.conjuncts.push_back(
            SelectionAtom::AttrEqConst(fresh, t.constant()));
      } else {
        condition.conjuncts.push_back(
            SelectionAtom::AttrEqAttr(fresh, t.var().name()));
      }
    }
    RaExpr expr = RaExpr::Relation(atom.relation, rs->attributes());
    if (!renaming.empty()) expr = RaExpr::Rename(std::move(expr), renaming);
    if (!condition.conjuncts.empty()) {
      expr = RaExpr::Select(std::move(expr), std::move(condition));
    }
    expr = RaExpr::Project(std::move(expr), keep);
    joined = joined.has_value() ? RaExpr::Join(*std::move(joined), std::move(expr))
                                : std::move(expr);
  }
  return RaExpr::Project(*std::move(joined), head_attrs);
}

}  // namespace scalein
