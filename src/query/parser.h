#ifndef SCALEIN_QUERY_PARSER_H_
#define SCALEIN_QUERY_PARSER_H_

#include <string_view>

#include "query/cq.h"
#include "query/formula.h"
#include "relational/schema.h"
#include "util/status.h"

namespace scalein {

/// Parsers for the concrete query syntax used in tests, examples, and
/// benchmarks. All parsers optionally validate relation names and arities
/// against `schema` (pass nullptr to skip).
///
/// Conjunctive queries (rule syntax; equalities are normalized away):
///
///   Q1(p, name) :- friend(p, id), person(id, name, "NYC")
///   Q(x) :- R(x, y), y = 3
///
/// First-order queries (head must list exactly the free variables):
///
///   Q(p, name) := exists id. friend(p, id) and person(id, name, "NYC")
///   B() := forall x. R(x) implies exists y. S(x, y)
///
/// Terms: identifiers are variables; integers (`42`) and double-quoted
/// strings (`"NYC"`) are constants. Connective precedence:
/// not > and > or > implies; quantifier bodies extend right after the dot.

/// Parses a single CQ rule.
Result<Cq> ParseCq(std::string_view text, const Schema* schema = nullptr);

/// Parses a UCQ: one CQ rule per non-empty line; all heads must share the
/// same name and arity.
Result<Ucq> ParseUcq(std::string_view text, const Schema* schema = nullptr);

/// Parses a named FO query `Name(x, ...) := formula`.
Result<FoQuery> ParseFoQuery(std::string_view text,
                             const Schema* schema = nullptr);

/// Parses a bare formula (no head). Useful for subformula tests.
Result<Formula> ParseFormula(std::string_view text,
                             const Schema* schema = nullptr);

}  // namespace scalein

#endif  // SCALEIN_QUERY_PARSER_H_
