#ifndef SCALEIN_QUERY_CQ_TO_RA_H_
#define SCALEIN_QUERY_CQ_TO_RA_H_

#include "query/cq.h"
#include "query/ra_expr.h"
#include "relational/schema.h"
#include "util/status.h"

namespace scalein {

/// Translates a CQ into an equivalent relational-algebra expression (the
/// SPJ fragment): each atom becomes a renamed base relation (columns named
/// after the atom's variables, selections for constants and repeated
/// variables), atoms combine by natural join, and the head is a final
/// projection.
///
/// Requirements: the head must be distinct variables (the view-definition
/// shape). The output expression's attributes are the head variable names in
/// head order — column-compatible with `CqEvaluator::EvaluateFull` answers,
/// which makes the translation the bridge between §6 view definitions and
/// §5 change propagation (`ComputeDelta` maintains view extents without
/// recomputation).
Result<RaExpr> CqToRa(const Cq& q, const Schema& schema);

}  // namespace scalein

#endif  // SCALEIN_QUERY_CQ_TO_RA_H_
