#ifndef SCALEIN_QUERY_FO_TO_RA_H_
#define SCALEIN_QUERY_FO_TO_RA_H_

#include "query/formula.h"
#include "query/ra_expr.h"
#include "relational/schema.h"
#include "util/status.h"

namespace scalein {

/// Translates an FO query into an equivalent relational-algebra expression
/// under the active-domain semantics — §2's "FO queries (equivalently, the
/// full relational algebra)" made constructive, and the bridge §5 uses when
/// it derives maintenance queries for FO through [14]'s change propagation.
///
/// Each subformula becomes an expression whose columns are its free
/// variables; negation complements against the active-domain product, ∨ pads
/// disjuncts to a common column set, ∀ desugars to ¬∃¬. The active domain
/// itself is assembled as the union of every column of every relation,
/// renamed to one shared column.
///
/// Caveats (standard for the construction):
///  * answers match `FoEvaluator` on every database; the only divergence is
///    closed formulas over the EMPTY database, where the algebraic encoding
///    of "true" (π_∅ of adom) is empty — callers comparing semantics should
///    skip |adom| = 0;
///  * intermediate adom-products can be large; this is a semantic bridge and
///    a testing oracle, not an execution plan.
Result<RaExpr> FoToRa(const FoQuery& q, const Schema& schema);

/// The active-domain expression over `schema`: one unary relation named
/// `attr` holding every value of every column of every relation.
Result<RaExpr> AdomExpr(const Schema& schema, const std::string& attr);

}  // namespace scalein

#endif  // SCALEIN_QUERY_FO_TO_RA_H_
