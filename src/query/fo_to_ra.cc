#include "query/fo_to_ra.h"

#include <algorithm>
#include <optional>

namespace scalein {
namespace {

/// Translation state: the schema plus a cached adom expression.
class Translator {
 public:
  explicit Translator(const Schema& schema) : schema_(schema) {}

  Result<RaExpr> Translate(const Formula& f) {
    switch (f.kind()) {
      case FormulaKind::kTrue:
        return TrueExpr();
      case FormulaKind::kFalse: {
        // FALSE over no columns: the adom-true minus itself.
        SI_ASSIGN_OR_RETURN(RaExpr t, TrueExpr());
        return RaExpr::Diff(t, t);
      }
      case FormulaKind::kAtom:
        return TranslateAtom(f);
      case FormulaKind::kEq:
        return TranslateEq(f);
      case FormulaKind::kNot: {
        SI_ASSIGN_OR_RETURN(RaExpr inner, Translate(f.child()));
        SI_ASSIGN_OR_RETURN(RaExpr universe,
                            AdomProduct(f.child().FreeVariables()));
        return RaExpr::Diff(std::move(universe), std::move(inner));
      }
      case FormulaKind::kAnd: {
        std::optional<RaExpr> joined;
        for (const Formula& c : f.operands()) {
          SI_ASSIGN_OR_RETURN(RaExpr e, Translate(c));
          joined = joined.has_value()
                       ? RaExpr::Join(*std::move(joined), std::move(e))
                       : std::move(e);
        }
        return *std::move(joined);
      }
      case FormulaKind::kOr: {
        const VarSet& all = f.FreeVariables();
        std::optional<RaExpr> unioned;
        for (const Formula& c : f.operands()) {
          SI_ASSIGN_OR_RETURN(RaExpr e, PadTo(c, all));
          unioned = unioned.has_value()
                        ? RaExpr::Union(*std::move(unioned), std::move(e))
                        : std::move(e);
        }
        return *std::move(unioned);
      }
      case FormulaKind::kImplies:
        // p → c ≡ ¬p ∨ c.
        return Translate(Formula::Or(Formula::Not(f.premise()), f.conclusion()));
      case FormulaKind::kExists: {
        SI_ASSIGN_OR_RETURN(RaExpr body, Translate(f.body()));
        const VarSet& body_free = f.body().FreeVariables();
        VarSet quantified(f.quantified().begin(), f.quantified().end());
        std::vector<std::string> keep;
        for (const Variable& v : VarMinus(body_free, quantified)) {
          keep.push_back(v.name());
        }
        return RaExpr::Project(std::move(body), keep);
      }
      case FormulaKind::kForall: {
        // ∀z̄ f ≡ ¬∃z̄ ¬f.
        std::vector<Variable> vars = f.quantified();
        return Translate(
            Formula::Not(Formula::Exists(vars, Formula::Not(f.body()))));
      }
    }
    return Status::Internal("unreachable formula kind");
  }

  /// Product of adom columns for every variable in `vars`; for ∅ the 0-ary
  /// TRUE expression.
  Result<RaExpr> AdomProduct(const VarSet& vars) {
    if (vars.empty()) return TrueExpr();
    std::optional<RaExpr> product;
    for (const Variable& v : vars) {
      SI_ASSIGN_OR_RETURN(RaExpr column, AdomExpr(schema_, v.name()));
      product = product.has_value()
                    ? RaExpr::Join(*std::move(product), std::move(column))
                    : std::move(column);
    }
    return *std::move(product);
  }

 private:
  /// Translates `f` and pads it with adom columns up to `target`.
  Result<RaExpr> PadTo(const Formula& f, const VarSet& target) {
    SI_ASSIGN_OR_RETURN(RaExpr e, Translate(f));
    VarSet missing = VarMinus(target, f.FreeVariables());
    if (missing.empty()) return e;
    SI_ASSIGN_OR_RETURN(RaExpr pad, AdomProduct(missing));
    return RaExpr::Join(std::move(e), std::move(pad));
  }

  /// π_∅(adom): one empty tuple iff the database is nonempty.
  Result<RaExpr> TrueExpr() {
    SI_ASSIGN_OR_RETURN(RaExpr adom, AdomExpr(schema_, "$true"));
    return RaExpr::Project(std::move(adom), {});
  }

  Result<RaExpr> TranslateAtom(const Formula& f) {
    const RelationSchema* rs = schema_.FindRelation(f.relation());
    if (rs == nullptr) {
      return Status::NotFound("unknown relation '" + f.relation() + "'");
    }
    if (rs->arity() != f.args().size()) {
      return Status::InvalidArgument("arity mismatch on '" + f.relation() +
                                     "'");
    }
    // Identical to the CQ atom plan: first variable occurrences keep the
    // variable's name, constants/repeats become constrained fresh columns.
    std::map<std::string, std::string> renaming;
    SelectionCondition condition;
    std::vector<std::string> keep;
    VarSet bound_here;
    for (size_t p = 0; p < f.args().size(); ++p) {
      const std::string& attr = rs->attributes()[p];
      const Term& t = f.args()[p];
      if (t.is_var() && bound_here.insert(t.var()).second) {
        if (attr != t.var().name()) renaming.emplace(attr, t.var().name());
        keep.push_back(t.var().name());
        continue;
      }
      std::string fresh = Variable::Fresh("f2r").name();
      renaming.emplace(attr, fresh);
      if (t.is_const()) {
        condition.conjuncts.push_back(
            SelectionAtom::AttrEqConst(fresh, t.constant()));
      } else {
        condition.conjuncts.push_back(
            SelectionAtom::AttrEqAttr(fresh, t.var().name()));
      }
    }
    RaExpr expr = RaExpr::Relation(f.relation(), rs->attributes());
    if (!renaming.empty()) expr = RaExpr::Rename(std::move(expr), renaming);
    if (!condition.conjuncts.empty()) {
      expr = RaExpr::Select(std::move(expr), std::move(condition));
    }
    return RaExpr::Project(std::move(expr), keep);
  }

  Result<RaExpr> TranslateEq(const Formula& f) {
    const Term& l = f.eq_lhs();
    const Term& r = f.eq_rhs();
    if (l.is_var() && r.is_var()) {
      if (l.var() == r.var()) {
        // x = x: every adom value.
        return AdomExpr(schema_, l.var().name());
      }
      SI_ASSIGN_OR_RETURN(RaExpr lhs, AdomExpr(schema_, l.var().name()));
      SI_ASSIGN_OR_RETURN(RaExpr rhs, AdomExpr(schema_, r.var().name()));
      SelectionCondition cond;
      cond.conjuncts.push_back(
          SelectionAtom::AttrEqAttr(l.var().name(), r.var().name()));
      return RaExpr::Select(RaExpr::Join(std::move(lhs), std::move(rhs)),
                            std::move(cond));
    }
    if (l.is_var() || r.is_var()) {
      const Term& var_term = l.is_var() ? l : r;
      const Term& const_term = l.is_var() ? r : l;
      SI_ASSIGN_OR_RETURN(RaExpr column,
                          AdomExpr(schema_, var_term.var().name()));
      SelectionCondition cond;
      cond.conjuncts.push_back(SelectionAtom::AttrEqConst(
          var_term.var().name(), const_term.constant()));
      return RaExpr::Select(std::move(column), std::move(cond));
    }
    // Constant = constant: TRUE or FALSE (0-ary).
    if (l.constant() == r.constant()) return TrueExpr();
    SI_ASSIGN_OR_RETURN(RaExpr t, TrueExpr());
    return RaExpr::Diff(t, t);
  }

  const Schema& schema_;
};

}  // namespace

Result<RaExpr> AdomExpr(const Schema& schema, const std::string& attr) {
  std::optional<RaExpr> adom;
  for (const RelationSchema& rs : schema.relations()) {
    for (const std::string& column : rs.attributes()) {
      RaExpr projected =
          RaExpr::Project(RaExpr::Relation(rs.name(), rs.attributes()),
                          {column});
      RaExpr renamed = column == attr
                           ? std::move(projected)
                           : RaExpr::Rename(std::move(projected),
                                            {{column, attr}});
      adom = adom.has_value()
                 ? RaExpr::Union(*std::move(adom), std::move(renamed))
                 : std::move(renamed);
    }
  }
  if (!adom.has_value()) {
    return Status::InvalidArgument("empty schema has no active domain");
  }
  return *std::move(adom);
}

Result<RaExpr> FoToRa(const FoQuery& q, const Schema& schema) {
  if (!q.IsWellFormed()) {
    return Status::InvalidArgument("FO query head/free-variable mismatch");
  }
  Translator translator(schema);
  SI_ASSIGN_OR_RETURN(RaExpr body, translator.Translate(q.body));
  std::vector<std::string> head;
  head.reserve(q.head.size());
  for (const Variable& v : q.head) head.push_back(v.name());
  return RaExpr::Project(std::move(body), head);
}

}  // namespace scalein
