#include "query/parser.h"

#include <cctype>
#include <map>
#include <optional>

#include "util/strings.h"

namespace scalein {
namespace {

enum class TokKind {
  kIdent,
  kInt,
  kString,
  kLParen,
  kRParen,
  kComma,
  kDot,
  kEq,
  kNeq,
  kRuleArrow,  // :-
  kDefArrow,   // :=
  kEnd,
};

struct Token {
  TokKind kind;
  std::string text;  // ident payload / string payload
  int64_t int_value = 0;
  size_t offset = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    size_t i = 0;
    const size_t n = input_.size();
    while (i < n) {
      char c = input_[i];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++i;
        continue;
      }
      size_t start = i;
      if (c == '(') {
        out.push_back({TokKind::kLParen, "", 0, start});
        ++i;
      } else if (c == ')') {
        out.push_back({TokKind::kRParen, "", 0, start});
        ++i;
      } else if (c == ',') {
        out.push_back({TokKind::kComma, "", 0, start});
        ++i;
      } else if (c == '.') {
        out.push_back({TokKind::kDot, "", 0, start});
        ++i;
      } else if (c == '=') {
        out.push_back({TokKind::kEq, "", 0, start});
        ++i;
      } else if (c == '!' && i + 1 < n && input_[i + 1] == '=') {
        out.push_back({TokKind::kNeq, "", 0, start});
        i += 2;
      } else if (c == ':' && i + 1 < n && input_[i + 1] == '-') {
        out.push_back({TokKind::kRuleArrow, "", 0, start});
        i += 2;
      } else if (c == ':' && i + 1 < n && input_[i + 1] == '=') {
        out.push_back({TokKind::kDefArrow, "", 0, start});
        i += 2;
      } else if (c == '"') {
        ++i;
        std::string s;
        while (i < n && input_[i] != '"') {
          s.push_back(input_[i]);
          ++i;
        }
        if (i >= n) {
          return Status::InvalidArgument(
              StrFormat("unterminated string literal at offset %zu", start));
        }
        ++i;  // closing quote
        out.push_back({TokKind::kString, std::move(s), 0, start});
      } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                 (c == '-' && i + 1 < n &&
                  std::isdigit(static_cast<unsigned char>(input_[i + 1])))) {
        size_t j = i + (c == '-' ? 1 : 0);
        while (j < n && std::isdigit(static_cast<unsigned char>(input_[j]))) ++j;
        int64_t v = 0;
        bool neg = (c == '-');
        for (size_t k = i + (neg ? 1 : 0); k < j; ++k) {
          v = v * 10 + (input_[k] - '0');
        }
        out.push_back({TokKind::kInt, "", neg ? -v : v, start});
        i = j;
      } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t j = i;
        while (j < n && (std::isalnum(static_cast<unsigned char>(input_[j])) ||
                         input_[j] == '_' || input_[j] == '$')) {
          ++j;
        }
        out.push_back(
            {TokKind::kIdent, std::string(input_.substr(i, j - i)), 0, start});
        i = j;
      } else {
        return Status::InvalidArgument(
            StrFormat("unexpected character '%c' at offset %zu", c, start));
      }
    }
    out.push_back({TokKind::kEnd, "", 0, n});
    return out;
  }

 private:
  std::string_view input_;
};

bool IsKeyword(const Token& t, const char* kw) {
  return t.kind == TokKind::kIdent && t.text == kw;
}

/// Recursive-descent parser over a token stream.
class Parser {
 public:
  Parser(std::vector<Token> tokens, const Schema* schema)
      : tokens_(std::move(tokens)), schema_(schema) {}

  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Peek2() const {
    return tokens_[pos_ + 1 < tokens_.size() ? pos_ + 1 : tokens_.size() - 1];
  }
  Token Take() { return tokens_[pos_++]; }

  Status Expect(TokKind kind, const char* what) {
    if (Peek().kind != kind) {
      return Status::InvalidArgument(
          StrFormat("expected %s at offset %zu", what, Peek().offset));
    }
    ++pos_;
    return Status::OK();
  }

  bool AtEnd() const { return Peek().kind == TokKind::kEnd; }

  // ---- terms ----

  Result<Term> ParseTerm() {
    const Token& t = Peek();
    if (t.kind == TokKind::kInt) {
      Take();
      return Term::Const(Value::Int(t.int_value));
    }
    if (t.kind == TokKind::kString) {
      Token tok = Take();
      return Term::Const(Value::Str(tok.text));
    }
    if (t.kind == TokKind::kIdent) {
      if (IsKeyword(t, "true") || IsKeyword(t, "false") ||
          IsKeyword(t, "and") || IsKeyword(t, "or") || IsKeyword(t, "not") ||
          IsKeyword(t, "exists") || IsKeyword(t, "forall") ||
          IsKeyword(t, "implies")) {
        return Status::InvalidArgument(
            StrFormat("keyword '%s' used as a term at offset %zu",
                      t.text.c_str(), t.offset));
      }
      Token tok = Take();
      return Term::Var(Variable::Named(tok.text));
    }
    return Status::InvalidArgument(
        StrFormat("expected a term at offset %zu", t.offset));
  }

  Result<std::vector<Term>> ParseTermList() {
    std::vector<Term> terms;
    SI_RETURN_IF_ERROR(Expect(TokKind::kLParen, "'('"));
    if (Peek().kind == TokKind::kRParen) {
      Take();
      return terms;
    }
    for (;;) {
      SI_ASSIGN_OR_RETURN(Term t, ParseTerm());
      terms.push_back(t);
      if (Peek().kind == TokKind::kComma) {
        Take();
        continue;
      }
      SI_RETURN_IF_ERROR(Expect(TokKind::kRParen, "')'"));
      return terms;
    }
  }

  Status ValidateAtom(const std::string& relation, size_t arity,
                      size_t offset) {
    if (schema_ == nullptr) return Status::OK();
    const RelationSchema* rs = schema_->FindRelation(relation);
    if (rs == nullptr) {
      return Status::NotFound(StrFormat("unknown relation '%s' at offset %zu",
                                        relation.c_str(), offset));
    }
    if (rs->arity() != arity) {
      return Status::InvalidArgument(
          StrFormat("relation '%s' has arity %zu, atom has %zu arguments",
                    relation.c_str(), rs->arity(), arity));
    }
    return Status::OK();
  }

  // ---- FO formulas ----
  // formula    := or_expr ('implies' formula)?      (right associative)
  // or_expr    := and_expr ('or' and_expr)*
  // and_expr   := unary ('and' unary)*
  // unary      := 'not' unary | quantifier | primary
  // quantifier := ('exists'|'forall') var (',' var)* '.' formula
  // primary    := '(' formula ')' | 'true' | 'false' | atom | term (=|!=) term

  Result<Formula> ParseFormulaExpr() {
    SI_ASSIGN_OR_RETURN(Formula lhs, ParseOr());
    if (IsKeyword(Peek(), "implies")) {
      Take();
      SI_ASSIGN_OR_RETURN(Formula rhs, ParseFormulaExpr());
      return Formula::Implies(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<Formula> ParseOr() {
    SI_ASSIGN_OR_RETURN(Formula first, ParseAnd());
    std::vector<Formula> operands = {std::move(first)};
    while (IsKeyword(Peek(), "or")) {
      Take();
      SI_ASSIGN_OR_RETURN(Formula next, ParseAnd());
      operands.push_back(std::move(next));
    }
    return Formula::Or(std::move(operands));
  }

  Result<Formula> ParseAnd() {
    SI_ASSIGN_OR_RETURN(Formula first, ParseUnary());
    std::vector<Formula> operands = {std::move(first)};
    while (IsKeyword(Peek(), "and")) {
      Take();
      SI_ASSIGN_OR_RETURN(Formula next, ParseUnary());
      operands.push_back(std::move(next));
    }
    return Formula::And(std::move(operands));
  }

  Result<Formula> ParseUnary() {
    if (IsKeyword(Peek(), "not")) {
      Take();
      SI_ASSIGN_OR_RETURN(Formula f, ParseUnary());
      return Formula::Not(std::move(f));
    }
    if (IsKeyword(Peek(), "exists") || IsKeyword(Peek(), "forall")) {
      bool is_exists = Peek().text == "exists";
      Take();
      std::vector<Variable> vars;
      for (;;) {
        if (Peek().kind != TokKind::kIdent) {
          return Status::InvalidArgument(StrFormat(
              "expected variable after quantifier at offset %zu", Peek().offset));
        }
        vars.push_back(Variable::Named(Take().text));
        if (Peek().kind == TokKind::kComma) {
          Take();
          continue;
        }
        break;
      }
      SI_RETURN_IF_ERROR(Expect(TokKind::kDot, "'.' after quantifier variables"));
      SI_ASSIGN_OR_RETURN(Formula body, ParseFormulaExpr());
      return is_exists ? Formula::Exists(std::move(vars), std::move(body))
                       : Formula::Forall(std::move(vars), std::move(body));
    }
    return ParsePrimary();
  }

  Result<Formula> ParsePrimary() {
    if (Peek().kind == TokKind::kLParen) {
      Take();
      SI_ASSIGN_OR_RETURN(Formula f, ParseFormulaExpr());
      SI_RETURN_IF_ERROR(Expect(TokKind::kRParen, "')'"));
      return f;
    }
    if (IsKeyword(Peek(), "true")) {
      Take();
      return Formula::True();
    }
    if (IsKeyword(Peek(), "false")) {
      Take();
      return Formula::False();
    }
    // Relation atom: ident '('.
    if (Peek().kind == TokKind::kIdent && Peek2().kind == TokKind::kLParen) {
      Token name = Take();
      size_t offset = name.offset;
      SI_ASSIGN_OR_RETURN(std::vector<Term> args, ParseTermList());
      SI_RETURN_IF_ERROR(ValidateAtom(name.text, args.size(), offset));
      return Formula::Atom(name.text, std::move(args));
    }
    // Equality / inequality between terms.
    SI_ASSIGN_OR_RETURN(Term lhs, ParseTerm());
    if (Peek().kind == TokKind::kEq) {
      Take();
      SI_ASSIGN_OR_RETURN(Term rhs, ParseTerm());
      return Formula::Eq(lhs, rhs);
    }
    if (Peek().kind == TokKind::kNeq) {
      Take();
      SI_ASSIGN_OR_RETURN(Term rhs, ParseTerm());
      return Formula::Not(Formula::Eq(lhs, rhs));
    }
    return Status::InvalidArgument(
        StrFormat("expected '=' or '!=' at offset %zu", Peek().offset));
  }

  // ---- heads and rules ----

  struct Head {
    std::string name;
    std::vector<Term> terms;
  };

  Result<Head> ParseHead() {
    if (Peek().kind != TokKind::kIdent) {
      return Status::InvalidArgument(
          StrFormat("expected query name at offset %zu", Peek().offset));
    }
    Head h;
    h.name = Take().text;
    SI_ASSIGN_OR_RETURN(h.terms, ParseTermList());
    return h;
  }

  const Schema* schema() const { return schema_; }

 private:
  std::vector<Token> tokens_;
  size_t pos_ = 0;
  const Schema* schema_;
};

/// Union-find over variables with optional constant class representatives:
/// the equality-normalization engine for CQ rule bodies.
class Unifier {
 public:
  Status Union(const Term& a, const Term& b) {
    if (a.is_const() && b.is_const()) {
      if (a.constant() == b.constant()) return Status::OK();
      return Status::InvalidArgument(
          "CQ body equates distinct constants: " + a.ToString() + " = " +
          b.ToString());
    }
    if (a.is_const()) return BindVar(b.var(), a.constant());
    if (b.is_const()) return BindVar(a.var(), b.constant());
    Variable ra = Find(a.var());
    Variable rb = Find(b.var());
    if (ra == rb) return Status::OK();
    // Merge rb into ra; reconcile constants.
    auto ita = constants_.find(ra);
    auto itb = constants_.find(rb);
    if (ita != constants_.end() && itb != constants_.end() &&
        !(ita->second == itb->second)) {
      return Status::InvalidArgument("CQ body equates distinct constants via " +
                                     a.ToString() + " = " + b.ToString());
    }
    if (itb != constants_.end() && ita == constants_.end()) {
      constants_.emplace(ra, itb->second);
    }
    constants_.erase(rb);
    parents_.insert_or_assign(rb, ra);
    return Status::OK();
  }

  Term Resolve(const Term& t) {
    if (t.is_const()) return t;
    Variable r = Find(t.var());
    auto it = constants_.find(r);
    if (it != constants_.end()) return Term::Const(it->second);
    return Term::Var(r);
  }

 private:
  Variable Find(Variable v) {
    auto it = parents_.find(v);
    if (it == parents_.end() || it->second == v) return v;
    Variable root = Find(it->second);
    parents_.insert_or_assign(v, root);
    return root;
  }

  Status BindVar(Variable v, const Value& c) {
    Variable r = Find(v);
    auto it = constants_.find(r);
    if (it != constants_.end()) {
      if (it->second == c) return Status::OK();
      return Status::InvalidArgument("CQ body binds " + v.name() +
                                     " to two distinct constants");
    }
    constants_.emplace(r, c);
    return Status::OK();
  }

  std::map<Variable, Variable> parents_;
  std::map<Variable, Value> constants_;
};

Result<Cq> ParseCqFromParser(Parser* p) {
  SI_ASSIGN_OR_RETURN(Parser::Head head, p->ParseHead());
  SI_RETURN_IF_ERROR(p->Expect(TokKind::kRuleArrow, "':-'"));

  struct PendingAtom {
    std::string relation;
    std::vector<Term> args;
  };
  std::vector<PendingAtom> atoms;
  Unifier unifier;

  // `true` as the sole body is allowed (constant-head queries).
  if (IsKeyword(p->Peek(), "true") && p->Peek2().kind == TokKind::kEnd) {
    p->Take();
  } else {
    for (;;) {
      if (p->Peek().kind == TokKind::kIdent &&
          p->Peek2().kind == TokKind::kLParen) {
        Token name = p->Take();
        size_t offset = name.offset;
        SI_ASSIGN_OR_RETURN(std::vector<Term> args, p->ParseTermList());
        SI_RETURN_IF_ERROR(p->ValidateAtom(name.text, args.size(), offset));
        atoms.push_back({name.text, std::move(args)});
      } else {
        SI_ASSIGN_OR_RETURN(Term lhs, p->ParseTerm());
        SI_RETURN_IF_ERROR(p->Expect(TokKind::kEq, "'=' in body equality"));
        SI_ASSIGN_OR_RETURN(Term rhs, p->ParseTerm());
        SI_RETURN_IF_ERROR(unifier.Union(lhs, rhs));
      }
      if (p->Peek().kind == TokKind::kComma) {
        p->Take();
        continue;
      }
      break;
    }
  }
  if (!p->AtEnd()) {
    return Status::InvalidArgument(
        StrFormat("trailing input at offset %zu", p->Peek().offset));
  }

  // Apply the equality normalization everywhere.
  std::vector<CqAtom> body;
  body.reserve(atoms.size());
  for (PendingAtom& a : atoms) {
    CqAtom atom;
    atom.relation = std::move(a.relation);
    atom.args.reserve(a.args.size());
    for (const Term& t : a.args) atom.args.push_back(unifier.Resolve(t));
    body.push_back(std::move(atom));
  }
  std::vector<Term> head_terms;
  head_terms.reserve(head.terms.size());
  for (const Term& t : head.terms) head_terms.push_back(unifier.Resolve(t));

  // Safety check with a friendly error instead of the constructor abort.
  VarSet body_vars;
  for (const CqAtom& a : body) {
    VarSet av = a.Vars();
    body_vars.insert(av.begin(), av.end());
  }
  for (const Term& t : head_terms) {
    if (t.is_var() && !body_vars.count(t.var())) {
      return Status::InvalidArgument("unsafe CQ: head variable '" +
                                     t.var().name() + "' not bound in body");
    }
  }
  return Cq(head.name, std::move(head_terms), std::move(body));
}

}  // namespace

Result<Cq> ParseCq(std::string_view text, const Schema* schema) {
  Lexer lexer(text);
  SI_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser p(std::move(tokens), schema);
  return ParseCqFromParser(&p);
}

Result<Ucq> ParseUcq(std::string_view text, const Schema* schema) {
  std::vector<Cq> disjuncts;
  std::string name;
  for (std::string_view line : [&] {
         std::vector<std::string_view> lines;
         size_t start = 0;
         for (size_t i = 0; i <= text.size(); ++i) {
           if (i == text.size() || text[i] == '\n') {
             std::string_view l =
                 StripWhitespace(text.substr(start, i - start));
             if (!l.empty()) lines.push_back(l);
             start = i + 1;
           }
         }
         return lines;
       }()) {
    SI_ASSIGN_OR_RETURN(Cq cq, ParseCq(line, schema));
    if (disjuncts.empty()) {
      name = cq.name();
    } else if (cq.name() != name) {
      return Status::InvalidArgument("UCQ rules must share one head name");
    } else if (cq.head().size() != disjuncts[0].head().size()) {
      return Status::InvalidArgument("UCQ rules must share head arity");
    }
    disjuncts.push_back(std::move(cq));
  }
  if (disjuncts.empty()) {
    return Status::InvalidArgument("empty UCQ");
  }
  return Ucq(name, std::move(disjuncts));
}

Result<FoQuery> ParseFoQuery(std::string_view text, const Schema* schema) {
  Lexer lexer(text);
  SI_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser p(std::move(tokens), schema);
  SI_ASSIGN_OR_RETURN(Parser::Head head, p.ParseHead());
  SI_RETURN_IF_ERROR(p.Expect(TokKind::kDefArrow, "':='"));
  SI_ASSIGN_OR_RETURN(Formula body, p.ParseFormulaExpr());
  if (!p.AtEnd()) {
    return Status::InvalidArgument(
        StrFormat("trailing input at offset %zu", p.Peek().offset));
  }
  FoQuery q;
  q.name = head.name;
  for (const Term& t : head.terms) {
    if (!t.is_var()) {
      return Status::InvalidArgument("FO query head must list variables only");
    }
    q.head.push_back(t.var());
  }
  q.body = std::move(body);
  if (!q.IsWellFormed()) {
    return Status::InvalidArgument(
        "FO query head must list exactly the free variables of the body "
        "(query: " + q.ToString() + ")");
  }
  return q;
}

Result<Formula> ParseFormula(std::string_view text, const Schema* schema) {
  Lexer lexer(text);
  SI_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser p(std::move(tokens), schema);
  SI_ASSIGN_OR_RETURN(Formula f, p.ParseFormulaExpr());
  if (!p.AtEnd()) {
    return Status::InvalidArgument(
        StrFormat("trailing input at offset %zu", p.Peek().offset));
  }
  return f;
}

}  // namespace scalein
