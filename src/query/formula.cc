#include "query/formula.h"

#include <algorithm>

#include "util/strings.h"

namespace scalein {

struct Formula::Node {
  FormulaKind kind;
  std::string relation;           // kAtom
  std::vector<Term> terms;        // kAtom args; kEq stores [lhs, rhs]
  std::vector<Formula> children;  // kNot [f]; kAnd/kOr; kImplies [p, c];
                                  // kExists/kForall [body]
  std::vector<Variable> vars;     // kExists, kForall
  mutable std::optional<VarSet> free_cache;
};

Formula Formula::True() {
  auto node = std::make_shared<Node>();
  node->kind = FormulaKind::kTrue;
  return Formula(std::move(node));
}

Formula Formula::False() {
  auto node = std::make_shared<Node>();
  node->kind = FormulaKind::kFalse;
  return Formula(std::move(node));
}

Formula Formula::Atom(std::string relation, std::vector<Term> args) {
  auto node = std::make_shared<Node>();
  node->kind = FormulaKind::kAtom;
  node->relation = std::move(relation);
  node->terms = std::move(args);
  return Formula(std::move(node));
}

Formula Formula::Eq(Term lhs, Term rhs) {
  auto node = std::make_shared<Node>();
  node->kind = FormulaKind::kEq;
  node->terms = {lhs, rhs};
  return Formula(std::move(node));
}

Formula Formula::Not(Formula f) {
  auto node = std::make_shared<Node>();
  node->kind = FormulaKind::kNot;
  node->children = {std::move(f)};
  return Formula(std::move(node));
}

Formula Formula::And(std::vector<Formula> operands) {
  SI_CHECK(!operands.empty());
  if (operands.size() == 1) return operands[0];
  auto node = std::make_shared<Node>();
  node->kind = FormulaKind::kAnd;
  node->children = std::move(operands);
  return Formula(std::move(node));
}

Formula Formula::Or(std::vector<Formula> operands) {
  SI_CHECK(!operands.empty());
  if (operands.size() == 1) return operands[0];
  auto node = std::make_shared<Node>();
  node->kind = FormulaKind::kOr;
  node->children = std::move(operands);
  return Formula(std::move(node));
}

Formula Formula::Implies(Formula premise, Formula conclusion) {
  auto node = std::make_shared<Node>();
  node->kind = FormulaKind::kImplies;
  node->children = {std::move(premise), std::move(conclusion)};
  return Formula(std::move(node));
}

Formula Formula::Exists(std::vector<Variable> vars, Formula body) {
  if (vars.empty()) return body;
  auto node = std::make_shared<Node>();
  node->kind = FormulaKind::kExists;
  node->vars = std::move(vars);
  node->children = {std::move(body)};
  return Formula(std::move(node));
}

Formula Formula::Forall(std::vector<Variable> vars, Formula body) {
  if (vars.empty()) return body;
  auto node = std::make_shared<Node>();
  node->kind = FormulaKind::kForall;
  node->vars = std::move(vars);
  node->children = {std::move(body)};
  return Formula(std::move(node));
}

FormulaKind Formula::kind() const { return node_->kind; }

const std::string& Formula::relation() const {
  SI_CHECK(node_->kind == FormulaKind::kAtom);
  return node_->relation;
}

const std::vector<Term>& Formula::args() const {
  SI_CHECK(node_->kind == FormulaKind::kAtom);
  return node_->terms;
}

const Term& Formula::eq_lhs() const {
  SI_CHECK(node_->kind == FormulaKind::kEq);
  return node_->terms[0];
}

const Term& Formula::eq_rhs() const {
  SI_CHECK(node_->kind == FormulaKind::kEq);
  return node_->terms[1];
}

const Formula& Formula::child() const {
  SI_CHECK(node_->kind == FormulaKind::kNot);
  return node_->children[0];
}

const std::vector<Formula>& Formula::operands() const {
  SI_CHECK(node_->kind == FormulaKind::kAnd || node_->kind == FormulaKind::kOr);
  return node_->children;
}

const Formula& Formula::premise() const {
  SI_CHECK(node_->kind == FormulaKind::kImplies);
  return node_->children[0];
}

const Formula& Formula::conclusion() const {
  SI_CHECK(node_->kind == FormulaKind::kImplies);
  return node_->children[1];
}

const std::vector<Variable>& Formula::quantified() const {
  SI_CHECK(node_->kind == FormulaKind::kExists ||
           node_->kind == FormulaKind::kForall);
  return node_->vars;
}

const Formula& Formula::body() const {
  SI_CHECK(node_->kind == FormulaKind::kExists ||
           node_->kind == FormulaKind::kForall);
  return node_->children[0];
}

const VarSet& Formula::FreeVariables() const {
  if (node_->free_cache.has_value()) return *node_->free_cache;
  VarSet free;
  switch (node_->kind) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
      break;
    case FormulaKind::kAtom:
    case FormulaKind::kEq:
      for (const Term& t : node_->terms) {
        if (t.is_var()) free.insert(t.var());
      }
      break;
    case FormulaKind::kNot:
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
    case FormulaKind::kImplies:
      for (const Formula& c : node_->children) {
        const VarSet& cf = c.FreeVariables();
        free.insert(cf.begin(), cf.end());
      }
      break;
    case FormulaKind::kExists:
    case FormulaKind::kForall: {
      free = node_->children[0].FreeVariables();
      for (const Variable& v : node_->vars) free.erase(v);
      break;
    }
  }
  node_->free_cache = std::move(free);
  return *node_->free_cache;
}

size_t Formula::Size() const {
  size_t n = 1;
  for (const Formula& c : node_->children) n += c.Size();
  return n;
}

bool Formula::Equals(const Formula& other) const {
  if (node_ == other.node_) return true;
  if (node_->kind != other.node_->kind) return false;
  if (node_->relation != other.node_->relation) return false;
  if (node_->terms != other.node_->terms) return false;
  if (node_->vars.size() != other.node_->vars.size()) return false;
  for (size_t i = 0; i < node_->vars.size(); ++i) {
    if (node_->vars[i] != other.node_->vars[i]) return false;
  }
  if (node_->children.size() != other.node_->children.size()) return false;
  for (size_t i = 0; i < node_->children.size(); ++i) {
    if (!node_->children[i].Equals(other.node_->children[i])) return false;
  }
  return true;
}

bool Formula::IsEqualityCondition() const {
  switch (node_->kind) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
    case FormulaKind::kEq:
      return true;
    case FormulaKind::kNot:
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
    case FormulaKind::kImplies:
      for (const Formula& c : node_->children) {
        if (!c.IsEqualityCondition()) return false;
      }
      return true;
    default:
      return false;
  }
}

Formula Formula::Substitute(const std::map<Variable, Term>& subst) const {
  if (subst.empty()) return *this;
  auto sub_term = [&subst](const Term& t) {
    if (t.is_var()) {
      auto it = subst.find(t.var());
      if (it != subst.end()) return it->second;
    }
    return t;
  };
  switch (node_->kind) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
      return *this;
    case FormulaKind::kAtom: {
      std::vector<Term> args;
      args.reserve(node_->terms.size());
      for (const Term& t : node_->terms) args.push_back(sub_term(t));
      return Atom(node_->relation, std::move(args));
    }
    case FormulaKind::kEq:
      return Eq(sub_term(node_->terms[0]), sub_term(node_->terms[1]));
    case FormulaKind::kNot:
      return Not(node_->children[0].Substitute(subst));
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      std::vector<Formula> kids;
      kids.reserve(node_->children.size());
      for (const Formula& c : node_->children) kids.push_back(c.Substitute(subst));
      return node_->kind == FormulaKind::kAnd ? And(std::move(kids))
                                              : Or(std::move(kids));
    }
    case FormulaKind::kImplies:
      return Implies(node_->children[0].Substitute(subst),
                     node_->children[1].Substitute(subst));
    case FormulaKind::kExists:
    case FormulaKind::kForall: {
      // Drop mappings for shadowed variables; rename bound variables that
      // would capture a substituted term's variable.
      std::map<Variable, Term> inner = subst;
      for (const Variable& v : node_->vars) inner.erase(v);
      VarSet incoming;  // variables introduced by substitution images
      for (const auto& [from, to] : inner) {
        (void)from;
        if (to.is_var()) incoming.insert(to.var());
      }
      std::vector<Variable> new_vars = node_->vars;
      for (Variable& v : new_vars) {
        if (incoming.count(v)) {
          Variable fresh = Variable::Fresh(v.name());
          inner.insert_or_assign(v, Term::Var(fresh));
          v = fresh;
        }
      }
      Formula new_body = node_->children[0].Substitute(inner);
      return node_->kind == FormulaKind::kExists
                 ? Exists(std::move(new_vars), std::move(new_body))
                 : Forall(std::move(new_vars), std::move(new_body));
    }
  }
  SI_CHECK(false);
  return *this;
}

namespace {

int Precedence(FormulaKind k) {
  switch (k) {
    case FormulaKind::kImplies:
      return 1;
    case FormulaKind::kOr:
      return 2;
    case FormulaKind::kAnd:
      return 3;
    default:
      return 4;  // atoms, negation, quantifiers print self-delimited
  }
}

void Render(const Formula& f, int parent_prec, std::string* out) {
  int prec = Precedence(f.kind());
  bool parens = prec < parent_prec;
  if (parens) out->push_back('(');
  switch (f.kind()) {
    case FormulaKind::kTrue:
      *out += "true";
      break;
    case FormulaKind::kFalse:
      *out += "false";
      break;
    case FormulaKind::kAtom: {
      *out += f.relation();
      out->push_back('(');
      const std::vector<Term>& args = f.args();
      for (size_t i = 0; i < args.size(); ++i) {
        if (i > 0) *out += ", ";
        *out += args[i].ToString();
      }
      out->push_back(')');
      break;
    }
    case FormulaKind::kEq:
      *out += f.eq_lhs().ToString();
      *out += " = ";
      *out += f.eq_rhs().ToString();
      break;
    case FormulaKind::kNot:
      *out += "not ";
      Render(f.child(), 4, out);
      break;
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      const char* op = f.kind() == FormulaKind::kAnd ? " and " : " or ";
      const std::vector<Formula>& kids = f.operands();
      for (size_t i = 0; i < kids.size(); ++i) {
        if (i > 0) *out += op;
        Render(kids[i], prec + 1, out);
      }
      break;
    }
    case FormulaKind::kImplies:
      Render(f.premise(), prec + 1, out);
      *out += " implies ";
      Render(f.conclusion(), prec, out);
      break;
    case FormulaKind::kExists:
    case FormulaKind::kForall: {
      *out += f.kind() == FormulaKind::kExists ? "exists " : "forall ";
      const std::vector<Variable>& vars = f.quantified();
      for (size_t i = 0; i < vars.size(); ++i) {
        if (i > 0) *out += ", ";
        *out += vars[i].name();
      }
      *out += ". ";
      Render(f.body(), 1, out);
      break;
    }
  }
  if (parens) out->push_back(')');
}

}  // namespace

std::string Formula::ToString() const {
  std::string out;
  Render(*this, 0, &out);
  return out;
}

bool FoQuery::IsWellFormed() const {
  VarSet declared(head.begin(), head.end());
  if (declared.size() != head.size()) return false;  // no repeated head vars
  const VarSet& free = body.FreeVariables();
  return declared == free;
}

std::string FoQuery::ToString() const {
  std::string out = name + "(";
  for (size_t i = 0; i < head.size(); ++i) {
    if (i > 0) out += ", ";
    out += head[i].name();
  }
  out += ") := ";
  out += body.ToString();
  return out;
}

}  // namespace scalein
