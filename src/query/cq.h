#ifndef SCALEIN_QUERY_CQ_H_
#define SCALEIN_QUERY_CQ_H_

#include <map>
#include <string>
#include <vector>

#include "query/formula.h"
#include "query/term.h"

namespace scalein {

/// One relation atom R(t1, ..., tk) in a conjunctive-query body. Arguments
/// may be variables or constants (x = c equalities are normalized into
/// constants at construction / parse time).
struct CqAtom {
  std::string relation;
  std::vector<Term> args;

  VarSet Vars() const;
  std::string ToString() const;
  bool operator==(const CqAtom& o) const {
    return relation == o.relation && args == o.args;
  }
};

/// A conjunctive query in tableau form (§2):
///   Q(t̄) :- R1(t̄1), ..., Rn(t̄n)
/// Head terms may repeat and may be constants (after normalization). A CQ
/// with an empty head is Boolean.
class Cq {
 public:
  /// The trivial Boolean query "q() :- true".
  Cq() : name_("q") {}

  Cq(std::string name, std::vector<Term> head, std::vector<CqAtom> atoms);

  const std::string& name() const { return name_; }
  const std::vector<Term>& head() const { return head_; }
  const std::vector<CqAtom>& atoms() const { return atoms_; }

  bool IsBoolean() const { return head_.empty(); }

  /// Variables appearing in the head.
  VarSet HeadVars() const;
  /// All variables of the body.
  VarSet BodyVars() const;
  /// Body variables not in the head (existentially quantified).
  VarSet ExistentialVars() const;

  /// ‖Q‖, the size of the tableau of Q (§3): the number of atoms. This is the
  /// bound on witness size for Boolean CQs and the per-answer-tuple support
  /// bound for data-selecting CQs.
  size_t TableauSize() const { return atoms_.size(); }

  /// Every head variable must occur in the body (safety). Aborted on
  /// construction otherwise, so public Cqs are always safe.
  bool IsSafe() const;

  /// The FO formula ∃ (body − head vars) . (∧ atoms); True for empty body.
  Formula ToFormula() const;

  /// Wraps into an FoQuery. Requires an all-variable, duplicate-free head
  /// (general heads are evaluated through CqEvaluator instead).
  FoQuery ToFoQuery() const;

  /// Applies a substitution to head and body (used to fix parameters, e.g.,
  /// p := p0 in the Facebook queries).
  Cq Substitute(const std::map<Variable, Term>& subst) const;

  /// Renames every variable fresh (for combining with other queries without
  /// collision); head order preserved.
  Cq FreshenVariables() const;

  std::string ToString() const;

 private:
  std::string name_;
  std::vector<Term> head_;
  std::vector<CqAtom> atoms_;
};

/// Union of conjunctive queries Q1 ∪ ... ∪ Qk (§2). All disjuncts must have
/// the same head arity.
class Ucq {
 public:
  Ucq(std::string name, std::vector<Cq> disjuncts);

  const std::string& name() const { return name_; }
  const std::vector<Cq>& disjuncts() const { return disjuncts_; }
  size_t HeadArity() const { return disjuncts_[0].head().size(); }
  bool IsBoolean() const { return HeadArity() == 0; }

  /// ‖Q‖ = max over disjuncts (§3).
  size_t TableauSize() const;

  std::string ToString() const;

 private:
  std::string name_;
  std::vector<Cq> disjuncts_;
};

}  // namespace scalein

#endif  // SCALEIN_QUERY_CQ_H_
