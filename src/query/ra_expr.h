#ifndef SCALEIN_QUERY_RA_EXPR_H_
#define SCALEIN_QUERY_RA_EXPR_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "relational/value.h"
#include "util/check.h"

namespace scalein {

/// Set of attribute names; the "X" of the §5 RAA rules.
using AttrSet = std::set<std::string>;

std::string AttrSetToString(const AttrSet& attrs);
AttrSet AttrUnion(const AttrSet& a, const AttrSet& b);
AttrSet AttrMinus(const AttrSet& a, const AttrSet& b);
AttrSet AttrIntersect(const AttrSet& a, const AttrSet& b);
bool AttrSubset(const AttrSet& a, const AttrSet& b);

/// One conjunct of a selection condition θ: `lhs op rhs` with op ∈ {=, ≠} and
/// rhs either another attribute or a constant. The paper assumes selection
/// conditions are conjunctions of equalities and inequalities (§5).
struct SelectionAtom {
  enum class Rhs { kAttribute, kConstant };

  std::string lhs;
  Rhs rhs_kind = Rhs::kConstant;
  std::string rhs_attr;
  Value rhs_const;
  bool negated = false;  ///< true for ≠

  static SelectionAtom AttrEqConst(std::string attr, Value c) {
    SelectionAtom a;
    a.lhs = std::move(attr);
    a.rhs_kind = Rhs::kConstant;
    a.rhs_const = c;
    return a;
  }
  static SelectionAtom AttrEqAttr(std::string l, std::string r) {
    SelectionAtom a;
    a.lhs = std::move(l);
    a.rhs_kind = Rhs::kAttribute;
    a.rhs_attr = std::move(r);
    return a;
  }
  static SelectionAtom AttrNeqConst(std::string attr, Value c) {
    SelectionAtom a = AttrEqConst(std::move(attr), c);
    a.negated = true;
    return a;
  }
  static SelectionAtom AttrNeqAttr(std::string l, std::string r) {
    SelectionAtom a = AttrEqAttr(std::move(l), std::move(r));
    a.negated = true;
    return a;
  }

  std::string ToString() const;
};

/// Conjunction of SelectionAtoms.
struct SelectionCondition {
  std::vector<SelectionAtom> conjuncts;

  /// Attributes A for which θ implies A = a for some constant a — the X' of
  /// the σ rule in §5. Computes the closure over attr=attr chains.
  AttrSet ConstantBoundAttrs(const std::vector<std::string>& attrs) const;

  /// All attributes mentioned.
  AttrSet MentionedAttrs() const;

  std::string ToString() const;
};

/// Named-attribute relational algebra expression (§5): base relations,
/// selection, projection, rename, union, difference, and natural join.
/// Immutable with shared subtrees; copying is O(1).
class RaExpr {
 public:
  enum class Kind : uint8_t {
    kRelation,
    kSelect,
    kProject,
    kRename,
    kUnion,
    kDiff,
    kJoin,
  };

  /// Base relation `name` with output attributes `attrs` (normally the
  /// relation schema's attribute list; rename before self-joins).
  static RaExpr Relation(std::string name, std::vector<std::string> attrs);

  static RaExpr Select(RaExpr input, SelectionCondition condition);
  /// Projection onto `attrs` (each must be an input attribute); set semantics.
  static RaExpr Project(RaExpr input, std::vector<std::string> attrs);
  /// Renames attributes per `mapping` (old -> new); unmentioned attrs keep
  /// their names.
  static RaExpr Rename(RaExpr input, std::map<std::string, std::string> mapping);
  /// Union; requires equal attribute *sets* (paper: attr(E1) = attr(E2)).
  static RaExpr Union(RaExpr a, RaExpr b);
  /// Difference; same requirement as Union.
  static RaExpr Diff(RaExpr a, RaExpr b);
  /// Natural join on shared attribute names; output order is a's attributes
  /// followed by b's non-shared attributes.
  static RaExpr Join(RaExpr a, RaExpr b);

  Kind kind() const;

  /// Ordered output attributes; attr(E) of the paper as an ordered list.
  const std::vector<std::string>& attributes() const;
  /// attr(E) as a set.
  AttrSet AttributeSet() const;

  const std::string& relation_name() const;                // kRelation
  const RaExpr& input() const;                             // kSelect/kProject/kRename
  const SelectionCondition& condition() const;             // kSelect
  const std::vector<std::string>& projection() const;      // kProject
  const std::map<std::string, std::string>& renaming() const;  // kRename
  const RaExpr& left() const;                              // kUnion/kDiff/kJoin
  const RaExpr& right() const;                             // kUnion/kDiff/kJoin

  /// Names of all base relations mentioned.
  std::set<std::string> BaseRelations() const;

  size_t Size() const;  ///< node count

  std::string ToString() const;

  bool SamePointer(const RaExpr& o) const { return node_ == o.node_; }
  /// Pointer-identity key for memo tables.
  const void* Key() const { return node_.get(); }

 private:
  struct Node;
  explicit RaExpr(std::shared_ptr<const Node> node) : node_(std::move(node)) {}
  std::shared_ptr<const Node> node_;
};

}  // namespace scalein

#endif  // SCALEIN_QUERY_RA_EXPR_H_
