#ifndef SCALEIN_IO_SHELL_H_
#define SCALEIN_IO_SHELL_H_

#include <memory>
#include <string>
#include <string_view>

#include "core/access_schema.h"
#include "relational/database.h"
#include "relational/schema.h"
#include "util/status.h"

namespace scalein {

/// Command interpreter behind examples/scalein_shell.cpp: builds up a schema,
/// an access schema, and a database, then answers analysis/evaluation/QDSI
/// commands. Output is returned as text so the interpreter is testable; the
/// example binary pipes stdin lines in and prints what comes back.
///
/// Commands (one per line; see `HelpText()`):
///   schema relation R(a, b, ...)
///   access access R(x) N=100 | access key R(a) | access fd R: a -> b
///   row <relation> v1,v2,...
///   load <relation> <csv-file>
///   show | conformance
///   analyze Q(x, ...) := <FO formula>
///   eval var=value,... Q(x, ...) := <FO formula>
///   qdsi <M> Q(x) :- <CQ body>
class Shell {
 public:
  Shell() = default;

  /// Executes one command line; returns the text to display. Errors are
  /// reported in the Status (nothing is printed on error paths).
  Result<std::string> Execute(std::string_view line);

  static std::string HelpText();

  const Schema& schema() const { return schema_; }
  const AccessSchema& access() const { return access_; }
  const Database* db() const { return db_.get(); }

 private:
  Database* EnsureDb();

  Schema schema_;
  AccessSchema access_;
  std::unique_ptr<Database> db_;
};

}  // namespace scalein

#endif  // SCALEIN_IO_SHELL_H_
