#ifndef SCALEIN_IO_SHELL_H_
#define SCALEIN_IO_SHELL_H_

#include <memory>
#include <string>
#include <string_view>

#include "core/access_schema.h"
#include "core/analysis_cache.h"
#include "eval/answer_set.h"
#include "exec/compiler.h"
#include "exec/governor.h"
#include "obs/correlation.h"
#include "obs/dump.h"
#include "obs/flight_recorder.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/workload.h"
#include "par/shard_advisor.h"
#include "query/formula.h"
#include "relational/database.h"
#include "relational/schema.h"
#include "util/status.h"

namespace scalein {

/// Pre-execution facts for one serve-mode query: the parse, the memoized §4
/// controllability analysis, and the static Theorem 4.2 fetch bound for the
/// given parameter set — everything the admission controller (src/serve)
/// needs *before* running the query. Built by Shell::PlanForServe.
struct ServePlan {
  std::string query_text;
  std::string fingerprint;
  Binding params;
  FoQuery query;
  std::shared_ptr<const ControllabilityAnalysis> analysis;
  /// The analysis-cache entry's compiled-plan set; EvalForServe consults it
  /// (under the session's compile mode) and falls back to interpretation on
  /// any compile failure. Dropped with the cache entry on DDL.
  std::shared_ptr<exec::CompiledPlanSet> compiled;
  /// BestOptionFor(params)->fetch_bound; < 0 when the query is not
  /// controlled by the given parameters (nothing to admit against).
  double static_bound = -1.0;
};

/// What one serve-mode evaluation produced: the client-facing rendering plus
/// the accounting the server folds into its envelope (actual fetches refund
/// the unspent lease) and metrics.
struct ServeEvalOutcome {
  size_t answers = 0;
  std::string rendered;      ///< capped AnswerSetToString text
  uint64_t fetched = 0;      ///< base tuples actually read
  double static_bound = -1.0;
  bool complete = true;      ///< false: governor tripped, partial extent
  exec::TripInfo trip;       ///< meaningful when !complete
  std::string warnings;      ///< surfaced journal/dump write failures
};

/// Command interpreter behind examples/scalein_shell.cpp: builds up a schema,
/// an access schema, and a database, then answers analysis/evaluation/QDSI
/// commands. Output is returned as text so the interpreter is testable; the
/// example binary pipes stdin lines in and prints what comes back.
///
/// Commands (one per line; see `HelpText()`):
///   schema relation R(a, b, ...)
///   access access R(x) N=100 | access key R(a) | access fd R: a -> b
///   row <relation> v1,v2,...
///   load <relation> <csv-file>
///   show | conformance
///   analyze Q(x, ...) := <FO formula>
///   eval var=value,... Q(x, ...) := <FO formula>
///   explain var=value,... Q(x, ...) := <FO formula>
///   explain qdsi <M> Q(x) :- <CQ body> | explain analyze <fo-query>
///   qdsi <M> Q(x) :- <CQ body>
///   limit [fetch=N] [deadline=MS] [rows=N] | limit off
///   compile [on|off|auto|status]   bytecode compilation of bounded plans
///   threads [N]    size the morsel worker pool; reports shard-advisor
///                  decisions per relation (and applies them on resize)
///   stats [prom] | stats watch <secs> [path] | stats watch off
///   journal | certify [dump.json|journal.jsonl] | dump [path]
///   slowlog [<ms>|off] | workload [top K | fingerprint <fp>]
///
/// `limit` arms the session's resource governor: later eval/explain/qdsi
/// commands run under the envelope and report *partial* results plus the
/// tripped limit instead of failing outright (explain tags the tripping
/// operator in the tree).
///
/// Observability: every session owns a flight recorder (installed as the
/// process-wide sink) and a query journal of access certificates — one
/// sealed certificate per eval. Each eval mints a QueryId
/// (obs/correlation.h) that stamps its spans, recorder events, certificate,
/// slow-log entry, journal line, and any post-mortem dump, so one query's
/// artifacts are joinable by one id. `journal` lists certificates, `certify`
/// re-verifies them offline, `dump` writes the joined post-mortem JSON. With
/// SCALEIN_DUMP_PATH set, the same dump is written automatically on governor
/// trips, failpoint-induced errors, and session end. With
/// SCALEIN_JOURNAL_PATH set, every certificate is also appended to a
/// persistent JSONL journal (rotated at SCALEIN_JOURNAL_MAX_BYTES) and the
/// workload aggregator replays it at startup, so `workload` statistics
/// survive restarts; scripts/workload_report.py reads the same files.
class Shell {
 public:
  /// Also arms the failpoint framework from SCALEIN_FAILPOINTS, the
  /// post-mortem dump from SCALEIN_DUMP_PATH, the periodic metrics dump from
  /// SCALEIN_METRICS_DUMP=<path>:<secs>, and the slow-query threshold from
  /// SCALEIN_SLOW_QUERY_MS — so piping a script through the shell exercises
  /// fault and observability paths without recompiling.
  Shell();
  ~Shell();
  Shell(Shell&&) = default;
  Shell& operator=(Shell&&) = default;

  /// Executes one command line; returns the text to display. Errors are
  /// reported in the Status (nothing is printed on error paths).
  Result<std::string> Execute(std::string_view line);

  static std::string HelpText();

  const Schema& schema() const { return schema_; }
  const AccessSchema& access() const { return access_; }
  const Database* db() const { return db_.get(); }
  /// Session-scoped metrics (queries, fetch totals, latency histogram);
  /// rendered by the `stats` command.
  const obs::MetricsRegistry& metrics() const { return *metrics_; }
  /// Session resource envelope (armed by the `limit` command).
  const exec::GovernorLimits& limits() const { return limits_; }
  /// Session flight recorder (installed as the process-global sink while
  /// this shell is the most recently constructed one).
  const obs::FlightRecorder& recorder() const { return *recorder_; }
  /// Per-query access certificates, newest last.
  const obs::QueryJournal& journal() const { return *journal_; }
  /// Per-fingerprint workload telemetry (always on; fed by every eval and,
  /// when SCALEIN_JOURNAL_PATH is set, by the replayed persistent journal).
  const obs::WorkloadAggregator& workload() const { return *workload_; }
  /// Persistent JSONL journal store; nullptr without SCALEIN_JOURNAL_PATH.
  const obs::JournalStore* journal_store() const {
    return journal_store_.get();
  }
  /// Memoized controllability derivations; invalidated on schema/access DDL.
  const AnalysisCache& analysis_cache() const { return *analysis_cache_; }
  /// Adaptive shard advisor: re-shards relations from cardinality and
  /// observed probe traffic (`threads` reports it, eval feeds it back).
  const par::ShardAdvisor& shard_advisor() const { return shard_advisor_; }

  /// Serve-mode hooks (src/serve builds on these). PrepareServe freezes the
  /// catalog for concurrent evaluation: it builds every access-schema index
  /// up front so no later evaluation mutates the database. PlanForServe
  /// parses "var=value,... <query>" and derives the pre-execution admission
  /// facts (call it serially — the server holds its admission mutex).
  /// EvalForServe runs one admitted query under the given governor envelope
  /// and is safe to call from concurrent sessions after PrepareServe: it
  /// touches only thread-safe members (metrics, workload aggregator, journal
  /// ring + store) and never the shard advisor or the session sequence.
  Status PrepareServe();
  Result<ServePlan> PlanForServe(std::string_view rest);
  /// `client_tag` is the serve layer's caller-supplied trace tag; it rides
  /// next to the sealed certificate in the persistent journal (a non-sealed
  /// sibling, like latency) and is empty for untagged requests.
  Result<ServeEvalOutcome> EvalForServe(const ServePlan& plan,
                                        const exec::GovernorLimits& limits,
                                        const obs::QueryId& qid,
                                        const std::string& client_tag = "");
  /// Seals + journals a server-minted verdict certificate (admission rejects
  /// and queue-timeout sheds carry the static bound that justified them, so
  /// they are `certify`-checkable like any eval). Returns warning lines.
  std::string RecordServeVerdict(obs::AccessCertificate cert,
                                 double elapsed_ms,
                                 const std::string& client_tag = "");
  /// Session metrics registry, mutably — the server stamps serve.* series
  /// into the same registry `stats prom` renders. Thread-safe.
  obs::MetricsRegistry* mutable_metrics() { return metrics_.get(); }

 private:
  Database* EnsureDb();
  Result<std::string> ExecuteImpl(const std::string& command,
                                  std::string_view rest);
  /// Shared body of `eval` and `explain`: bounded evaluation of a
  /// parameterized FO query. `explain` additionally collects per-node
  /// counters/timings and renders the EXPLAIN ANALYZE tree with the static
  /// Theorem 4.2 bound next to the actual fetch count.
  Result<std::string> RunEval(std::string_view rest, bool explain);
  /// `qdsi` / `explain qdsi`: the §3 decision procedure; explain renders the
  /// verdict/method/work span args collected during the decision.
  Result<std::string> RunQdsi(std::string_view rest, bool explain);
  /// `analyze` / `explain analyze`: controllability analysis; explain adds
  /// the analysis spans (derived options, work).
  Result<std::string> RunAnalyze(std::string_view rest, bool explain);
  /// Parses `limit` arguments into limits_ ("off" clears them).
  Result<std::string> RunLimit(std::string_view rest);
  /// `compile [on|off|auto|status]`: the session's bytecode-compilation mode
  /// (also settable via SCALEIN_COMPILE). `status` reports mode + counters.
  Result<std::string> RunCompile(std::string_view rest);
  Result<std::string> RunStats(std::string_view rest);
  Result<std::string> RunJournal() const;
  /// `certify` re-verifies the live journal; `certify <dump.json>` loads
  /// certificates back out of a dump file and re-verifies them offline.
  Result<std::string> RunCertify(std::string_view rest) const;
  Result<std::string> RunDump(std::string_view rest) const;
  Result<std::string> RunSlowlog(std::string_view rest);
  /// `threads [N]`: show or resize the global morsel worker pool.
  Result<std::string> RunThreads(std::string_view rest);
  /// `workload [top K | fingerprint <fp>]`: per-fingerprint telemetry.
  Result<std::string> RunWorkload(std::string_view rest) const;
  /// Seals, tallies, journals (ring + persistent store), and records one
  /// evaluation's certificate; returns warning lines for surfaced
  /// append/dump failures (satellite: no silently dropped writes).
  std::string RecordEvalOutcome(obs::AccessCertificate cert, double elapsed_ms,
                                bool noncontrollable, bool governor_tripped,
                                const std::string& client_tag = "");

  Schema schema_;
  AccessSchema access_;
  exec::GovernorLimits limits_;
  /// Bytecode compilation of bounded plans (SCALEIN_COMPILE / `compile`):
  /// kAuto compiles a parameter-set on its second sighting, kOn immediately,
  /// kOff never — kOff restores the interpreter byte for byte.
  exec::CompiledPlanSet::Mode compile_mode_ =
      exec::CompiledPlanSet::Mode::kAuto;
  std::unique_ptr<Database> db_;
  // Behind pointers: these own mutexes/threads, and Shell must stay movable.
  std::unique_ptr<obs::MetricsRegistry> metrics_ =
      std::make_unique<obs::MetricsRegistry>();
  std::unique_ptr<obs::FlightRecorder> recorder_;
  std::unique_ptr<obs::QueryJournal> journal_;
  std::unique_ptr<obs::JournalStore> journal_store_;
  std::unique_ptr<obs::WorkloadAggregator> workload_ =
      std::make_unique<obs::WorkloadAggregator>();
  std::unique_ptr<obs::MetricsDumper> dumper_;
  std::unique_ptr<AnalysisCache> analysis_cache_ =
      std::make_unique<AnalysisCache>();
  par::ShardAdvisor shard_advisor_;
  std::string dump_path_;  ///< SCALEIN_DUMP_PATH; default for `dump`
  uint64_t query_seq_ = 0;    ///< per-session QueryId sequence
  std::string journal_note_;  ///< startup JournalStore load report
};

}  // namespace scalein

#endif  // SCALEIN_IO_SHELL_H_
