#include "io/shell.h"

#include <cstdlib>

#include "core/bounded_eval.h"
#include "core/controllability.h"
#include "core/qdsi.h"
#include "exec/vm.h"
#include "io/catalog.h"
#include "obs/explain.h"
#include "obs/trace.h"
#include "par/worker_pool.h"
#include "query/parser.h"
#include "util/failpoint.h"
#include "util/strings.h"

namespace scalein {
namespace {

/// Parses "x=1,y=\"NYC\"" into a Binding.
Result<Binding> ParseShellBinding(std::string_view text) {
  Binding out;
  if (StripWhitespace(text).empty()) return out;
  for (const std::string& piece : Split(text, ',')) {
    size_t eq = piece.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("expected var=value in '" + piece + "'");
    }
    std::string var(StripWhitespace(std::string_view(piece).substr(0, eq)));
    Value value = ParseCsvValue(std::string_view(piece).substr(eq + 1));
    out.emplace(Variable::Named(var), value);
  }
  return out;
}

/// Parses a decimal uint64 ("fetch=100" right-hand sides).
Result<uint64_t> ParseShellU64(std::string_view text) {
  if (text.empty()) return Status::InvalidArgument("expected a number");
  uint64_t out = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("expected a number, got '" +
                                     std::string(text) + "'");
    }
    out = out * 10 + static_cast<uint64_t>(c - '0');
  }
  return out;
}

/// One line per collected span: name, duration, and its key=value args (arg
/// values are pre-rendered JSON fragments; printed as-is). The explain
/// renderer for `explain qdsi` / `explain analyze`.
std::string RenderSpans(const std::vector<obs::TraceEvent>& events) {
  std::string out;
  for (const obs::TraceEvent& e : events) {
    out += StrFormat("  %s (%.3f ms)", e.name.c_str(),
                     static_cast<double>(e.duration_ns) / 1e6);
    for (const auto& [key, value] : e.args) {
      out += " " + key + "=" + value;
    }
    out += "\n";
  }
  return out;
}

}  // namespace

Shell::Shell() {
  // Best-effort: a malformed SCALEIN_FAILPOINTS spec must not brick the
  // shell; it just leaves failpoints disarmed.
  (void)util::Failpoints::Global().InitFromEnv();
  recorder_ = std::make_unique<obs::FlightRecorder>();
  journal_ = std::make_unique<obs::QueryJournal>();
  // Latest shell wins the global slot; the destructor only uninstalls if it
  // still owns it, so stacked shells in tests behave.
  obs::FlightRecorder::InstallGlobal(recorder_.get());
  if (const char* path = std::getenv("SCALEIN_DUMP_PATH");
      path != nullptr && path[0] != '\0') {
    dump_path_ = path;
    obs::ArmPostMortem(dump_path_, recorder_.get(), journal_.get(),
                       metrics_.get());
  }
  if (const char* jpath = std::getenv("SCALEIN_JOURNAL_PATH");
      jpath != nullptr && jpath[0] != '\0') {
    uint64_t max_bytes = obs::JournalStore::kDefaultMaxBytes;
    if (const char* mb = std::getenv("SCALEIN_JOURNAL_MAX_BYTES");
        mb != nullptr && mb[0] != '\0') {
      if (Result<uint64_t> parsed = ParseShellU64(mb);
          parsed.ok() && *parsed > 0) {
        max_bytes = *parsed;
      }
    }
    journal_store_ = std::make_unique<obs::JournalStore>(jpath, max_bytes);
    // Replay the persisted history oldest-first so `workload` statistics
    // survive restarts; seal mismatches are reported, never fatal.
    obs::JournalLoadReport report;
    Result<std::vector<obs::JournalEntry>> loaded =
        journal_store_->Load(&report);
    if (!loaded.ok()) {
      journal_note_ =
          "warning: journal load failed: " + loaded.status().message() + "\n";
    } else if (!loaded->empty()) {
      for (const obs::JournalEntry& e : *loaded) {
        // Tampered entries are reported (in the load note), never trusted:
        // both this replay and workload_report.py exclude them, so the two
        // views stay byte-comparable.
        if (e.seal_ok) workload_->Observe(e.cert, e.latency_ms, e.noncontrollable);
      }
      journal_note_ = "replayed " + report.ToString() + "\n";
      workload_->ExportMetrics(metrics_.get());
    }
  }
  if (const char* spec = std::getenv("SCALEIN_METRICS_DUMP");
      spec != nullptr && spec[0] != '\0') {
    std::string path;
    double secs = 0;
    if (obs::ParseMetricsDumpSpec(spec, &path, &secs).ok()) {
      dumper_ = std::make_unique<obs::MetricsDumper>();
      (void)dumper_->Start(std::move(path), secs, metrics_.get());
    }
  }
  if (const char* ms = std::getenv("SCALEIN_SLOW_QUERY_MS");
      ms != nullptr && ms[0] != '\0') {
    Result<uint64_t> parsed = ParseShellU64(ms);
    if (parsed.ok()) {
      metrics_->GetGauge("shell.slow_query_threshold_ms")
          .Set(static_cast<int64_t>(*parsed));
    }
  }
  if (const char* mode = std::getenv("SCALEIN_COMPILE");
      mode != nullptr && mode[0] != '\0') {
    compile_mode_ = exec::CompiledPlanSet::ParseMode(mode);
  }
}

Shell::~Shell() {
  if (dumper_ != nullptr) dumper_->Stop();
  if (recorder_ != nullptr &&
      obs::FlightRecorder::Global() == recorder_.get()) {
    if (obs::PostMortemArmed()) {
      (void)obs::WritePostMortem("shell-exit");
      obs::DisarmPostMortem();
    }
    obs::FlightRecorder::InstallGlobal(nullptr);
  }
}

Database* Shell::EnsureDb() {
  if (db_ == nullptr) db_ = std::make_unique<Database>(schema_);
  return db_.get();
}

std::string Shell::HelpText() {
  return
      "commands:\n"
      "  schema relation R(a, b, ...)\n"
      "  access access R(x) N=100 | access key R(a) | access fd R: a -> b\n"
      "  row <relation> v1,v2,...\n"
      "  load <relation> <csv-path>\n"
      "  show | conformance\n"
      "  analyze Q(x, ...) := <FO formula>\n"
      "  eval var=value,... Q(x, ...) := <FO formula>\n"
      "  explain var=value,... Q(x, ...) := <FO formula>\n"
      "  explain qdsi <M> <cq-rule> | explain analyze <fo-query>\n"
      "  qdsi <M> Q(x) :- <CQ body>\n"
      "  limit [fetch=N] [deadline=MS] [rows=N] | limit off\n"
      "  compile [on|off|auto|status]  bytecode compilation of bounded plans\n"
      "                 (auto: compile a parameter-set on its 2nd sighting;\n"
      "                 off restores pure interpretation; also settable via\n"
      "                 SCALEIN_COMPILE)\n"
      "  threads [N]    show or resize the morsel worker pool and report\n"
      "                 shard-advisor decisions (applied on resize)\n"
      "  stats [prom] | stats watch <secs> [path] | stats watch off\n"
      "  journal        list this session's access certificates\n"
      "  certify        re-verify every certificate offline\n"
      "  certify <dump.json>  re-verify certificates from a dump file\n"
      "  dump [path]    write the flight-recorder/journal/metrics dump\n"
      "  slowlog [<ms>|off]  set/show the slow-query threshold\n"
      "  workload [top K | fingerprint <fp>]  per-fingerprint bound-accuracy\n"
      "                 telemetry (persisted via SCALEIN_JOURNAL_PATH)\n"
      "  quit\n";
}

Result<std::string> Shell::Execute(std::string_view line) {
  line = StripWhitespace(line);
  if (line.empty() || line[0] == '#') return std::string();
  size_t space = line.find(' ');
  std::string command(line.substr(0, space));
  std::string_view rest =
      space == std::string_view::npos ? "" : StripWhitespace(line.substr(space));

  if (obs::FlightRecorderEnabled()) {
    obs::RecordFlightEvent(obs::EventKind::kShellCommand, command);
  }
  Result<std::string> out = ExecuteImpl(command, rest);
  if (!out.ok() && out.status().code() == StatusCode::kInternal &&
      out.status().message().find("failpoint") != std::string::npos) {
    // An injected fault surfaced to the user: snapshot the evidence.
    (void)obs::WritePostMortem("failpoint-error");
  }
  return out;
}

Result<std::string> Shell::ExecuteImpl(const std::string& command,
                                       std::string_view rest) {
  if (command == "help") return HelpText();

  if (command == "schema") {
    if (db_ != nullptr) {
      return Status::FailedPrecondition("schema is frozen once data is loaded");
    }
    SI_ASSIGN_OR_RETURN(Schema parsed, ParseSchemaText(rest));
    for (const RelationSchema& r : parsed.relations()) {
      SI_RETURN_IF_ERROR(schema_.AddRelation(r));
    }
    // DDL: cached derivations may reference the old environment.
    analysis_cache_->Invalidate();
    return std::string("ok\n");
  }

  if (command == "access") {
    SI_ASSIGN_OR_RETURN(AccessSchema parsed,
                        ParseAccessSchemaText(rest, schema_));
    for (const AccessStatement& s : parsed.statements()) {
      if (s.is_plain()) {
        access_.Add(s.relation, s.key_attrs, s.max_tuples, s.retrieval_time);
      } else {
        access_.AddEmbedded(s.relation, s.key_attrs, *s.value_attrs,
                            s.max_tuples, s.retrieval_time);
      }
    }
    // Cached options hold pointers into access_'s statement storage, so any
    // mutation invalidates even if the rendered text were unchanged.
    analysis_cache_->Invalidate();
    return std::string("ok\n");
  }

  if (command == "row") {
    size_t sp = rest.find(' ');
    if (sp == std::string_view::npos) {
      return Status::InvalidArgument("usage: row <relation> v1,v2,...");
    }
    std::string relation(rest.substr(0, sp));
    SI_RETURN_IF_ERROR(
        LoadRelationCsv(EnsureDb(), relation, rest.substr(sp + 1)));
    return std::string("ok\n");
  }

  if (command == "load") {
    size_t sp = rest.find(' ');
    if (sp == std::string_view::npos) {
      return Status::InvalidArgument("usage: load <relation> <csv-path>");
    }
    std::string relation(rest.substr(0, sp));
    SI_ASSIGN_OR_RETURN(std::string csv,
                        ReadFileToString(std::string(rest.substr(sp + 1))));
    SI_RETURN_IF_ERROR(LoadRelationCsv(EnsureDb(), relation, csv));
    return std::string("ok\n");
  }

  if (command == "show") {
    std::string out = schema_.ToString() + access_.ToString();
    if (db_ != nullptr) {
      out += StrFormat("|D| = %zu tuples\n", db_->TotalTuples());
    }
    return out;
  }

  if (command == "conformance") {
    if (db_ == nullptr) return Status::FailedPrecondition("no data loaded");
    SI_ASSIGN_OR_RETURN(ConformanceReport report,
                        CheckConformance(*db_, schema_, access_));
    std::string out =
        std::string("conforms: ") + (report.conforms ? "yes" : "no") + "\n";
    for (const ConformanceViolation& v : report.violations) {
      out += "  " + v.ToString(access_) + "\n";
    }
    return out;
  }

  if (command == "analyze") return RunAnalyze(rest, /*explain=*/false);

  if (command == "eval") return RunEval(rest, /*explain=*/false);

  if (command == "explain") {
    // Routed explains: `explain qdsi ...` / `explain analyze ...` re-run the
    // sub-command under a session-local tracer and render its span args.
    if (rest.substr(0, 5) == "qdsi " ) {
      return RunQdsi(StripWhitespace(rest.substr(5)), /*explain=*/true);
    }
    if (rest.substr(0, 8) == "analyze ") {
      return RunAnalyze(StripWhitespace(rest.substr(8)), /*explain=*/true);
    }
    return RunEval(rest, /*explain=*/true);
  }

  if (command == "stats") return RunStats(rest);

  if (command == "limit") return RunLimit(rest);

  if (command == "compile") return RunCompile(rest);

  if (command == "qdsi") return RunQdsi(rest, /*explain=*/false);

  if (command == "journal") return RunJournal();

  if (command == "certify") return RunCertify(rest);

  if (command == "threads") return RunThreads(rest);

  if (command == "dump") return RunDump(rest);

  if (command == "slowlog") return RunSlowlog(rest);

  if (command == "workload") return RunWorkload(rest);

  return Status::InvalidArgument("unknown command '" + command +
                                 "' (try 'help')");
}

Result<std::string> Shell::RunEval(std::string_view rest, bool explain) {
  const char* usage = explain ? "usage: explain var=value,... <query>"
                              : "usage: eval var=value,... <query>";
  size_t sp = rest.find(' ');
  if (sp == std::string_view::npos) return Status::InvalidArgument(usage);
  SI_ASSIGN_OR_RETURN(Binding params, ParseShellBinding(rest.substr(0, sp)));
  const std::string query_text(StripWhitespace(rest.substr(sp + 1)));
  SI_ASSIGN_OR_RETURN(FoQuery q, ParseFoQuery(query_text, &schema_));
  if (db_ == nullptr) return Status::FailedPrecondition("no data loaded");
  // One correlation id per evaluation: every span, recorder event, slow-log
  // entry, certificate, journal line, and post-mortem dump produced below
  // carries it (workers included), so one query's artifacts join on one id.
  const obs::QueryId qid{obs::SessionFingerprint(), ++query_seq_};
  obs::ScopedQueryCorrelation correlate(qid);
  std::shared_ptr<exec::CompiledPlanSet> compiled_set;
  SI_ASSIGN_OR_RETURN(
      std::shared_ptr<const ControllabilityAnalysis> analysis,
      analysis_cache_->GetOrAnalyze(q.body, query_text, schema_, access_, {},
                                    &compiled_set));
  metrics_->GetGauge("shell.analysis_cache.hits")
      .Set(static_cast<int64_t>(analysis_cache_->stats().hits));
  metrics_->GetGauge("shell.analysis_cache.misses")
      .Set(static_cast<int64_t>(analysis_cache_->stats().misses));
  SI_RETURN_IF_ERROR(access_.BuildIndexes(db_.get(), schema_));

  const std::string fingerprint = obs::Fingerprint(query_text);
  if (obs::FlightRecorderEnabled()) {
    obs::RecordFlightEvent(obs::EventKind::kPlan, fingerprint,
                           {obs::EventArg("query", query_text)});
  }

  // Compiled path: consult the cache entry's plan set under the session's
  // compile mode. nullptr (deferred, unsupported, or off) means interpret;
  // a genuine compile failure additionally counts as a fallback.
  VarSet param_vars;
  for (const auto& [v, val] : params) {
    (void)val;
    param_vars.insert(v);
  }
  std::shared_ptr<const exec::CompiledProgram> program;
  std::string compile_why;
  if (compiled_set != nullptr) {
    bool compile_failed = false;
    program = compiled_set->GetOrCompilePlain(compile_mode_, q, analysis,
                                              param_vars, &compile_why,
                                              &compile_failed);
    if (compile_failed) {
      metrics_->GetCounter("exec.compiled_fallbacks").Increment();
    }
  }
  BoundedEvalStats stats;
  stats.capture_ops = explain;
  const uint64_t start_ns = obs::MonotonicNowNs();
  Result<exec::Degraded<AnswerSet>> evaled = [&] {
    if (program != nullptr) {
      metrics_->GetCounter("exec.compiled_hits").Increment();
      exec::CompiledEvaluator vm(db_.get());
      vm.set_collect_timing(explain);
      vm.set_limits(limits_);
      return vm.EvaluateDegraded(*program, params, &stats);
    }
    BoundedEvaluator evaluator(db_.get());
    evaluator.set_collect_timing(explain);
    evaluator.set_limits(limits_);
    return evaluator.EvaluateDegraded(q, *analysis, params, &stats);
  }();
  const double elapsed_ms =
      static_cast<double>(obs::MonotonicNowNs() - start_ns) / 1e6;
  if (!evaled.ok()) {
    // A non-controllable query is workload signal, not just an error: seal a
    // no-static-bound certificate for it so `workload` and the offline report
    // can rank recurring classes that a view would make controllable
    // (ROADMAP item 5) before surfacing the original error.
    if (evaled.status().code() == StatusCode::kFailedPrecondition &&
        evaled.status().message().find("not controlled") !=
            std::string::npos) {
      metrics_->GetCounter("shell.noncontrollable_queries").Increment();
      obs::AccessCertificate cert;
      cert.query_fingerprint = fingerprint;
      cert.query_id = obs::RenderQueryId(qid);
      cert.query_text = query_text;
      (void)RecordEvalOutcome(std::move(cert), elapsed_ms,
                              /*noncontrollable=*/true,
                              /*governor_tripped=*/false);
    }
    return evaled.status();
  }
  exec::Degraded<AnswerSet> degraded = std::move(evaled).ValueOrDie();
  metrics_
      ->GetHistogram("shell.eval_latency_ms", obs::DefaultLatencyBucketsMs())
      .Observe(elapsed_ms);
  const AnswerSet& answers = degraded.value;
  metrics_->GetCounter("shell.queries").Increment();
  metrics_->GetCounter("shell.base_tuples_fetched")
      .Increment(stats.base_tuples_fetched);
  metrics_->GetCounter("shell.index_lookups").Increment(stats.index_lookups);
  for (const auto& [relation, fetched] : stats.fetched_by_relation) {
    metrics_->GetCounter("shell.fetched." + relation).Increment(fetched);
  }
  for (const auto& [lane, fetched] : stats.fetched_by_lane) {
    metrics_->GetCounter(StrFormat("shell.lane.%d.fetched", lane))
        .Increment(fetched);
  }
  for (const auto& [lane, lookups] : stats.lookups_by_lane) {
    metrics_->GetCounter(StrFormat("shell.lane.%d.lookups", lane))
        .Increment(lookups);
  }
  // Feedback loop: with a multi-lane pool, let the probe traffic this query
  // just exported re-shard hot relations before the next evaluation.
  if (par::WorkerPool::Global().threads() > 1) {
    (void)shard_advisor_.Advise(db_.get(), *metrics_, "shell.fetched.",
                                par::WorkerPool::Global().threads(),
                                /*apply=*/true);
    metrics_->GetGauge("shell.advisor.reshards")
        .Set(static_cast<int64_t>(shard_advisor_.reshards()));
  }
  if (!degraded.complete) {
    metrics_
        ->GetCounter(std::string("shell.governor.trips.") +
                     exec::LimitKindName(degraded.trip.kind))
        .Increment();
  }

  // Slow-query log: the threshold lives in a gauge so it is visible in
  // `stats` output and settable from both `slowlog` and the environment.
  const int64_t slow_ms =
      metrics_->GetGauge("shell.slow_query_threshold_ms").value();
  if (slow_ms > 0 && elapsed_ms >= static_cast<double>(slow_ms)) {
    metrics_->GetCounter("shell.slow_queries").Increment();
    if (obs::FlightRecorderEnabled()) {
      obs::RecordFlightEvent(
          obs::EventKind::kSlowQuery, fingerprint,
          {obs::EventArg("ms", elapsed_ms),
           obs::EventArg("threshold_ms", static_cast<uint64_t>(slow_ms))});
    }
  }

  // Seal this query's access certificate and journal it.
  obs::AccessCertificate cert;
  cert.query_fingerprint = fingerprint;
  cert.query_id = obs::RenderQueryId(qid);
  cert.query_text = query_text;
  cert.static_bound = stats.static_bound;
  cert.actual_fetches = stats.base_tuples_fetched;
  cert.index_lookups = stats.index_lookups;
  cert.ops.reserve(stats.ops.size());
  for (const exec::OpCounters& op : stats.ops) {
    obs::CertOp co;
    co.label = op.label;
    co.rows_out = op.rows_out;
    co.tuples_fetched = op.tuples_fetched;
    co.index_lookups = op.index_lookups;
    co.static_bound = op.static_bound;
    cert.ops.push_back(std::move(co));
  }
  cert.tripped = !degraded.complete;
  if (cert.tripped) cert.trip_reason = degraded.trip.ToString();
  const std::string warnings =
      RecordEvalOutcome(std::move(cert), elapsed_ms, /*noncontrollable=*/false,
                        /*governor_tripped=*/!degraded.complete);

  if (explain) {
    std::string out =
        obs::RenderExplainAnalyze(stats.ops, stats.base_tuples_fetched,
                                  stats.index_lookups, stats.static_bound,
                                  degraded.trip);
    if (!stats.fetched_by_lane.empty()) {
      out += "lanes:";
      for (const auto& [lane, fetched] : stats.fetched_by_lane) {
        out += StrFormat(" %d=%llu", lane,
                         static_cast<unsigned long long>(fetched));
      }
      out += "\n";
    }
    if (program != nullptr) {
      out += "compiled:\n" + program->Disassemble();
    } else if (compile_mode_ != exec::CompiledPlanSet::Mode::kOff &&
               !compile_why.empty()) {
      out += "compiled: interpreted (" + compile_why + ")\n";
    }
    return out +
           StrFormat("(%zu answers%s)\n", answers.size(),
                     degraded.complete ? "" : ", partial") +
           warnings;
  }
  std::string out =
      AnswerSetToString(answers, 50) +
      StrFormat("\n(%zu answers, %llu base tuples fetched%s)\n",
                answers.size(),
                static_cast<unsigned long long>(stats.base_tuples_fetched),
                degraded.complete ? "" : ", partial");
  if (!degraded.complete) {
    out += "tripped: " + degraded.trip.ToString() + "\n";
  }
  out += warnings;
  return out;
}

Status Shell::PrepareServe() {
  if (db_ == nullptr) return Status::FailedPrecondition("no data loaded");
  // Index construction is the one database mutation on the eval path; doing
  // it here means concurrent serve evaluations only ever read.
  return access_.BuildIndexes(db_.get(), schema_);
}

Result<ServePlan> Shell::PlanForServe(std::string_view rest) {
  size_t sp = rest.find(' ');
  if (sp == std::string_view::npos) {
    return Status::InvalidArgument("usage: eval var=value,... <query>");
  }
  ServePlan plan;
  SI_ASSIGN_OR_RETURN(plan.params, ParseShellBinding(rest.substr(0, sp)));
  plan.query_text = std::string(StripWhitespace(rest.substr(sp + 1)));
  SI_ASSIGN_OR_RETURN(plan.query, ParseFoQuery(plan.query_text, &schema_));
  if (db_ == nullptr) return Status::FailedPrecondition("no data loaded");
  plan.fingerprint = obs::Fingerprint(plan.query_text);
  SI_ASSIGN_OR_RETURN(plan.analysis,
                      analysis_cache_->GetOrAnalyze(plan.query.body,
                                                    plan.query_text, schema_,
                                                    access_, {},
                                                    &plan.compiled));
  VarSet param_vars;
  for (const auto& [v, val] : plan.params) {
    (void)val;
    param_vars.insert(v);
  }
  // The same option the evaluator will execute, so the bound the admission
  // decision cites is the bound the certificate will carry.
  const ControlOption* opt = plan.analysis->BestOptionFor(param_vars);
  plan.static_bound = opt == nullptr ? -1.0 : opt->fetch_bound;
  return plan;
}

Result<ServeEvalOutcome> Shell::EvalForServe(const ServePlan& plan,
                                             const exec::GovernorLimits& limits,
                                             const obs::QueryId& qid,
                                             const std::string& client_tag) {
  // The correlation slot is process-wide; concurrent sessions interleave
  // recorder/span stamping, but the certificate's id below is set explicitly
  // so journals stay exact.
  obs::ScopedQueryCorrelation correlate(qid);
  if (obs::FlightRecorderEnabled()) {
    obs::RecordFlightEvent(obs::EventKind::kPlan, plan.fingerprint,
                           {obs::EventArg("query", plan.query_text)});
  }
  // Serve-side compiled path: thread-safe plan set, shared across sessions
  // via the cache entry. Any compile failure falls back to interpretation
  // (the sanctioned path, counted by exec.compiled_fallbacks).
  VarSet param_vars;
  for (const auto& [v, val] : plan.params) {
    (void)val;
    param_vars.insert(v);
  }
  std::shared_ptr<const exec::CompiledProgram> program;
  if (plan.compiled != nullptr) {
    std::string why;
    bool compile_failed = false;
    program = plan.compiled->GetOrCompilePlain(compile_mode_, plan.query,
                                               plan.analysis, param_vars, &why,
                                               &compile_failed);
    if (compile_failed) {
      metrics_->GetCounter("exec.compiled_fallbacks").Increment();
    }
  }
  BoundedEvalStats stats;
  const uint64_t start_ns = obs::MonotonicNowNs();
  Result<exec::Degraded<AnswerSet>> evaled = [&] {
    if (program != nullptr) {
      metrics_->GetCounter("exec.compiled_hits").Increment();
      exec::CompiledEvaluator vm(db_.get());
      vm.set_limits(limits);
      return vm.EvaluateDegraded(*program, plan.params, &stats);
    }
    BoundedEvaluator evaluator(db_.get());
    evaluator.set_limits(limits);
    return evaluator.EvaluateDegraded(plan.query, *plan.analysis, plan.params,
                                      &stats);
  }();
  const double elapsed_ms =
      static_cast<double>(obs::MonotonicNowNs() - start_ns) / 1e6;
  if (!evaled.ok()) {
    if (evaled.status().code() == StatusCode::kFailedPrecondition &&
        evaled.status().message().find("not controlled") !=
            std::string::npos) {
      metrics_->GetCounter("shell.noncontrollable_queries").Increment();
      obs::AccessCertificate cert;
      cert.query_fingerprint = plan.fingerprint;
      cert.query_id = obs::RenderQueryId(qid);
      cert.query_text = plan.query_text;
      (void)RecordEvalOutcome(std::move(cert), elapsed_ms,
                              /*noncontrollable=*/true,
                              /*governor_tripped=*/false, client_tag);
    }
    return evaled.status();
  }
  exec::Degraded<AnswerSet> degraded = std::move(evaled).ValueOrDie();
  metrics_
      ->GetHistogram("shell.eval_latency_ms", obs::DefaultLatencyBucketsMs())
      .Observe(elapsed_ms);
  metrics_->GetCounter("shell.queries").Increment();
  metrics_->GetCounter("shell.base_tuples_fetched")
      .Increment(stats.base_tuples_fetched);
  metrics_->GetCounter("shell.index_lookups").Increment(stats.index_lookups);
  for (const auto& [relation, fetched] : stats.fetched_by_relation) {
    metrics_->GetCounter("shell.fetched." + relation).Increment(fetched);
  }
  if (!degraded.complete) {
    metrics_
        ->GetCounter(std::string("shell.governor.trips.") +
                     exec::LimitKindName(degraded.trip.kind))
        .Increment();
  }

  obs::AccessCertificate cert;
  cert.query_fingerprint = plan.fingerprint;
  cert.query_id = obs::RenderQueryId(qid);
  cert.query_text = plan.query_text;
  cert.static_bound = stats.static_bound;
  cert.actual_fetches = stats.base_tuples_fetched;
  cert.index_lookups = stats.index_lookups;
  cert.tripped = !degraded.complete;
  if (cert.tripped) cert.trip_reason = degraded.trip.ToString();
  ServeEvalOutcome out;
  out.warnings = RecordEvalOutcome(std::move(cert), elapsed_ms,
                                   /*noncontrollable=*/false,
                                   /*governor_tripped=*/!degraded.complete,
                                   client_tag);
  out.answers = degraded.value.size();
  out.rendered = AnswerSetToString(degraded.value, 50);
  out.fetched = stats.base_tuples_fetched;
  out.static_bound = stats.static_bound;
  out.complete = degraded.complete;
  out.trip = degraded.trip;
  return out;
}

std::string Shell::RecordServeVerdict(obs::AccessCertificate cert,
                                      double elapsed_ms,
                                      const std::string& client_tag) {
  const bool noncontrollable = cert.static_bound < 0 && !cert.tripped;
  return RecordEvalOutcome(std::move(cert), elapsed_ms, noncontrollable,
                           /*governor_tripped=*/false, client_tag);
}

std::string Shell::RecordEvalOutcome(obs::AccessCertificate cert,
                                     double elapsed_ms, bool noncontrollable,
                                     bool governor_tripped,
                                     const std::string& client_tag) {
  obs::SealCertificate(&cert);
  metrics_
      ->GetCounter(std::string("shell.certificates.") +
                   obs::CertVerdictName(cert.verdict))
      .Increment();
  if (obs::FlightRecorderEnabled()) {
    obs::RecordFlightEvent(
        obs::EventKind::kCertificate, obs::CertVerdictName(cert.verdict),
        {obs::EventArg("fingerprint", cert.query_fingerprint),
         obs::EventArg("fetched", cert.actual_fetches),
         obs::EventArg("static_bound", cert.static_bound)});
  }
  workload_->Observe(cert, elapsed_ms, noncontrollable);
  workload_->ExportMetrics(metrics_.get());
  std::string warnings;
  if (journal_store_ != nullptr) {
    if (Status s = journal_store_->Append(cert, elapsed_ms, noncontrollable,
                                          client_tag);
        !s.ok()) {
      warnings += "warning: journal append failed: " + s.message() + "\n";
    }
  }
  journal_->Append(std::move(cert));
  if (governor_tripped && obs::PostMortemArmed()) {
    if (Status s = obs::WritePostMortemStatus("governor-trip"); !s.ok()) {
      warnings += "warning: post-mortem dump failed: " + s.message() + "\n";
    }
  }
  return warnings;
}

Result<std::string> Shell::RunQdsi(std::string_view rest, bool explain) {
  size_t sp = rest.find(' ');
  if (sp == std::string_view::npos) {
    return Status::InvalidArgument("usage: qdsi <M> <cq-rule>");
  }
  SI_ASSIGN_OR_RETURN(uint64_t m, ParseShellU64(rest.substr(0, sp)));
  SI_ASSIGN_OR_RETURN(Cq q, ParseCq(rest.substr(sp + 1), &schema_));
  if (db_ == nullptr) return Status::FailedPrecondition("no data loaded");
  QdsiOptions options;
  exec::ResourceGovernor governor;
  if (limits_.any()) {
    governor.Arm(limits_.Pinned());
    options.governor = &governor;
  }
  // explain: collect the decision procedure's spans (verdict/method/work
  // args) in a command-local tracer, restoring the previous sink after.
  obs::Tracer local_tracer;
  obs::Tracer* saved_tracer = obs::Tracer::Global();
  if (explain) obs::Tracer::InstallGlobal(&local_tracer);
  QdsiDecision d = DecideQdsiCq(q, *db_, m, options);
  if (explain) obs::Tracer::InstallGlobal(saved_tracer);
  std::string out =
      StrFormat("QDSI(M=%llu): %s via %s",
                static_cast<unsigned long long>(m), VerdictName(d.verdict),
                d.method.c_str());
  if (d.witness.has_value()) {
    out += StrFormat(" (witness %zu tuples)", d.witness->size());
  }
  out += "\n";
  if (explain) {
    out += StrFormat("work: %llu search nodes/subsets\n",
                     static_cast<unsigned long long>(d.work));
    out += "spans:\n" + RenderSpans(local_tracer.events());
  }
  if (governor.tripped()) {
    metrics_
        ->GetCounter(std::string("shell.governor.trips.") +
                     exec::LimitKindName(governor.trip().kind))
        .Increment();
    out += "tripped: " + governor.trip().ToString() + "\n";
    if (obs::PostMortemArmed()) {
      if (Status s = obs::WritePostMortemStatus("governor-trip"); !s.ok()) {
        out += "warning: post-mortem dump failed: " + s.message() + "\n";
      }
    }
  }
  return out;
}

Result<std::string> Shell::RunAnalyze(std::string_view rest, bool explain) {
  SI_ASSIGN_OR_RETURN(FoQuery q, ParseFoQuery(rest, &schema_));
  obs::Tracer local_tracer;
  std::shared_ptr<const ControllabilityAnalysis> analysis;
  if (explain) {
    // Explain wants the derivation spans, so it always re-derives under a
    // local tracer instead of consulting the cache.
    obs::Tracer* saved_tracer = obs::Tracer::Global();
    obs::Tracer::InstallGlobal(&local_tracer);
    Result<ControllabilityAnalysis> fresh =
        ControllabilityAnalysis::Analyze(q.body, schema_, access_);
    obs::Tracer::InstallGlobal(saved_tracer);
    SI_RETURN_IF_ERROR(fresh.status());
    analysis = std::make_shared<const ControllabilityAnalysis>(
        std::move(fresh).ValueOrDie());
  } else {
    SI_ASSIGN_OR_RETURN(
        analysis, analysis_cache_->GetOrAnalyze(
                      q.body, StripWhitespace(rest), schema_, access_));
  }
  std::vector<VarSet> minimal = analysis->MinimalControlSets();
  std::string out;
  if (minimal.empty()) {
    out = "not controlled under the current access schema\n";
  } else {
    for (const VarSet& m : minimal) {
      Result<double> bound = analysis->StaticFetchBound(m);
      out += StrFormat("controlled by %s  (fetch bound %.0f)\n",
                       VarSetToString(m).c_str(), bound.ok() ? *bound : -1.0);
    }
    out += analysis->Explain(minimal[0]);
  }
  if (explain) {
    out += "spans:\n" + RenderSpans(local_tracer.events());
  }
  return out;
}

Result<std::string> Shell::RunStats(std::string_view rest) {
  if (rest.substr(0, 5) == "watch" ) {
    std::string_view args = StripWhitespace(rest.substr(5));
    if (args == "off") {
      if (dumper_ == nullptr || !dumper_->running()) {
        return std::string("stats watch is not running\n");
      }
      dumper_->Stop();
      return std::string("stats watch stopped\n");
    }
    std::vector<std::string> pieces = Split(args, ' ');
    if (pieces.empty() || pieces[0].empty()) {
      return Status::InvalidArgument(
          "usage: stats watch <secs> [path] | stats watch off");
    }
    char* end = nullptr;
    const double secs = std::strtod(pieces[0].c_str(), &end);
    if (end != pieces[0].c_str() + pieces[0].size() || !(secs > 0)) {
      return Status::InvalidArgument("watch interval must be a positive "
                                     "number of seconds");
    }
    std::string path = pieces.size() > 1 ? std::string(StripWhitespace(
                                               std::string_view(pieces[1])))
                                         : "scalein_metrics.jsonl";
    if (dumper_ != nullptr) dumper_->Stop();
    dumper_ = std::make_unique<obs::MetricsDumper>();
    SI_RETURN_IF_ERROR(dumper_->Start(path, secs, metrics_.get()));
    return StrFormat("watching: appending metrics to %s every %gs\n",
                     path.c_str(), secs);
  }
  if (rest == "prom") return metrics_->ToPrometheusText();
  if (!rest.empty()) {
    return Status::InvalidArgument(
        "usage: stats [prom] | stats watch <secs> [path] | stats watch off");
  }
  return metrics_->ToJson() + "\n";
}

Result<std::string> Shell::RunJournal() const {
  std::vector<obs::AccessCertificate> certs = journal_->certificates();
  std::string out = StrFormat("%zu certificate(s), %llu dropped\n",
                              certs.size(),
                              static_cast<unsigned long long>(
                                  journal_->dropped()));
  for (const obs::AccessCertificate& c : certs) {
    out += StrFormat("  %s %s fetches=%llu", c.query_fingerprint.c_str(),
                     obs::CertVerdictName(c.verdict),
                     static_cast<unsigned long long>(c.actual_fetches));
    if (c.static_bound >= 0) {
      out += StrFormat(" bound=%.0f", c.static_bound);
    }
    if (c.tripped) out += "  [" + c.trip_reason + "]";
    out += "\n";
  }
  return out;
}

Result<std::string> Shell::RunCertify(std::string_view rest) const {
  const std::string path(StripWhitespace(rest));
  std::vector<obs::AccessCertificate> certs;
  if (path.empty()) {
    certs = journal_->certificates();
  } else {
    // Offline mode: re-verify certificates out of a previously written dump
    // (the `dump` command's JSON, a bare journal object, or a bare array) or
    // a JSONL journal file written by the persistent JournalStore.
    SI_ASSIGN_OR_RETURN(std::string json, ReadFileToString(path));
    Result<std::vector<obs::AccessCertificate>> parsed =
        obs::CertificatesFromDumpJson(json);
    if (!parsed.ok()) parsed = obs::CertificatesFromJsonl(json);
    SI_RETURN_IF_ERROR(parsed.status());
    certs = std::move(parsed).ValueOrDie();
  }
  if (certs.empty()) return std::string("no certificates to verify\n");
  std::string out;
  size_t passed = 0;
  for (const obs::AccessCertificate& c : certs) {
    const bool ok = obs::VerifyCertificate(c);
    if (ok) ++passed;
    out += StrFormat("  %s %s %s\n", c.query_fingerprint.c_str(),
                     obs::CertVerdictName(c.verdict),
                     ok ? "signature-ok" : "SIGNATURE-MISMATCH");
  }
  out += StrFormat("%zu/%zu certificates verify", passed, certs.size());
  if (!path.empty()) out += " (from " + path + ")";
  out += "\n";
  if (passed != certs.size()) {
    // A failed seal is tampered (or corrupted) evidence, not a warning to
    // scroll past: surface it as a typed error so batch callers (CI, the
    // example binary's exit code) fail loudly. The listing travels in the
    // message so the operator still sees which lines broke.
    return Status::DataLoss(StrFormat("%zu/%zu certificates failed seal "
                                      "verification\n",
                                      certs.size() - passed, certs.size()) +
                            out);
  }
  return out;
}

Result<std::string> Shell::RunThreads(std::string_view rest) {
  par::WorkerPool& pool = par::WorkerPool::Global();
  const std::string arg(StripWhitespace(rest));
  const bool resized = !arg.empty();
  if (resized) {
    SI_ASSIGN_OR_RETURN(uint64_t n, ParseShellU64(arg));
    if (n < 1) n = 1;
    if (n > 64) n = 64;
    pool.Resize(static_cast<size_t>(n));
    metrics_->GetGauge("shell.threads").Set(static_cast<int64_t>(n));
  }
  std::string out = StrFormat("%zu thread(s)\n", pool.threads());
  if (db_ != nullptr) {
    // Bare `threads` just reports what the advisor would do; a resize also
    // applies it, so the index layout tracks the new pool width immediately.
    std::vector<par::ShardDecision> decisions = shard_advisor_.Advise(
        db_.get(), *metrics_, "shell.fetched.", pool.threads(), resized);
    for (const par::ShardDecision& d : decisions) {
      out += StrFormat("  %s: rows=%zu probes=%llu shards=%zu -> %zu (%s)%s\n",
                       d.relation.c_str(), d.rows,
                       static_cast<unsigned long long>(d.probes),
                       d.current_shards <= 1 ? size_t{1} : d.current_shards,
                       d.advised_shards, d.reason,
                       d.applied ? " [applied]" : "");
    }
    metrics_->GetGauge("shell.advisor.reshards")
        .Set(static_cast<int64_t>(shard_advisor_.reshards()));
  }
  return out;
}

Result<std::string> Shell::RunDump(std::string_view rest) const {
  std::string path(StripWhitespace(rest));
  if (path.empty()) path = dump_path_;
  if (path.empty()) {
    return Status::InvalidArgument(
        "usage: dump <path> (or set SCALEIN_DUMP_PATH)");
  }
  const std::string text = obs::RenderDump("manual", recorder_.get(),
                                           journal_.get(), metrics_.get());
  SI_RETURN_IF_ERROR(obs::EnsureParentDirs(path));
  SI_RETURN_IF_ERROR(obs::WriteTextFile(path, text));
  return "wrote dump to " + path + "\n";
}

Result<std::string> Shell::RunWorkload(std::string_view rest) const {
  std::string_view args = StripWhitespace(rest);
  if (args.empty()) {
    std::string out = workload_->RenderTop(10);
    if (journal_store_ != nullptr) {
      out += StrFormat(
          "journal: %s (%llu appended, %llu rotation(s))\n",
          journal_store_->path().c_str(),
          static_cast<unsigned long long>(journal_store_->appended()),
          static_cast<unsigned long long>(journal_store_->rotations()));
    }
    if (!journal_note_.empty()) out += journal_note_;
    return out;
  }
  if (args.substr(0, 4) == "top ") {
    SI_ASSIGN_OR_RETURN(uint64_t k,
                        ParseShellU64(StripWhitespace(args.substr(4))));
    return workload_->RenderTop(static_cast<size_t>(k));
  }
  if (args.substr(0, 12) == "fingerprint ") {
    const std::string fp(StripWhitespace(args.substr(12)));
    if (!fp.empty()) return workload_->RenderFingerprint(fp);
  }
  return Status::InvalidArgument(
      "usage: workload [top K | fingerprint <fp>]");
}

Result<std::string> Shell::RunSlowlog(std::string_view rest) {
  obs::Gauge& gauge = metrics_->GetGauge("shell.slow_query_threshold_ms");
  if (rest.empty()) {
    const int64_t ms = gauge.value();
    if (ms <= 0) return std::string("slow-query log off\n");
    return StrFormat("slow-query threshold: %lld ms\n",
                     static_cast<long long>(ms));
  }
  if (rest == "off") {
    gauge.Set(0);
    return std::string("slow-query log off\n");
  }
  SI_ASSIGN_OR_RETURN(uint64_t ms, ParseShellU64(rest));
  gauge.Set(static_cast<int64_t>(ms));
  return StrFormat("slow-query threshold: %llu ms\n",
                   static_cast<unsigned long long>(ms));
}

Result<std::string> Shell::RunCompile(std::string_view rest) {
  const std::string arg(StripWhitespace(rest));
  auto render = [&] {
    std::string out = std::string("compile mode: ") +
                      exec::CompiledPlanSet::ModeName(compile_mode_) + "\n";
    out += StrFormat(
        "  hits=%llu fallbacks=%llu\n",
        static_cast<unsigned long long>(
            metrics_->GetCounter("exec.compiled_hits").value()),
        static_cast<unsigned long long>(
            metrics_->GetCounter("exec.compiled_fallbacks").value()));
    return out;
  };
  if (arg.empty() || arg == "status") return render();
  if (arg != "on" && arg != "off" && arg != "auto") {
    return Status::InvalidArgument("usage: compile [on|off|auto|status]");
  }
  compile_mode_ = exec::CompiledPlanSet::ParseMode(arg);
  return render();
}

Result<std::string> Shell::RunLimit(std::string_view rest) {
  if (rest == "off") {
    limits_ = exec::GovernorLimits();
    return std::string("limits cleared\n");
  }
  if (rest.empty()) {
    if (!limits_.any()) return std::string("no limits set\n");
    std::string out = "limits:";
    if (limits_.fetch_budget > 0) {
      out += StrFormat(" fetch=%llu",
                       static_cast<unsigned long long>(limits_.fetch_budget));
    }
    if (limits_.deadline_ms > 0) {
      out += StrFormat(" deadline=%llums",
                       static_cast<unsigned long long>(limits_.deadline_ms));
    }
    if (limits_.output_row_cap > 0) {
      out += StrFormat(
          " rows=%llu", static_cast<unsigned long long>(limits_.output_row_cap));
    }
    out += "\n";
    return out;
  }
  exec::GovernorLimits parsed = limits_;
  for (const std::string& piece : Split(rest, ' ')) {
    std::string_view p = StripWhitespace(piece);
    if (p.empty()) continue;
    size_t eq = p.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument(
          "usage: limit [fetch=N] [deadline=MS] [rows=N] | limit off");
    }
    std::string_view key = p.substr(0, eq);
    SI_ASSIGN_OR_RETURN(uint64_t value, ParseShellU64(p.substr(eq + 1)));
    if (key == "fetch") {
      parsed.fetch_budget = value;
    } else if (key == "deadline") {
      parsed.deadline_ms = value;
    } else if (key == "rows") {
      parsed.output_row_cap = value;
    } else {
      return Status::InvalidArgument("unknown limit '" + std::string(key) +
                                     "' (fetch, deadline, rows)");
    }
  }
  limits_ = parsed;
  return std::string("ok\n");
}

}  // namespace scalein
