#include "io/shell.h"

#include "core/bounded_eval.h"
#include "core/controllability.h"
#include "core/qdsi.h"
#include "io/catalog.h"
#include "obs/explain.h"
#include "query/parser.h"
#include "util/failpoint.h"
#include "util/strings.h"

namespace scalein {
namespace {

/// Parses "x=1,y=\"NYC\"" into a Binding.
Result<Binding> ParseShellBinding(std::string_view text) {
  Binding out;
  if (StripWhitespace(text).empty()) return out;
  for (const std::string& piece : Split(text, ',')) {
    size_t eq = piece.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("expected var=value in '" + piece + "'");
    }
    std::string var(StripWhitespace(std::string_view(piece).substr(0, eq)));
    Value value = ParseCsvValue(std::string_view(piece).substr(eq + 1));
    out.emplace(Variable::Named(var), value);
  }
  return out;
}

/// Parses a decimal uint64 ("fetch=100" right-hand sides).
Result<uint64_t> ParseShellU64(std::string_view text) {
  if (text.empty()) return Status::InvalidArgument("expected a number");
  uint64_t out = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("expected a number, got '" +
                                     std::string(text) + "'");
    }
    out = out * 10 + static_cast<uint64_t>(c - '0');
  }
  return out;
}

}  // namespace

Shell::Shell() {
  // Best-effort: a malformed SCALEIN_FAILPOINTS spec must not brick the
  // shell; it just leaves failpoints disarmed.
  (void)util::Failpoints::Global().InitFromEnv();
}

Database* Shell::EnsureDb() {
  if (db_ == nullptr) db_ = std::make_unique<Database>(schema_);
  return db_.get();
}

std::string Shell::HelpText() {
  return
      "commands:\n"
      "  schema relation R(a, b, ...)\n"
      "  access access R(x) N=100 | access key R(a) | access fd R: a -> b\n"
      "  row <relation> v1,v2,...\n"
      "  load <relation> <csv-path>\n"
      "  show | conformance\n"
      "  analyze Q(x, ...) := <FO formula>\n"
      "  eval var=value,... Q(x, ...) := <FO formula>\n"
      "  explain var=value,... Q(x, ...) := <FO formula>\n"
      "  qdsi <M> Q(x) :- <CQ body>\n"
      "  limit [fetch=N] [deadline=MS] [rows=N] | limit off\n"
      "  stats [prom]\n"
      "  quit\n";
}

Result<std::string> Shell::Execute(std::string_view line) {
  line = StripWhitespace(line);
  if (line.empty() || line[0] == '#') return std::string();
  size_t space = line.find(' ');
  std::string command(line.substr(0, space));
  std::string_view rest =
      space == std::string_view::npos ? "" : StripWhitespace(line.substr(space));

  if (command == "help") return HelpText();

  if (command == "schema") {
    if (db_ != nullptr) {
      return Status::FailedPrecondition("schema is frozen once data is loaded");
    }
    SI_ASSIGN_OR_RETURN(Schema parsed, ParseSchemaText(rest));
    for (const RelationSchema& r : parsed.relations()) {
      SI_RETURN_IF_ERROR(schema_.AddRelation(r));
    }
    return std::string("ok\n");
  }

  if (command == "access") {
    SI_ASSIGN_OR_RETURN(AccessSchema parsed,
                        ParseAccessSchemaText(rest, schema_));
    for (const AccessStatement& s : parsed.statements()) {
      if (s.is_plain()) {
        access_.Add(s.relation, s.key_attrs, s.max_tuples, s.retrieval_time);
      } else {
        access_.AddEmbedded(s.relation, s.key_attrs, *s.value_attrs,
                            s.max_tuples, s.retrieval_time);
      }
    }
    return std::string("ok\n");
  }

  if (command == "row") {
    size_t sp = rest.find(' ');
    if (sp == std::string_view::npos) {
      return Status::InvalidArgument("usage: row <relation> v1,v2,...");
    }
    std::string relation(rest.substr(0, sp));
    SI_RETURN_IF_ERROR(
        LoadRelationCsv(EnsureDb(), relation, rest.substr(sp + 1)));
    return std::string("ok\n");
  }

  if (command == "load") {
    size_t sp = rest.find(' ');
    if (sp == std::string_view::npos) {
      return Status::InvalidArgument("usage: load <relation> <csv-path>");
    }
    std::string relation(rest.substr(0, sp));
    SI_ASSIGN_OR_RETURN(std::string csv,
                        ReadFileToString(std::string(rest.substr(sp + 1))));
    SI_RETURN_IF_ERROR(LoadRelationCsv(EnsureDb(), relation, csv));
    return std::string("ok\n");
  }

  if (command == "show") {
    std::string out = schema_.ToString() + access_.ToString();
    if (db_ != nullptr) {
      out += StrFormat("|D| = %zu tuples\n", db_->TotalTuples());
    }
    return out;
  }

  if (command == "conformance") {
    if (db_ == nullptr) return Status::FailedPrecondition("no data loaded");
    SI_ASSIGN_OR_RETURN(ConformanceReport report,
                        CheckConformance(*db_, schema_, access_));
    std::string out =
        std::string("conforms: ") + (report.conforms ? "yes" : "no") + "\n";
    for (const ConformanceViolation& v : report.violations) {
      out += "  " + v.ToString(access_) + "\n";
    }
    return out;
  }

  if (command == "analyze") {
    SI_ASSIGN_OR_RETURN(FoQuery q, ParseFoQuery(rest, &schema_));
    SI_ASSIGN_OR_RETURN(
        ControllabilityAnalysis analysis,
        ControllabilityAnalysis::Analyze(q.body, schema_, access_));
    std::vector<VarSet> minimal = analysis.MinimalControlSets();
    if (minimal.empty()) {
      return std::string("not controlled under the current access schema\n");
    }
    std::string out;
    for (const VarSet& m : minimal) {
      Result<double> bound = analysis.StaticFetchBound(m);
      out += StrFormat("controlled by %s  (fetch bound %.0f)\n",
                       VarSetToString(m).c_str(), bound.ok() ? *bound : -1.0);
    }
    out += analysis.Explain(minimal[0]);
    return out;
  }

  if (command == "eval") return RunEval(rest, /*explain=*/false);

  if (command == "explain") return RunEval(rest, /*explain=*/true);

  if (command == "stats") {
    if (rest == "prom") return metrics_->ToPrometheusText();
    if (!rest.empty()) {
      return Status::InvalidArgument("usage: stats [prom]");
    }
    return metrics_->ToJson() + "\n";
  }

  if (command == "limit") return RunLimit(rest);

  if (command == "qdsi") {
    size_t sp = rest.find(' ');
    if (sp == std::string_view::npos) {
      return Status::InvalidArgument("usage: qdsi <M> <cq-rule>");
    }
    uint64_t m = 0;
    const std::string m_text(rest.substr(0, sp));
    for (char c : m_text) {
      if (c < '0' || c > '9') {
        return Status::InvalidArgument("M must be a number, got '" + m_text +
                                       "'");
      }
      m = m * 10 + static_cast<uint64_t>(c - '0');
    }
    SI_ASSIGN_OR_RETURN(Cq q, ParseCq(rest.substr(sp + 1), &schema_));
    if (db_ == nullptr) return Status::FailedPrecondition("no data loaded");
    QdsiOptions options;
    exec::ResourceGovernor governor;
    if (limits_.any()) {
      governor.Arm(limits_.Pinned());
      options.governor = &governor;
    }
    QdsiDecision d = DecideQdsiCq(q, *db_, m, options);
    std::string out =
        StrFormat("QDSI(M=%llu): %s via %s",
                  static_cast<unsigned long long>(m), VerdictName(d.verdict),
                  d.method.c_str());
    if (d.witness.has_value()) {
      out += StrFormat(" (witness %zu tuples)", d.witness->size());
    }
    out += "\n";
    if (governor.tripped()) {
      metrics_
          ->GetCounter(std::string("shell.governor.trips.") +
                       exec::LimitKindName(governor.trip().kind))
          .Increment();
      out += "tripped: " + governor.trip().ToString() + "\n";
    }
    return out;
  }

  return Status::InvalidArgument("unknown command '" + command +
                                 "' (try 'help')");
}

Result<std::string> Shell::RunEval(std::string_view rest, bool explain) {
  const char* usage = explain ? "usage: explain var=value,... <query>"
                              : "usage: eval var=value,... <query>";
  size_t sp = rest.find(' ');
  if (sp == std::string_view::npos) return Status::InvalidArgument(usage);
  SI_ASSIGN_OR_RETURN(Binding params, ParseShellBinding(rest.substr(0, sp)));
  SI_ASSIGN_OR_RETURN(FoQuery q, ParseFoQuery(rest.substr(sp + 1), &schema_));
  if (db_ == nullptr) return Status::FailedPrecondition("no data loaded");
  SI_ASSIGN_OR_RETURN(
      ControllabilityAnalysis analysis,
      ControllabilityAnalysis::Analyze(q.body, schema_, access_));
  SI_RETURN_IF_ERROR(access_.BuildIndexes(db_.get(), schema_));

  BoundedEvaluator evaluator(db_.get());
  evaluator.set_collect_timing(explain);
  evaluator.set_limits(limits_);
  BoundedEvalStats stats;
  stats.capture_ops = explain;
  exec::Degraded<AnswerSet> degraded;
  {
    obs::ScopedLatencyMs latency(&metrics_->GetHistogram(
        "shell.eval_latency_ms", obs::DefaultLatencyBucketsMs()));
    SI_ASSIGN_OR_RETURN(degraded,
                        evaluator.EvaluateDegraded(q, analysis, params,
                                                   &stats));
  }
  const AnswerSet& answers = degraded.value;
  metrics_->GetCounter("shell.queries").Increment();
  metrics_->GetCounter("shell.base_tuples_fetched")
      .Increment(stats.base_tuples_fetched);
  metrics_->GetCounter("shell.index_lookups").Increment(stats.index_lookups);
  for (const auto& [relation, fetched] : stats.fetched_by_relation) {
    metrics_->GetCounter("shell.fetched." + relation).Increment(fetched);
  }
  if (!degraded.complete) {
    metrics_
        ->GetCounter(std::string("shell.governor.trips.") +
                     exec::LimitKindName(degraded.trip.kind))
        .Increment();
  }

  if (explain) {
    return obs::RenderExplainAnalyze(stats.ops, stats.base_tuples_fetched,
                                     stats.index_lookups, stats.static_bound,
                                     degraded.trip) +
           StrFormat("(%zu answers%s)\n", answers.size(),
                     degraded.complete ? "" : ", partial");
  }
  std::string out =
      AnswerSetToString(answers, 50) +
      StrFormat("\n(%zu answers, %llu base tuples fetched%s)\n",
                answers.size(),
                static_cast<unsigned long long>(stats.base_tuples_fetched),
                degraded.complete ? "" : ", partial");
  if (!degraded.complete) {
    out += "tripped: " + degraded.trip.ToString() + "\n";
  }
  return out;
}

Result<std::string> Shell::RunLimit(std::string_view rest) {
  if (rest == "off") {
    limits_ = exec::GovernorLimits();
    return std::string("limits cleared\n");
  }
  if (rest.empty()) {
    if (!limits_.any()) return std::string("no limits set\n");
    std::string out = "limits:";
    if (limits_.fetch_budget > 0) {
      out += StrFormat(" fetch=%llu",
                       static_cast<unsigned long long>(limits_.fetch_budget));
    }
    if (limits_.deadline_ms > 0) {
      out += StrFormat(" deadline=%llums",
                       static_cast<unsigned long long>(limits_.deadline_ms));
    }
    if (limits_.output_row_cap > 0) {
      out += StrFormat(
          " rows=%llu", static_cast<unsigned long long>(limits_.output_row_cap));
    }
    out += "\n";
    return out;
  }
  exec::GovernorLimits parsed = limits_;
  for (const std::string& piece : Split(rest, ' ')) {
    std::string_view p = StripWhitespace(piece);
    if (p.empty()) continue;
    size_t eq = p.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument(
          "usage: limit [fetch=N] [deadline=MS] [rows=N] | limit off");
    }
    std::string_view key = p.substr(0, eq);
    SI_ASSIGN_OR_RETURN(uint64_t value, ParseShellU64(p.substr(eq + 1)));
    if (key == "fetch") {
      parsed.fetch_budget = value;
    } else if (key == "deadline") {
      parsed.deadline_ms = value;
    } else if (key == "rows") {
      parsed.output_row_cap = value;
    } else {
      return Status::InvalidArgument("unknown limit '" + std::string(key) +
                                     "' (fetch, deadline, rows)");
    }
  }
  limits_ = parsed;
  return std::string("ok\n");
}

}  // namespace scalein
