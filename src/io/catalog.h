#ifndef SCALEIN_IO_CATALOG_H_
#define SCALEIN_IO_CATALOG_H_

#include <string>
#include <string_view>

#include "core/access_schema.h"
#include "relational/database.h"
#include "relational/schema.h"
#include "util/status.h"

namespace scalein {

/// Text formats for catalogs, access schemas, and data, so databases and
/// their access declarations can live in files next to the code that uses
/// them (see examples/scalein_shell.cpp and the `testdata` helpers).
///
/// Schema text — one declaration per line, '#' comments:
///
///     # the Graph Search catalog
///     relation person(id, name, city)
///     relation friend(id1, id2)
///
/// Access-schema text — four statement forms:
///
///     access friend(id1) N=5000 T=1        # plain (R, X, N, T)
///     key person(id)                       # (R, X, 1, 1)
///     access visit(yy -> yy, mm, dd) N=366 # embedded (R, X[Y], N, T)
///     fd visit: id, yy, mm, dd -> rid      # (R, X[X∪Y], 1, 1)
///
/// Relation data (CSV): one tuple per line, comma-separated values. A value
/// consisting solely of an optional '-' and digits is an integer; everything
/// else is a string (surrounding double quotes are stripped when present).

/// Parses schema text.
Result<Schema> ParseSchemaText(std::string_view text);

/// Parses access-schema text against `schema`.
Result<AccessSchema> ParseAccessSchemaText(std::string_view text,
                                           const Schema& schema);

/// Parses one CSV value using the integer-or-string rule above.
Value ParseCsvValue(std::string_view field);

/// Loads CSV rows into `relation` of `db`. Rows with the wrong arity fail.
Status LoadRelationCsv(Database* db, const std::string& relation,
                       std::string_view csv);

/// Renders a relation back to CSV (strings are quoted).
std::string RelationToCsv(const Relation& relation);

/// File convenience wrappers.
Result<std::string> ReadFileToString(const std::string& path);
Status WriteStringToFile(const std::string& path, std::string_view content);
Result<Schema> LoadSchemaFile(const std::string& path);
Result<AccessSchema> LoadAccessSchemaFile(const std::string& path,
                                          const Schema& schema);

}  // namespace scalein

#endif  // SCALEIN_IO_CATALOG_H_
