#include "io/catalog.h"

#include <cctype>
#include <fstream>
#include <sstream>

#include "util/strings.h"

namespace scalein {
namespace {

/// Strips comments ('#' to end of line) and splits into non-empty lines.
std::vector<std::string> CleanLines(std::string_view text) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == '\n') {
      std::string_view line = text.substr(start, i - start);
      size_t hash = line.find('#');
      if (hash != std::string_view::npos) line = line.substr(0, hash);
      line = StripWhitespace(line);
      if (!line.empty()) out.emplace_back(line);
      start = i + 1;
    }
  }
  return out;
}

/// Parses "name(a, b, c)" into name + attribute list.
Result<std::pair<std::string, std::vector<std::string>>> ParseNameWithAttrs(
    std::string_view text) {
  size_t open = text.find('(');
  size_t close = text.rfind(')');
  if (open == std::string_view::npos || close == std::string_view::npos ||
      close < open) {
    return Status::InvalidArgument("expected name(attrs...): '" +
                                   std::string(text) + "'");
  }
  std::string name(StripWhitespace(text.substr(0, open)));
  if (name.empty()) {
    return Status::InvalidArgument("missing relation name in '" +
                                   std::string(text) + "'");
  }
  std::vector<std::string> attrs;
  std::string_view inner = text.substr(open + 1, close - open - 1);
  if (!StripWhitespace(inner).empty()) {
    attrs = Split(inner, ',');
    for (const std::string& a : attrs) {
      if (a.empty()) {
        return Status::InvalidArgument("empty attribute in '" +
                                       std::string(text) + "'");
      }
    }
  }
  return std::make_pair(std::move(name), std::move(attrs));
}

/// Parses trailing "N=..." / "T=..." options.
Status ParseBoundOptions(const std::vector<std::string>& tokens, size_t start,
                         uint64_t* n, double* t) {
  for (size_t i = start; i < tokens.size(); ++i) {
    const std::string& tok = tokens[i];
    if (StartsWith(tok, "N=")) {
      *n = static_cast<uint64_t>(std::stoull(tok.substr(2)));
    } else if (StartsWith(tok, "T=")) {
      *t = std::stod(tok.substr(2));
    } else {
      return Status::InvalidArgument("unknown option '" + tok + "'");
    }
  }
  return Status::OK();
}

std::vector<std::string> SplitTokens(std::string_view line) {
  std::vector<std::string> out;
  std::string current;
  for (char c : line) {
    if (c == ' ' || c == '\t') {
      if (!current.empty()) {
        out.push_back(std::move(current));
        current.clear();
      }
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) out.push_back(std::move(current));
  return out;
}

}  // namespace

Result<Schema> ParseSchemaText(std::string_view text) {
  Schema schema;
  for (const std::string& line : CleanLines(text)) {
    if (!StartsWith(line, "relation ")) {
      return Status::InvalidArgument("expected 'relation ...': '" + line + "'");
    }
    SI_ASSIGN_OR_RETURN(auto parsed,
                        ParseNameWithAttrs(std::string_view(line).substr(9)));
    if (parsed.second.empty()) {
      return Status::InvalidArgument("relation '" + parsed.first +
                                     "' needs at least one attribute");
    }
    SI_RETURN_IF_ERROR(
        schema.AddRelation(RelationSchema(parsed.first, parsed.second)));
  }
  return schema;
}

Result<AccessSchema> ParseAccessSchemaText(std::string_view text,
                                           const Schema& schema) {
  AccessSchema access;
  for (const std::string& line : CleanLines(text)) {
    if (StartsWith(line, "key ")) {
      SI_ASSIGN_OR_RETURN(auto parsed,
                          ParseNameWithAttrs(std::string_view(line).substr(4)));
      access.AddKey(parsed.first, parsed.second);
      continue;
    }
    if (StartsWith(line, "fd ")) {
      // fd R: x1, x2 -> y1, y2
      std::string_view rest = std::string_view(line).substr(3);
      size_t colon = rest.find(':');
      size_t arrow = rest.find("->");
      if (colon == std::string_view::npos || arrow == std::string_view::npos ||
          arrow < colon) {
        return Status::InvalidArgument("expected 'fd R: X -> Y': '" + line +
                                       "'");
      }
      std::string relation(StripWhitespace(rest.substr(0, colon)));
      std::vector<std::string> determinant =
          Split(rest.substr(colon + 1, arrow - colon - 1), ',');
      std::vector<std::string> dependent = Split(rest.substr(arrow + 2), ',');
      access.AddFd(relation, determinant, dependent);
      continue;
    }
    if (StartsWith(line, "access ")) {
      std::string_view rest = std::string_view(line).substr(7);
      std::vector<std::string> tokens = SplitTokens(rest);
      if (tokens.empty()) {
        return Status::InvalidArgument("empty access statement");
      }
      // Re-join the leading name(...) chunk: attrs may contain spaces after
      // commas; find the closing paren in `rest` directly.
      size_t close = rest.find(')');
      if (close == std::string_view::npos) {
        return Status::InvalidArgument("expected '(...)' in '" + line + "'");
      }
      std::string_view head = rest.substr(0, close + 1);
      std::vector<std::string> options =
          SplitTokens(rest.substr(close + 1));
      uint64_t n = 1;
      double t = 1.0;
      SI_RETURN_IF_ERROR(ParseBoundOptions(options, 0, &n, &t));

      SI_ASSIGN_OR_RETURN(auto parsed, ParseNameWithAttrs(head));
      // Embedded form: attribute list contains "->".
      std::vector<std::string> key_attrs;
      std::vector<std::string> value_attrs;
      bool embedded = false;
      for (size_t i = 0; i < parsed.second.size(); ++i) {
        std::string attr = parsed.second[i];
        size_t arrow = attr.find("->");
        if (arrow != std::string::npos) {
          embedded = true;
          std::string left(StripWhitespace(std::string_view(attr).substr(0, arrow)));
          std::string right(
              StripWhitespace(std::string_view(attr).substr(arrow + 2)));
          if (!left.empty()) key_attrs.push_back(left);
          if (!right.empty()) value_attrs.push_back(right);
        } else if (embedded) {
          value_attrs.push_back(attr);
        } else {
          key_attrs.push_back(attr);
        }
      }
      if (embedded) {
        access.AddEmbedded(parsed.first, key_attrs, value_attrs, n, t);
      } else {
        access.Add(parsed.first, key_attrs, n, t);
      }
      continue;
    }
    return Status::InvalidArgument("expected 'access'/'key'/'fd': '" + line +
                                   "'");
  }
  SI_RETURN_IF_ERROR(access.Validate(schema));
  return access;
}

Value ParseCsvValue(std::string_view field) {
  field = StripWhitespace(field);
  if (field.size() >= 2 && field.front() == '"' && field.back() == '"') {
    return Value::Str(field.substr(1, field.size() - 2));
  }
  if (!field.empty()) {
    size_t start = field[0] == '-' ? 1 : 0;
    bool numeric = start < field.size();
    for (size_t i = start; i < field.size(); ++i) {
      if (!std::isdigit(static_cast<unsigned char>(field[i]))) {
        numeric = false;
        break;
      }
    }
    if (numeric) {
      return Value::Int(std::stoll(std::string(field)));
    }
  }
  return Value::Str(field);
}

Status LoadRelationCsv(Database* db, const std::string& relation,
                       std::string_view csv) {
  const Relation* rel = db->FindRelation(relation);
  if (rel == nullptr) {
    return Status::NotFound("unknown relation '" + relation + "'");
  }
  const size_t arity = rel->arity();
  size_t line_number = 0;
  for (const std::string& line : CleanLines(csv)) {
    ++line_number;
    std::vector<std::string> fields = Split(line, ',');
    if (fields.size() != arity) {
      return Status::InvalidArgument(StrFormat(
          "%s line %zu: expected %zu fields, got %zu", relation.c_str(),
          line_number, arity, fields.size()));
    }
    Tuple t;
    t.reserve(arity);
    for (const std::string& f : fields) t.push_back(ParseCsvValue(f));
    db->Insert(relation, t);
  }
  return Status::OK();
}

std::string RelationToCsv(const Relation& relation) {
  std::string out;
  for (const Tuple& t : relation.SortedTuples()) {
    for (size_t i = 0; i < t.size(); ++i) {
      if (i > 0) out += ",";
      if (t[i].is_int()) {
        out += std::to_string(t[i].AsInt());
      } else {
        out += "\"" + t[i].AsString() + "\"";
      }
    }
    out += "\n";
  }
  return out;
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

Status WriteStringToFile(const std::string& path, std::string_view content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::InvalidArgument("cannot write '" + path + "'");
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  return out.good() ? Status::OK()
                    : Status::Internal("short write to '" + path + "'");
}

Result<Schema> LoadSchemaFile(const std::string& path) {
  SI_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  return ParseSchemaText(text);
}

Result<AccessSchema> LoadAccessSchemaFile(const std::string& path,
                                          const Schema& schema) {
  SI_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  return ParseAccessSchemaText(text, schema);
}

}  // namespace scalein
