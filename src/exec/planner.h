#ifndef SCALEIN_EXEC_PLANNER_H_
#define SCALEIN_EXEC_PLANNER_H_

#include <memory>
#include <string>
#include <vector>

#include "exec/operators.h"
#include "query/cq.h"
#include "query/ra_expr.h"

namespace scalein::exec {

/// A lowered RA plan: the physical operator tree plus its output column
/// names (the expression's attribute order).
struct Plan {
  std::unique_ptr<Operator> root;
  std::vector<std::string> attributes;
};

/// Lowers `expr` to a physical operator tree charging `ctx`.
///
/// Planner rules:
///  * Any subtree of selections/projections/renames over a base relation is
///    collapsed into a single *access path*; constant-equality conjuncts
///    become a HashIndex point lookup (IndexLookupOp), and a proper
///    projection whose conjuncts are all constant equalities becomes a
///    ProjectionIndex lookup — the physical forms of plain and embedded
///    access statements.
///  * A join whose right side is an access path becomes an IndexJoinOp
///    probing the base relation's index on the shared attributes plus any
///    constant-pinned positions; otherwise a HashJoinOp (build right, probe
///    left). Nested-loop joins are gone.
///  * Unknown relation names plan to EmptyOp (matching EvalRa's seed
///    semantics of treating them as empty).
///
/// `ctx` must outlive the returned plan; relation contents must not mutate
/// between planning and draining.
Plan PlanRa(const RaExpr& expr, ExecContext* ctx);

/// A lowered CQ probe chain: `columns` are the distinct body variables in
/// binding order. `root` may be EmptyOp when an atom names an unknown
/// relation or has an arity mismatch; `columns` is then possibly incomplete,
/// which is fine because no rows are produced.
struct CqPlan {
  std::unique_ptr<Operator> root;
  std::vector<Variable> columns;
};

/// Lowers a conjunctive-query body (constants already substituted for any
/// externally bound variables) into a left-deep chain of IndexJoinOps seeded
/// by ConstRowOp. Atom order replicates CqEvaluator's greedy heuristic
/// exactly — most bound argument positions first, ties by smaller relation,
/// then lowest atom index — which is statically computable because
/// boundness depends only on *which* variables are bound, not their values.
CqPlan PlanCq(const Cq& q, ExecContext* ctx);

/// Drains `op` (already constructed, not yet opened) into a Relation of
/// `arity` columns; set semantics are restored by Relation::Insert. Every
/// emitted row is charged against the context's governor output cap; on any
/// governor trip the drain stops with the rows produced so far (the context
/// carries the typed error).
Relation DrainToRelation(Operator* op, size_t arity);

/// Degradation-aware drain: like DrainToRelation, but packages the partial
/// relation together with the trip record and the per-operator counter
/// snapshot when a governor limit stopped the pipeline. `complete` is true
/// on a clean drain. Non-governor failures (failpoints, internal errors)
/// still surface through the context's status only.
Degraded<Relation> DrainToRelationDegraded(Operator* op, size_t arity);

}  // namespace scalein::exec

#endif  // SCALEIN_EXEC_PLANNER_H_
