#include "exec/vm.h"

#include <algorithm>
#include <iterator>
#include <optional>
#include <utility>

#include "core/approx.h"
#include "exec/governed_parallel.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "par/worker_pool.h"
#include "relational/relation.h"
#include "util/failpoint.h"

namespace scalein::exec {
namespace {

/// Keep in sync with bounded_eval.cc's kParallelFrontierThreshold: the
/// compiled path must fan out at exactly the same frontier widths so the
/// morsel splits — and therefore the charge-log replay order — stay
/// identical to the interpreter at every thread count.
constexpr size_t kParallelFrontierThreshold = 16;

#if defined(__GNUC__) || defined(__clang__)
#define SCALEIN_VM_COMPUTED_GOTO 1
#else
#define SCALEIN_VM_COMPUTED_GOTO 0
#endif

/// Per-evaluation immutable view of a program: relation pointers resolved
/// once, the op table registered once (table index == prototype index).
struct Shared {
  const CompiledProgram& p;
  const Database* db;
  bool enforce = false;
  std::vector<const Relation*> rels;
  std::vector<OpCounters*> ops;  ///< empty when ops are not captured
};

Shared MakeShared(const CompiledProgram& p, const Database* db, bool enforce) {
  Shared sh{p, db, enforce, {}, {}};
  sh.rels.reserve(p.relations.size());
  for (const std::string& name : p.relations) {
    sh.rels.push_back(db->FindRelation(name));
  }
  return sh;
}

/// Registers the program's op prototypes into `ctx` in table order —
/// reproducing the interpreter's RegisterOps pre-order, so op ids, labels,
/// parents, and static bounds match the interpreted run byte for byte.
void RegisterProgramOps(const CompiledProgram& p, ExecContext* ctx,
                        Shared* sh) {
  sh->ops.reserve(p.ops.size());
  for (const OpProto& proto : p.ops) {
    const int32_t parent =
        proto.parent < 0 ? -1 : sh->ops[proto.parent]->id;
    OpCounters* op = ctx->NewOp(proto.label, parent);
    op->static_bound = proto.static_bound;
    sh->ops.push_back(op);
  }
}

/// Per-lane scratch buffers; worker lanes construct their own, so no state
/// is shared across a fan-out (mirrors the interpreter's per-worker
/// PlainExecutor).
struct LaneScratch {
  std::vector<Value> ext;     ///< distinct extensions, ext_width-wide chunks
  std::vector<Value> locals;  ///< one visit's local extension slots
  std::vector<Value> tmp;
  std::vector<uint32_t> idx;
  Tuple key;
};

/// Runs a leaf's per-position unify steps against a fetched row. The
/// computed-goto variant keeps the dispatch in one indirect branch per
/// position; the switch fallback is semantically identical.
bool UnifyLocal(const std::vector<UnifyStep>& steps,
                const std::vector<Value>& consts, const Value* row,
                TupleView r, Value* locals) {
#if SCALEIN_VM_COMPUTED_GOTO
  static const void* kJump[] = {&&lCheckConst, &&lCheckReg, &&lBindLocal,
                                &&lCheckLocal, &&lSkip,     &&lBindReg};
  const size_t n = steps.size();
  if (n == 0) return true;
  size_t p = 0;
#define SCALEIN_VM_NEXT()                                  \
  do {                                                     \
    if (++p == n) return true;                             \
    goto* kJump[static_cast<uint8_t>(steps[p].kind)];      \
  } while (0)
  goto* kJump[static_cast<uint8_t>(steps[0].kind)];
lCheckConst:
  if (!(consts[steps[p].index] == r[p])) return false;
  SCALEIN_VM_NEXT();
lCheckReg:
  if (!(row[steps[p].reg] == r[p])) return false;
  SCALEIN_VM_NEXT();
lBindLocal:
  locals[steps[p].index] = r[p];
  SCALEIN_VM_NEXT();
lCheckLocal:
  if (!(locals[steps[p].index] == r[p])) return false;
  SCALEIN_VM_NEXT();
lSkip:
  SCALEIN_VM_NEXT();
lBindReg:
  SI_CHECK_MSG(false, "embedded unify step in a plain leaf");
  return false;
#undef SCALEIN_VM_NEXT
#else
  for (size_t p = 0; p < steps.size(); ++p) {
    const UnifyStep& s = steps[p];
    switch (s.kind) {
      case UnifyStep::Kind::kCheckConst:
        if (!(consts[s.index] == r[p])) return false;
        break;
      case UnifyStep::Kind::kCheckReg:
        if (!(row[s.reg] == r[p])) return false;
        break;
      case UnifyStep::Kind::kBindLocal:
        locals[s.index] = r[p];
        break;
      case UnifyStep::Kind::kCheckLocal:
        if (!(locals[s.index] == r[p])) return false;
        break;
      case UnifyStep::Kind::kSkip:
        break;
      case UnifyStep::Kind::kBindReg:
        SI_CHECK_MSG(false, "embedded unify step in a plain leaf");
        break;
    }
  }
  return true;
#endif
}

/// Sorts `buf`'s w-wide chunks lexicographically and drops duplicates —
/// replicating std::set<Binding> order (locals are laid out in variable-id
/// order) and dedup over the leaf's extension domain. Returns the distinct
/// count, with `buf` rebuilt in sorted order.
size_t SortUniqueChunks(std::vector<Value>* buf, size_t w,
                        std::vector<uint32_t>* idx, std::vector<Value>* tmp) {
  const size_t m = w == 0 ? 0 : buf->size() / w;
  if (m <= 1) return m;
  idx->resize(m);
  for (size_t i = 0; i < m; ++i) (*idx)[i] = static_cast<uint32_t>(i);
  const Value* base = buf->data();
  std::sort(idx->begin(), idx->end(), [&](uint32_t a, uint32_t b) {
    const Value* ra = base + static_cast<size_t>(a) * w;
    const Value* rb = base + static_cast<size_t>(b) * w;
    for (size_t j = 0; j < w; ++j) {
      if (ra[j] < rb[j]) return true;
      if (rb[j] < ra[j]) return false;
    }
    return false;
  });
  tmp->clear();
  tmp->reserve(buf->size());
  size_t kept = 0;
  for (size_t i = 0; i < m; ++i) {
    if (i > 0) {
      const Value* a = base + static_cast<size_t>((*idx)[i]) * w;
      const Value* b = base + static_cast<size_t>((*idx)[i - 1]) * w;
      bool eq = true;
      for (size_t j = 0; j < w && eq; ++j) eq = a[j] == b[j];
      if (eq) continue;
    }
    const Value* src = base + static_cast<size_t>((*idx)[i]) * w;
    tmp->insert(tmp->end(), src, src + w);
    ++kept;
  }
  buf->swap(*tmp);
  return kept;
}

Value CondTermValue(const Term& t, const LeafCode& leaf, const Value* row,
                    const Value* locals) {
  if (t.is_const()) return t.constant();
  for (const CondVar& cv : leaf.cond_vars) {
    if (cv.var_id == t.var().id()) {
      return cv.local ? locals[cv.index] : row[cv.reg];
    }
  }
  SI_CHECK_MSG(false, "unbound variable in bounded evaluation");
  return Value();
}

/// Register-resolved twin of the interpreter's EvalConditionFormula.
bool EvalCondFormula(const Formula& f, const LeafCode& leaf, const Value* row,
                     const Value* locals) {
  switch (f.kind()) {
    case FormulaKind::kTrue:
      return true;
    case FormulaKind::kFalse:
      return false;
    case FormulaKind::kEq:
      return CondTermValue(f.eq_lhs(), leaf, row, locals) ==
             CondTermValue(f.eq_rhs(), leaf, row, locals);
    case FormulaKind::kNot:
      return !EvalCondFormula(f.child(), leaf, row, locals);
    case FormulaKind::kAnd:
      for (const Formula& c : f.operands()) {
        if (!EvalCondFormula(c, leaf, row, locals)) return false;
      }
      return true;
    case FormulaKind::kOr:
      for (const Formula& c : f.operands()) {
        if (EvalCondFormula(c, leaf, row, locals)) return true;
      }
      return false;
    case FormulaKind::kImplies:
      return !EvalCondFormula(f.premise(), leaf, row, locals) ||
             EvalCondFormula(f.conclusion(), leaf, row, locals);
    default:
      SI_CHECK_MSG(false, "non-condition node in condition evaluation");
      return false;
  }
}

/// One leaf visit for one frontier row: the compiled body of the
/// interpreter's EvalImpl on an atom/condition leaf. Issues the identical
/// metered charges in the identical order and leaves the distinct
/// extensions (sorted, ext_width-wide) in `s->ext`. Returns the distinct
/// extension count — the visit's rows charge.
uint64_t VisitLeafImpl(const Shared& sh, const LeafCode& leaf,
                       ExecContext* ctx, const Value* row, OpCounters* op,
                       LaneScratch* s) {
  s->ext.clear();
  if (!ctx->ok()) return 0;
  const size_t w = leaf.ext_width;
  if (leaf.is_condition) {
    s->locals.resize(w);
    for (size_t i = 0; i < w; ++i) {
      const Slot& src = leaf.cond_sources[i];
      s->locals[i] = src.kind == Slot::Kind::kConst ? sh.p.consts[src.index]
                                                    : row[src.reg];
    }
    if (!EvalCondFormula(leaf.cond, leaf, row, s->locals.data())) return 0;
    s->ext.insert(s->ext.end(), s->locals.begin(), s->locals.end());
    return 1;
  }
  const Relation* rel = sh.rels[leaf.relation];
  if (rel == nullptr) return 0;
  const std::string& name = sh.p.relations[leaf.relation];
  s->locals.resize(w);
  uint64_t matched = 0;
  auto consume = [&](TupleView r) {
    if (!UnifyLocal(leaf.unify, sh.p.consts, row, r, s->locals.data())) return;
    ++matched;
    if (w > 0) s->ext.insert(s->ext.end(), s->locals.begin(), s->locals.end());
  };
  if (leaf.full_scan) {
    // (R, ∅, N, T): the whole relation is the access unit.
    ChargeFullAccess(ctx, name, *rel, op);
    if (!ctx->ok()) {
      s->ext.clear();
      return 0;
    }
    if (sh.enforce && rel->size() > leaf.access->max_tuples) {
      ctx->SetError(Status::ResourceExhausted("relation " + name +
                                              " exceeds declared N of " +
                                              leaf.access->ToString()));
      s->ext.clear();
      return 0;
    }
    for (size_t i = 0; i < rel->size(); ++i) consume(rel->TupleAt(i));
  } else {
    s->key.clear();
    for (const Slot& slot : leaf.key) {
      s->key.push_back(slot.kind == Slot::Kind::kConst
                           ? sh.p.consts[slot.index]
                           : row[slot.reg]);
    }
    const std::vector<uint32_t>* rows =
        MeteredIndexLookup(ctx, name, *rel, leaf.key_positions, s->key, op);
    if (!ctx->ok()) {
      s->ext.clear();
      return 0;
    }
    if (rows == nullptr) return 0;
    if (sh.enforce && rows->size() > leaf.access->max_tuples) {
      ctx->SetError(Status::ResourceExhausted("σ on " + name +
                                              " exceeds declared N of " +
                                              leaf.access->ToString()));
      s->ext.clear();
      return 0;
    }
    for (uint32_t r : *rows) consume(rel->TupleAt(r));
  }
  if (w == 0) return matched > 0 ? 1 : 0;
  return SortUniqueChunks(&s->ext, w, &s->idx, &s->tmp);
}

/// The interpreter's Eval wrapper: rows-charge (or timed direct bump) on
/// top of the leaf body.
uint64_t VisitLeaf(const Shared& sh, const LeafCode& leaf, ExecContext* ctx,
                   const Value* row, LaneScratch* s) {
  OpCounters* op =
      (leaf.op_idx >= 0 && !sh.ops.empty()) ? sh.ops[leaf.op_idx] : nullptr;
#if SCALEIN_OBS_ENABLE_TIMING
  if (op != nullptr && ctx->timing_enabled()) {
    const uint64_t start = obs::MonotonicNowNs();
    const uint64_t d = VisitLeafImpl(sh, leaf, ctx, row, op, s);
    op->next_ns += obs::MonotonicNowNs() - start;
    ++op->next_calls;
    op->rows_out += d;
    return d;
  }
#endif
  const uint64_t d = VisitLeafImpl(sh, leaf, ctx, row, op, s);
  ctx->ChargeOpRows(op, d);
  return d;
}

/// Flat frontier of `width`-wide register rows.
struct Frontier {
  std::vector<Value> buf;
  size_t width = 0;
  size_t size() const { return width == 0 ? 0 : buf.size() / width; }
  const Value* row(size_t i) const { return buf.data() + i * width; }
};

/// Appends one output row per distinct extension: a copy of `row` with the
/// leaf's ext registers overwritten. Extension chunks are sorted, so rows
/// land in the interpreter's BindingSet iteration order.
void MergeExtensions(const LeafCode& leaf, const Value* row, size_t w,
                     const LaneScratch& s, uint64_t d,
                     std::vector<Value>* out) {
  const size_t ew = leaf.ext_width;
  if (ew == 0) {
    if (d > 0) out->insert(out->end(), row, row + w);
    return;
  }
  for (uint64_t k = 0; k < d; ++k) {
    const size_t base = out->size();
    out->insert(out->end(), row, row + w);
    const Value* chunk = s.ext.data() + k * ew;
    for (size_t j = 0; j < ew; ++j) {
      (*out)[base + leaf.ext_regs[j]] = chunk[j];
    }
  }
}

/// Same predicate as the interpreter's PlainExecutor::ShouldFanOut.
bool ShouldFanOut(ExecContext* ctx, size_t items) {
  return items >= kParallelFrontierThreshold && par::CurrentLane() < 0 &&
         par::WorkerPool::Global().threads() > 1 && ctx->ok();
}

/// Builds the one index a leaf can probe before a parallel section (Ensure*
/// is a const-but-mutating cache fill and must not race).
void PrebuildLeaf(const Database& db, const CompiledProgram& p,
                  const LeafCode& leaf) {
  if (leaf.is_condition || leaf.full_scan) return;
  const Relation* rel = db.FindRelation(p.relations[leaf.relation]);
  if (rel == nullptr) return;
  if (rel->num_shards() > 1) {
    rel->EnsureShardedIndex(leaf.key_positions);
  } else {
    rel->EnsureIndex(leaf.key_positions);
  }
}

/// Expands every frontier row through one positive leaf, fanning out wide
/// frontiers as governed morsels exactly like the interpreter's
/// ExpandParallel. Returns false when the context failed (the interpreter's
/// EvalAnd `return {}`).
bool ExpandStage(const Shared& sh, const PlainStage& stage, ExecContext* ctx,
                 Frontier* rows, LaneScratch* s) {
  const size_t w = rows->width;
  const size_t n = rows->size();
  std::vector<Value> next;
  if (ShouldFanOut(ctx, n)) {
    PrebuildLeaf(*sh.db, sh.p, stage.leaf);
    par::WorkerPool& pool = par::WorkerPool::Global();
    const std::vector<std::pair<size_t, size_t>> ranges =
        par::SplitRanges(n, pool.threads() * 4);
    std::vector<std::vector<Value>> bufs(ranges.size());
    (void)GovernedParallelMorsels(
        ctx, ranges.size(),
        [&](size_t ri, ExecContext* wctx) {
          LaneScratch ws;
          for (size_t i = ranges[ri].first; i < ranges[ri].second && wctx->ok();
               ++i) {
            const Value* row = rows->row(i);
            const uint64_t d = VisitLeaf(sh, stage.leaf, wctx, row, &ws);
            MergeExtensions(stage.leaf, row, w, ws, d, &bufs[ri]);
          }
        },
        [&](size_t ri) {
          for (size_t i = ranges[ri].first; i < ranges[ri].second && ctx->ok();
               ++i) {
            const Value* row = rows->row(i);
            const uint64_t d = VisitLeaf(sh, stage.leaf, ctx, row, s);
            MergeExtensions(stage.leaf, row, w, *s, d, &next);
          }
        },
        [&](size_t ri) {
          next.insert(next.end(), std::make_move_iterator(bufs[ri].begin()),
                      std::make_move_iterator(bufs[ri].end()));
        });
    if (!ctx->ok()) return false;
  } else {
    for (size_t i = 0; i < n; ++i) {
      const Value* row = rows->row(i);
      const uint64_t d = VisitLeaf(sh, stage.leaf, ctx, row, s);
      MergeExtensions(stage.leaf, row, w, *s, d, &next);
      if (!ctx->ok()) return false;
    }
  }
  rows->buf = std::move(next);
  return true;
}

/// Filters the frontier through the safe negation leaves — sequential loop
/// or governed morsels over a keep mask, mirroring FilterNegationsParallel.
bool NegationStage(const Shared& sh, const PlainStage& stage, ExecContext* ctx,
                   Frontier* rows, LaneScratch* s) {
  const size_t w = rows->width;
  const size_t n = rows->size();
  if (ShouldFanOut(ctx, n)) {
    for (const LeafCode& neg : stage.negs) PrebuildLeaf(*sh.db, sh.p, neg);
    std::vector<uint8_t> keep(n, 0);
    par::WorkerPool& pool = par::WorkerPool::Global();
    const std::vector<std::pair<size_t, size_t>> ranges =
        par::SplitRanges(n, pool.threads() * 4);
    auto filter_one = [&](const Value* row, ExecContext* actx,
                          LaneScratch* as) -> uint8_t {
      for (const LeafCode& neg : stage.negs) {
        if (VisitLeaf(sh, neg, actx, row, as) > 0) return 0;
        if (!actx->ok()) return 0;
      }
      return 1;
    };
    (void)GovernedParallelMorsels(
        ctx, ranges.size(),
        [&](size_t ri, ExecContext* wctx) {
          LaneScratch ws;
          for (size_t i = ranges[ri].first; i < ranges[ri].second && wctx->ok();
               ++i) {
            keep[i] = filter_one(rows->row(i), wctx, &ws);
          }
        },
        [&](size_t ri) {
          for (size_t i = ranges[ri].first; i < ranges[ri].second && ctx->ok();
               ++i) {
            keep[i] = filter_one(rows->row(i), ctx, s);
          }
        },
        [&](size_t ri) {});
    if (!ctx->ok()) return false;
    std::vector<Value> next;
    for (size_t i = 0; i < n; ++i) {
      if (keep[i]) next.insert(next.end(), rows->row(i), rows->row(i) + w);
    }
    rows->buf = std::move(next);
    return true;
  }
  std::vector<Value> next;
  for (size_t i = 0; i < n; ++i) {
    const Value* row = rows->row(i);
    bool keep = true;
    for (const LeafCode& neg : stage.negs) {
      if (VisitLeaf(sh, neg, ctx, row, s) > 0) {
        keep = false;
        break;
      }
      if (!ctx->ok()) return false;
    }
    if (keep) next.insert(next.end(), row, row + w);
  }
  rows->buf = std::move(next);
  return true;
}

/// Sorts + dedups the frontier on the stage's binding-domain layout
/// (variable-id order ⇒ std::set<Binding> order) and charges the owning
/// "and"/"exists" op with the distinct count — the interpreter's BindingSet
/// materialization. Rows equal on the layout are duplicates over every
/// register read downstream, so the unstable sort is observation-free.
void FinalizeStage(const Shared& sh, const PlainStage& stage, ExecContext* ctx,
                   Frontier* rows, LaneScratch* s, uint64_t eval_start) {
  (void)eval_start;
  const size_t w = rows->width;
  const size_t n = rows->size();
  const std::vector<Reg>& layout = stage.layout;
  uint64_t d = n;
  if (n > 1) {
    s->idx.resize(n);
    for (size_t i = 0; i < n; ++i) s->idx[i] = static_cast<uint32_t>(i);
    const Value* base = rows->buf.data();
    std::sort(s->idx.begin(), s->idx.end(), [&](uint32_t a, uint32_t b) {
      const Value* ra = base + static_cast<size_t>(a) * w;
      const Value* rb = base + static_cast<size_t>(b) * w;
      for (Reg rg : layout) {
        if (ra[rg] < rb[rg]) return true;
        if (rb[rg] < ra[rg]) return false;
      }
      return false;
    });
    s->tmp.clear();
    s->tmp.reserve(rows->buf.size());
    d = 0;
    for (size_t i = 0; i < n; ++i) {
      if (i > 0) {
        const Value* a = base + static_cast<size_t>(s->idx[i]) * w;
        const Value* b = base + static_cast<size_t>(s->idx[i - 1]) * w;
        bool eq = true;
        for (size_t j = 0; j < layout.size() && eq; ++j) {
          eq = a[layout[j]] == b[layout[j]];
        }
        if (eq) continue;
      }
      const Value* src = base + static_cast<size_t>(s->idx[i]) * w;
      s->tmp.insert(s->tmp.end(), src, src + w);
      ++d;
    }
    rows->buf.swap(s->tmp);
  }
  OpCounters* op =
      (stage.op_idx >= 0 && !sh.ops.empty()) ? sh.ops[stage.op_idx] : nullptr;
#if SCALEIN_OBS_ENABLE_TIMING
  if (op != nullptr && ctx->timing_enabled()) {
    // Approximate: wrapper ops share the evaluation's start clock (vm.h).
    op->next_ns += obs::MonotonicNowNs() - eval_start;
    ++op->next_calls;
    op->rows_out += d;
    return;
  }
#endif
  ctx->ChargeOpRows(op, d);
}

/// Straight-line stage loop over one frontier buffer. On a context failure
/// the remaining expand/negation stages are skipped entirely (the
/// interpreter abandons those subtree visits with no charges), but the
/// finalize/project stages still run — EvalAnd's `return {}` still flows
/// through the and/exists Eval wrappers, charging zero rows.
void RunPlainProgram(const Shared& sh, ExecContext* ctx, const Binding& params,
                     Frontier* rows, LaneScratch* s) {
  const CompiledProgram& p = sh.p;
  rows->width = p.num_regs;
  rows->buf.assign(p.num_regs, Value());
  for (const auto& [v, r] : p.param_regs) rows->buf[r] = params.at(v);
  uint64_t eval_start = 0;
#if SCALEIN_OBS_ENABLE_TIMING
  if (ctx->timing_enabled()) eval_start = obs::MonotonicNowNs();
#endif
  bool aborted = false;
  for (const PlainStage& stage : p.stages) {
    switch (stage.kind) {
      case PlainStage::Kind::kExpand:
        if (!aborted && !ExpandStage(sh, stage, ctx, rows, s)) {
          aborted = true;
          rows->buf.clear();
        }
        break;
      case PlainStage::Kind::kNegations:
        if (!aborted && !NegationStage(sh, stage, ctx, rows, s)) {
          aborted = true;
          rows->buf.clear();
        }
        break;
      case PlainStage::Kind::kFinalize:
      case PlainStage::Kind::kExistsFinalize:
        FinalizeStage(sh, stage, ctx, rows, s, eval_start);
        break;
    }
  }
}

Status CheckPlainParams(const CompiledProgram& p, const Binding& params) {
  VarSet vars;
  for (const auto& [v, val] : params) {
    (void)val;
    vars.insert(v);
  }
  if (vars != p.params) {
    return Status::InvalidArgument(
        "compiled program was built for parameters " +
        VarSetToString(p.params) + ", got " + VarSetToString(vars));
  }
  return Status::OK();
}

Status CheckEmbeddedParams(const CompiledProgram& p, const Binding& params) {
  for (const Variable& v : p.params) {
    if (!params.count(v)) {
      return Status::InvalidArgument("missing value for parameter '" +
                                     v.name() + "'");
    }
  }
  // Extra bindings would seed the interpreter's chase frontier but have no
  // registers here; reject so the caller falls back to interpretation.
  if (params.size() != p.params.size()) {
    return Status::InvalidArgument(
        "compiled program was built for parameters " +
        VarSetToString(p.params));
  }
  return Status::OK();
}

/// Per-lane scratch of the embedded chase: flat arity-wide candidate
/// buffers with one validity-mask word per candidate (arity ≤ 64, enforced
/// by the compiler).
struct EmbScratch {
  std::vector<Value> cand;
  std::vector<uint64_t> mask;
  std::vector<Value> ext;
  std::vector<uint64_t> ext_mask;
  Tuple key;
};

/// One frontier row through one compiled atom's chase — the register form
/// of the interpreter's process_assignment, with the identical metered
/// calls, error strings, and candidate/extension order.
Status ProcessRow(const Shared& sh, const AtomCode& ac, const Relation* rel,
                  const Value* row, ExecContext* actx, OpCounters* aop,
                  std::vector<Value>* out, size_t w, EmbScratch* s) {
  const CompiledProgram& p = sh.p;
  const std::string& name = p.relations[ac.relation];
  const size_t arity = ac.arity;
  // Seed partial tuple from constants and bound registers.
  s->cand.assign(arity, Value());
  uint64_t seed_mask = 0;
  for (size_t pos = 0; pos < arity; ++pos) {
    const Slot& slot = ac.seed[pos];
    if (slot.kind == Slot::Kind::kConst) {
      s->cand[pos] = p.consts[slot.index];
      seed_mask |= uint64_t{1} << pos;
    } else if (slot.kind == Slot::Kind::kReg) {
      s->cand[pos] = row[slot.reg];
      seed_mask |= uint64_t{1} << pos;
    }
  }
  s->mask.assign(1, seed_mask);
  for (const ChaseStepCode& step : ac.steps) {
    s->ext.clear();
    s->ext_mask.clear();
    const size_t m = s->mask.size();
    for (size_t ci = 0; ci < m; ++ci) {
      const Value* cand = s->cand.data() + ci * arity;
      const uint64_t cmask = s->mask[ci];
      s->key.clear();
      for (size_t pos : step.key_layout) {
        SI_CHECK(cmask >> pos & 1);
        s->key.push_back(cand[pos]);
      }
      std::vector<Tuple> projections =
          MeteredProjectionLookup(actx, name, *rel, step.key_positions,
                                  step.value_positions, s->key, aop);
      SI_RETURN_IF_ERROR(actx->status());
      if (sh.enforce && projections.size() > step.statement->max_tuples) {
        return Status::ResourceExhausted(
            "embedded access exceeds declared N of " +
            step.statement->ToString());
      }
      for (const Tuple& proj : projections) {
        const size_t base = s->ext.size();
        s->ext.insert(s->ext.end(), cand, cand + arity);
        uint64_t emask = cmask;
        bool ok = true;
        for (size_t i = 0; i < step.value_layout.size() && ok; ++i) {
          const size_t pos = step.value_layout[i];
          if (emask >> pos & 1) {
            ok = s->ext[base + pos] == proj[i];
          } else {
            s->ext[base + pos] = proj[i];
            emask |= uint64_t{1} << pos;
          }
        }
        if (ok) {
          s->ext_mask.push_back(emask);
        } else {
          s->ext.resize(base);
        }
      }
    }
    s->cand.swap(s->ext);
    s->mask.swap(s->ext_mask);
  }
  // All positions are now bound; verify if required, then unify.
  const size_t m = s->mask.size();
  for (size_t ci = 0; ci < m; ++ci) {
    const Value* cand = s->cand.data() + ci * arity;
    if (ac.needs_verification) {
      s->key.clear();
      for (size_t pos : ac.verify_positions) s->key.push_back(cand[pos]);
      const std::vector<uint32_t>* row_ids = MeteredIndexLookup(
          actx, name, *rel, ac.verify_positions, s->key, aop);
      SI_RETURN_IF_ERROR(actx->status());
      bool found = false;
      if (row_ids != nullptr) {
        if (sh.enforce && row_ids->size() > ac.verify_statement->max_tuples) {
          return Status::ResourceExhausted(
              "verification access exceeds declared N of " +
              ac.verify_statement->ToString());
        }
        for (uint32_t r : *row_ids) {
          if (TupleEquals(rel->TupleAt(r), TupleView(cand, arity))) {
            found = true;
            break;
          }
        }
      }
      if (!found) continue;
    }
    // Extend the frontier row with the atom's variables; kCheckReg reads
    // the mutable output row so same-atom kBindReg bindings are visible to
    // later repeated positions.
    const size_t base = out->size();
    out->insert(out->end(), row, row + w);
    Value* dst = out->data() + base;
    bool ok = true;
    for (size_t pos = 0; pos < arity && ok; ++pos) {
      const UnifyStep& u = ac.unify[pos];
      switch (u.kind) {
        case UnifyStep::Kind::kSkip:
          break;
        case UnifyStep::Kind::kCheckReg:
          ok = dst[u.reg] == cand[pos];
          break;
        case UnifyStep::Kind::kBindReg:
          dst[u.reg] = cand[pos];
          break;
        default:
          SI_CHECK_MSG(false, "plain unify step in an embedded atom");
      }
    }
    if (!ok) out->resize(base);
  }
  return Status::OK();
}

}  // namespace

Result<AnswerSet> CompiledEvaluator::Evaluate(const CompiledProgram& program,
                                              const Binding& params,
                                              BoundedEvalStats* stats) const {
  if (program.kind != CompiledProgram::Kind::kPlain) {
    return Status::InvalidArgument(
        "Evaluate requires a plain compiled program");
  }
  SI_RETURN_IF_ERROR(CheckPlainParams(program, params));
  ExecContext ctx(db_);
  ctx.set_limits(limits_);  // per-evaluation resource envelope
  ctx.set_timing_enabled(collect_timing_);
  obs::ScopedSpan span(ctx.tracer(), "bounded.evaluate", "core");
  if (span.enabled() && par::CurrentLane() >= 0) {
    span.Arg("worker", static_cast<uint64_t>(par::CurrentLane()));
  }
  Shared sh = MakeShared(program, db_, enforce_bounds_);
  if (collect_timing_ || (stats != nullptr && stats->capture_ops)) {
    RegisterProgramOps(program, &ctx, &sh);
  }
  Frontier rows;
  LaneScratch scratch;
  RunPlainProgram(sh, &ctx, params, &rows, &scratch);
  if (span.enabled()) {
    span.Arg("fetched", ctx.base_tuples_fetched());
    span.Arg("static_bound", program.static_bound);
  }
  if (stats != nullptr) {
    stats->static_bound = program.static_bound;
    stats->Accumulate(ctx);
  }
  if (obs::FlightRecorderEnabled()) {
    obs::RecordFlightNums(
        obs::EventKind::kQueryFinish, "bounded.eval",
        {{"fetched", static_cast<double>(ctx.base_tuples_fetched())},
         {"static_bound", program.static_bound},
         {"tripped", ctx.trip().tripped() ? 1.0 : 0.0}});
  }
  SI_RETURN_IF_ERROR(ctx.status());

  AnswerSet answers;
  for (size_t i = 0; i < rows.size(); ++i) {
    const Value* row = rows.row(i);
    Tuple t;
    t.reserve(program.head_regs.size());
    for (Reg r : program.head_regs) t.push_back(row[r]);
    auto [pos, inserted] = answers.insert(std::move(t));
    if (inserted && !ctx.ChargeOutput(1, nullptr)) {
      answers.erase(pos);
      break;
    }
  }
  SI_RETURN_IF_ERROR(ctx.status());
  return answers;
}

Result<Degraded<AnswerSet>> CompiledEvaluator::EvaluateDegraded(
    const CompiledProgram& program, const Binding& params,
    BoundedEvalStats* stats) const {
  if (program.kind != CompiledProgram::Kind::kPlain) {
    return Status::InvalidArgument(
        "EvaluateDegraded requires a plain compiled program");
  }
  SI_RETURN_IF_ERROR(CheckPlainParams(program, params));
  ExecContext ctx(db_);
  ctx.set_limits(limits_);
  ctx.set_timing_enabled(collect_timing_);
  obs::ScopedSpan span(ctx.tracer(), "bounded.evaluate_degraded", "core");
  if (obs::FlightRecorderEnabled()) {
    obs::RecordFlightEvent(
        obs::EventKind::kQueryStart, "bounded.evaluate_degraded",
        {obs::EventArg("static_bound", program.static_bound)});
  }
  Shared sh = MakeShared(program, db_, enforce_bounds_);
  // Ops are always registered here so that a trip's snapshot can name the
  // derivation node that was executing when the limit fired.
  RegisterProgramOps(program, &ctx, &sh);
  Frontier rows;
  LaneScratch scratch;
  RunPlainProgram(sh, &ctx, params, &rows, &scratch);
  if (span.enabled()) {
    span.Arg("fetched", ctx.base_tuples_fetched());
    span.Arg("static_bound", program.static_bound);
    span.Arg("tripped", ctx.trip().tripped());
  }
  if (stats != nullptr) {
    stats->static_bound = program.static_bound;
    stats->Accumulate(ctx);
  }
  if (obs::FlightRecorderEnabled()) {
    obs::RecordFlightEvent(
        obs::EventKind::kQueryFinish, "bounded.evaluate_degraded",
        {obs::EventArg("fetched", ctx.base_tuples_fetched()),
         obs::EventArg("static_bound", program.static_bound),
         obs::EventArg("tripped", ctx.trip().tripped())});
  }

  Degraded<AnswerSet> out;
  // Projection runs before the trip check: the output-row cap trips here,
  // and the tripping answer is withdrawn (see the interpreter's
  // EvaluateDegraded for the full rationale).
  for (size_t i = 0; i < rows.size(); ++i) {
    const Value* row = rows.row(i);
    Tuple t;
    t.reserve(program.head_regs.size());
    for (Reg r : program.head_regs) t.push_back(row[r]);
    auto [pos, inserted] = out.value.insert(std::move(t));
    if (inserted && !ctx.ChargeOutput(1, nullptr)) {
      out.value.erase(pos);
      break;
    }
  }
  out.base_tuples_fetched = ctx.base_tuples_fetched();
  out.index_lookups = ctx.index_lookups();
  if (!ctx.ok()) {
    // Only governor trips degrade; other failures stay errors.
    if (!ctx.trip().tripped()) return ctx.status();
    out.complete = false;
    out.trip = ctx.trip();
    out.ops = ctx.SnapshotOps();
  }
  return out;
}

std::vector<Result<AnswerSet>> CompiledEvaluator::EvaluateBatch(
    const CompiledProgram& program, const std::vector<Binding>& batch,
    BoundedEvalStats* stats) const {
  PrebuildCompiledIndexes(*db_, program);
  std::vector<std::optional<Result<AnswerSet>>> slots(batch.size());
  std::vector<BoundedEvalStats> worker_stats(batch.size());
  const bool capture_ops = stats != nullptr && stats->capture_ops;
  par::WorkerPool::Global().ParallelFor(batch.size(), [&](size_t i) {
    worker_stats[i].capture_ops = capture_ops;
    slots[i].emplace(Evaluate(program, batch[i], &worker_stats[i]));
  });
  std::vector<Result<AnswerSet>> out;
  out.reserve(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    if (stats != nullptr) stats->Merge(worker_stats[i]);
    out.push_back(std::move(*slots[i]));
  }
  return out;
}

Result<AnswerSet> CompiledEvaluator::EvaluateEmbedded(
    const CompiledProgram& program, const Binding& params,
    BoundedEvalStats* stats) const {
  if (program.kind != CompiledProgram::Kind::kEmbedded) {
    return Status::InvalidArgument(
        "EvaluateEmbedded requires an embedded compiled program");
  }
  ExecContext ctx(db_);
  ctx.set_limits(limits_);  // per-evaluation resource envelope
  ctx.set_timing_enabled(collect_timing_);
  obs::ScopedSpan span(ctx.tracer(), "bounded.evaluate_embedded", "core");
  if (span.enabled() && par::CurrentLane() >= 0) {
    span.Arg("worker", static_cast<uint64_t>(par::CurrentLane()));
  }
  const bool capture_ops =
      collect_timing_ || (stats != nullptr && stats->capture_ops);
  Result<AnswerSet> result =
      EvaluateEmbeddedImpl(program, params, &ctx, capture_ops);
  if (span.enabled()) span.Arg("fetched", ctx.base_tuples_fetched());
  if (stats != nullptr) {
    stats->static_bound = program.static_bound;
    stats->Accumulate(ctx);
  }
  if (obs::FlightRecorderEnabled()) {
    obs::RecordFlightEvent(
        obs::EventKind::kQueryFinish, "bounded.evaluate_embedded",
        {obs::EventArg("fetched", ctx.base_tuples_fetched()),
         obs::EventArg("ok", result.ok())});
  }
  return result;
}

std::vector<Result<AnswerSet>> CompiledEvaluator::EvaluateEmbeddedBatch(
    const CompiledProgram& program, const std::vector<Binding>& batch,
    BoundedEvalStats* stats) const {
  PrebuildCompiledIndexes(*db_, program);
  std::vector<std::optional<Result<AnswerSet>>> slots(batch.size());
  std::vector<BoundedEvalStats> worker_stats(batch.size());
  const bool capture_ops = stats != nullptr && stats->capture_ops;
  par::WorkerPool::Global().ParallelFor(batch.size(), [&](size_t i) {
    worker_stats[i].capture_ops = capture_ops;
    slots[i].emplace(EvaluateEmbedded(program, batch[i], &worker_stats[i]));
  });
  std::vector<Result<AnswerSet>> out;
  out.reserve(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    if (stats != nullptr) stats->Merge(worker_stats[i]);
    out.push_back(std::move(*slots[i]));
  }
  return out;
}

Result<AnswerSet> CompiledEvaluator::EvaluateEmbeddedImpl(
    const CompiledProgram& program, const Binding& params, ExecContext* ctx,
    bool capture_ops) const {
  SI_RETURN_IF_ERROR(CheckEmbeddedParams(program, params));
  Shared sh = MakeShared(program, db_, enforce_bounds_);
  if (capture_ops) RegisterProgramOps(program, ctx, &sh);
  OpCounters* root_op = capture_ops ? sh.ops[0] : nullptr;

  const size_t w = program.num_regs;
  std::vector<Value> rows(w, Value());
  for (const auto& [v, r] : program.param_regs) rows[r] = params.at(v);
  size_t n_rows = 1;

  EmbScratch scratch;
  for (size_t ai = 0; ai < program.atoms.size(); ++ai) {
    const AtomCode& ac = program.atoms[ai];
    OpCounters* op = capture_ops ? sh.ops[ac.op_idx] : nullptr;
#if SCALEIN_OBS_ENABLE_TIMING
    const bool timed = op != nullptr && ctx->timing_enabled();
    const uint64_t atom_start = timed ? obs::MonotonicNowNs() : 0;
#endif
    // One chase step of the Proposition 4.5 plan: extend every frontier
    // row through this atom's access statements.
    if (Status s = SCALEIN_FAILPOINT("chase_step"); !s.ok()) return s;
    obs::ScopedSpan chase_span(ctx->tracer(), "bounded.chase_step", "core");
    if (chase_span.enabled()) {
      chase_span.Arg("relation", program.relations[ac.relation]);
      chase_span.Arg("step", static_cast<uint64_t>(ai));
      chase_span.Arg("frontier", static_cast<uint64_t>(n_rows));
    }
    if (obs::FlightRecorderEnabled()) {
      obs::RecordFlightEvent(
          obs::EventKind::kChaseStep, program.relations[ac.relation],
          {obs::EventArg("step", static_cast<uint64_t>(ai)),
           obs::EventArg("frontier", static_cast<uint64_t>(n_rows))});
    }
    const Relation* rel = sh.rels[ac.relation];
    // Prebuild this atom's indexes (Ensure* is const-but-mutating on first
    // use) so the morsel fan-out below only ever reads.
    if (rel != nullptr) {
      for (const ChaseStepCode& step : ac.steps) {
        rel->EnsureProjectionIndex(step.key_positions, step.value_positions);
      }
      if (ac.needs_verification) {
        if (rel->num_shards() > 1) {
          rel->EnsureShardedIndex(ac.verify_positions);
        } else {
          rel->EnsureIndex(ac.verify_positions);
        }
      }
    }
    std::vector<Value> next;
    par::WorkerPool& pool = par::WorkerPool::Global();
    const bool fan_out = rel != nullptr && pool.threads() > 1 &&
                         n_rows >= kParallelFrontierThreshold && ctx->ok();
    if (rel == nullptr) {
      // Unknown relation: the frontier dies here, matching a lookup miss.
    } else if (!fan_out) {
      for (size_t i = 0; i < n_rows; ++i) {
        SI_RETURN_IF_ERROR(ProcessRow(sh, ac, rel, rows.data() + i * w, ctx,
                                      op, &next, w, &scratch));
      }
    } else {
      // Governed morsel fan-out over the frontier: identical split, replay,
      // and reconciliation to the interpreter's chase (bounded_eval.cc).
      const std::vector<std::pair<size_t, size_t>> ranges =
          par::SplitRanges(n_rows, pool.threads() * 4);
      std::vector<std::vector<Value>> worker_out(ranges.size());
      Status frontier_error = Status::OK();
      (void)GovernedParallelMorsels(
          ctx, ranges.size(),
          [&](size_t ri, ExecContext* wctx) {
            EmbScratch ws;
            for (size_t i = ranges[ri].first; i < ranges[ri].second; ++i) {
              Status s = ProcessRow(sh, ac, rel, rows.data() + i * w, wctx,
                                    op, &worker_out[ri], w, &ws);
              if (!s.ok()) {
                wctx->SetError(std::move(s));
                break;
              }
              if (!wctx->ok()) break;
            }
          },
          [&](size_t ri) {
            for (size_t i = ranges[ri].first; i < ranges[ri].second; ++i) {
              if (!ctx->ok() || !frontier_error.ok()) break;
              frontier_error = ProcessRow(sh, ac, rel, rows.data() + i * w,
                                          ctx, op, &next, w, &scratch);
            }
          },
          [&](size_t ri) {
            next.insert(next.end(),
                        std::make_move_iterator(worker_out[ri].begin()),
                        std::make_move_iterator(worker_out[ri].end()));
          });
      SI_RETURN_IF_ERROR(frontier_error);
      SI_RETURN_IF_ERROR(ctx->status());
    }
    const size_t next_n = w == 0 ? 0 : next.size() / w;
    if (op != nullptr) {
      op->rows_out += next_n;
#if SCALEIN_OBS_ENABLE_TIMING
      if (timed) {
        op->next_ns += obs::MonotonicNowNs() - atom_start;
        ++op->next_calls;
      }
#endif
    }
    rows = std::move(next);
    n_rows = next_n;
  }

  // Project to the open head positions; distinct answers charge the
  // output-row cap.
  AnswerSet answers;
  for (size_t i = 0; i < n_rows; ++i) {
    const Value* row = rows.data() + i * w;
    Tuple t;
    t.reserve(program.embed_head_regs.size());
    for (Reg r : program.embed_head_regs) t.push_back(row[r]);
    auto [pos, inserted] = answers.insert(std::move(t));
    if (inserted && !ctx->ChargeOutput(1, root_op)) {
      answers.erase(pos);
      break;
    }
  }
  SI_RETURN_IF_ERROR(ctx->status());
  if (root_op != nullptr) root_op->rows_out += answers.size();
  return answers;
}

Result<Degraded<AnswerSet>> CompiledEvaluator::EvaluateEmbeddedDegraded(
    const CompiledProgram& program, const Binding& params,
    BoundedEvalStats* stats, bool fallback_to_approx) const {
  if (program.kind != CompiledProgram::Kind::kEmbedded) {
    return Status::InvalidArgument(
        "EvaluateEmbeddedDegraded requires an embedded compiled program");
  }
  ExecContext ctx(db_);
  ctx.set_limits(limits_);
  ctx.set_timing_enabled(collect_timing_);
  obs::ScopedSpan span(ctx.tracer(), "bounded.evaluate_embedded_degraded",
                       "core");
  if (obs::FlightRecorderEnabled()) {
    obs::RecordFlightEvent(obs::EventKind::kQueryStart,
                           "bounded.evaluate_embedded_degraded");
  }
  // Capture ops unconditionally so a trip names the chase step it hit.
  Result<AnswerSet> result =
      EvaluateEmbeddedImpl(program, params, &ctx, /*capture_ops=*/true);
  if (span.enabled()) {
    span.Arg("fetched", ctx.base_tuples_fetched());
    span.Arg("tripped", ctx.trip().tripped());
  }
  if (stats != nullptr) {
    stats->static_bound = program.static_bound;
    stats->Accumulate(ctx);
  }
  if (obs::FlightRecorderEnabled()) {
    obs::RecordFlightEvent(
        obs::EventKind::kQueryFinish, "bounded.evaluate_embedded_degraded",
        {obs::EventArg("fetched", ctx.base_tuples_fetched()),
         obs::EventArg("tripped", ctx.trip().tripped())});
  }

  Degraded<AnswerSet> out;
  out.base_tuples_fetched = ctx.base_tuples_fetched();
  out.index_lookups = ctx.index_lookups();
  if (result.ok() && ctx.ok()) {
    out.value = std::move(result).ValueOrDie();
    return out;
  }
  if (!ctx.trip().tripped()) {
    // Genuine failure (failpoint, bound violation, bad arguments).
    return result.ok() ? ctx.status() : result.status();
  }
  out.complete = false;
  out.trip = ctx.trip();
  out.ops = ctx.SnapshotOps();
  if (fallback_to_approx && limits_.fetch_budget > 0) {
    // PIQL-style success tolerance, identical to the interpreter: re-answer
    // the parameter-substituted CQ with the greedy budgeted engine.
    const Cq& q = program.embed_query;
    std::map<Variable, Term> subst;
    for (const auto& [v, val] : params) subst.emplace(v, Term::Const(val));
    ApproxResult approx =
        ApproximateCqAnswers(q.Substitute(subst), *db_, limits_.fetch_budget);
    std::vector<size_t> keep;
    for (size_t i = 0; i < q.head().size(); ++i) {
      const Term& h = q.head()[i];
      if (h.is_const() || program.params.count(h.var())) continue;
      keep.push_back(i);
    }
    for (const Tuple& full : approx.answers) {
      Tuple t;
      t.reserve(keep.size());
      for (size_t i : keep) t.push_back(full[i]);
      out.value.insert(std::move(t));
    }
    out.fallback = "approx";
  }
  return out;
}

void PrebuildCompiledIndexes(const Database& db,
                             const CompiledProgram& program) {
  if (program.kind == CompiledProgram::Kind::kPlain) {
    for (const PrebuildIndex& pb : program.prebuilds) {
      const Relation* rel = db.FindRelation(program.relations[pb.relation]);
      if (rel == nullptr || pb.positions.empty()) continue;
      if (rel->num_shards() > 1) {
        rel->EnsureShardedIndex(pb.positions);
      } else {
        rel->EnsureIndex(pb.positions);
      }
    }
    return;
  }
  for (const AtomCode& ac : program.atoms) {
    const Relation* rel = db.FindRelation(program.relations[ac.relation]);
    if (rel == nullptr) continue;
    for (const ChaseStepCode& step : ac.steps) {
      rel->EnsureProjectionIndex(step.key_positions, step.value_positions);
    }
    if (ac.needs_verification) {
      if (rel->num_shards() > 1) {
        rel->EnsureShardedIndex(ac.verify_positions);
      } else {
        rel->EnsureIndex(ac.verify_positions);
      }
    }
  }
}

}  // namespace scalein::exec
