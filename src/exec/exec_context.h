#ifndef SCALEIN_EXEC_EXEC_CONTEXT_H_
#define SCALEIN_EXEC_EXEC_CONTEXT_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "exec/governor.h"
#include "obs/correlation.h"
#include "relational/database.h"
#include "util/status.h"

namespace scalein::obs {
class MetricsRegistry;
class Tracer;
}  // namespace scalein::obs

namespace scalein::exec {

/// Per-operator accounting: one entry per operator (or bounded-derivation
/// node) instance in a plan. Kept addressable for the lifetime of the
/// ExecContext so operators can bump their counters without a lookup on the
/// hot path. `id`/`parent` link the entries into the executed tree that
/// EXPLAIN ANALYZE renders (obs/explain.h); the `*_ns` wall-time fields are
/// populated only when the context has timing enabled.
struct OpCounters {
  std::string label;            ///< e.g. "scan(friend)", "idx-join(visit)"
  int32_t id = -1;              ///< index into ExecContext::ops()
  int32_t parent = -1;          ///< parent op id; -1 for roots
  uint64_t rows_out = 0;        ///< rows the operator emitted downstream
  uint64_t tuples_fetched = 0;  ///< base tuples this operator pulled from storage
  uint64_t index_lookups = 0;   ///< index probes this operator issued
  uint64_t open_ns = 0;         ///< inclusive wall time spent in Open()
  uint64_t next_ns = 0;         ///< inclusive wall time spent across Next()
  uint64_t next_calls = 0;      ///< number of Next() calls
  /// Static Theorem 4.2 fetch bound for this (sub)operator, when one exists
  /// (bounded-derivation nodes); negative means "no static bound known".
  double static_bound = -1.0;
};

/// One recorded metered charge in a worker lane's charge log. Worker
/// contexts of a governed fan-out do not consult the parent's governor;
/// they append one event per metered call and the parent replays the logs
/// in morsel order through its own armed governor, reproducing the exact
/// sequential charge/trip sequence (see exec/governed_parallel.h).
struct ChargeEvent {
  enum class Kind : uint8_t {
    kLookup,  ///< ChargeIndexLookup: one index probe fetching n tuples
    kScan,    ///< ChargeScan / ChargeRows: n tuples with no probe
    kRows,    ///< ChargeOpRows: n rows emitted by op (no governor probe)
  };
  Kind kind = Kind::kScan;
  int32_t op_id = -1;     ///< parent-op id the charge attributes to; -1 none
  uint32_t relation = 0;  ///< intern id into the worker's relation table
  uint64_t n = 0;
};

/// Shared state of one physical evaluation: the database (with optional
/// per-relation content overrides, used by the incremental engine to make a
/// base-relation name stand for ∆R/∇R), the universal fetch accounting the
/// paper's |D_Q| ≤ M bound is measured against, an optional hard fetch
/// budget (the paper's M as "the capacity of our available resources"),
/// per-operator counters, and the observability hooks (span tracer, per-op
/// wall-time collection).
///
/// Every tuple any engine component retrieves from a base relation — scans,
/// hash-index probes, projection-index probes — is charged here, on every
/// evaluation path (RA, CQ, FO, bounded, incremental, views). This is the
/// single metered access layer the bounded-evaluation guarantees hang off.
class ExecContext {
 public:
  ExecContext();
  explicit ExecContext(const Database* db);

  const Database* db() const { return db_; }
  void set_db(const Database* db) { db_ = db; }

  /// Makes `name` resolve to `rel` instead of the database's relation.
  void AddOverride(const std::string& name, const Relation* rel) {
    overrides_[name] = rel;
  }

  /// The relation `name` resolves to, honoring overrides; nullptr if unknown.
  const Relation* Resolve(const std::string& name) const;

  /// Hard cap on base tuples fetched during this context's lifetime; 0
  /// disables (default). Exceeding it sets a ResourceExhausted status.
  /// Shorthand for arming the governor with only a fetch budget (other armed
  /// limits are preserved).
  void set_fetch_budget(uint64_t budget) {
    GovernorLimits limits = governor_.limits();
    limits.fetch_budget = budget;
    governor_.Arm(limits);
  }
  uint64_t fetch_budget() const { return governor_.limits().fetch_budget; }

  // --- Resource governor (the unified run-time limits) ---

  /// Arms the governor: fetch budget, wall-clock deadline, output-row cap,
  /// cancellation. Re-arming restarts the deadline clock and clears any
  /// recorded trip.
  void set_limits(const GovernorLimits& limits) { governor_.Arm(limits); }

  ResourceGovernor& governor() { return governor_; }
  const ResourceGovernor& governor() const { return governor_; }

  /// The governor trip that failed this context, if any (kind == kNone when
  /// the context is clean or failed for a non-governor reason).
  const TripInfo& trip() const { return governor_.trip(); }

  /// Progress probe for fetch-free loops running under this context; on a
  /// deadline/cancellation trip, fails the context and returns false.
  bool Checkpoint(OpCounters* op = nullptr) {
    if (governor_.Checkpoint(op)) return true;
    RecordTrip();
    return false;
  }

  /// Charges `n` emitted result rows against the output cap; false on trip.
  bool ChargeOutput(uint64_t n, OpCounters* op = nullptr) {
    if (governor_.OnOutput(n, op)) return true;
    RecordTrip();
    return false;
  }

  // --- Observability (src/obs) ---

  /// Span sink for engine-level phases (planning, draining, witness search).
  /// Defaults to the process-global tracer (obs::Tracer::Global()) captured
  /// at construction; nullptr disables span recording.
  obs::Tracer* tracer() const { return tracer_; }
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Correlation id of the evaluation this context belongs to, captured from
  /// obs::CurrentQueryId() at construction (like the tracer) — worker-lane
  /// contexts spawned mid-query inherit the same id, so per-lane artifacts
  /// stay joinable to the one query that caused them. Invalid outside an
  /// evaluation scope.
  const obs::QueryId& query_id() const { return query_id_; }
  void set_query_id(const obs::QueryId& id) { query_id_ = id; }

  /// When enabled *before planning*, operators record per-op Open/Next wall
  /// time into their OpCounters (EXPLAIN ANALYZE's timing column). Off by
  /// default so the pull loop stays a branch-on-null away from the untimed
  /// path; compile with SCALEIN_OBS_ENABLE_TIMING=0 to remove even that.
  bool timing_enabled() const { return timing_enabled_; }
  void set_timing_enabled(bool enabled) { timing_enabled_ = enabled; }

  // --- Universal accounting (the |D_Q| of §3–§4, measured) ---
  uint64_t base_tuples_fetched() const { return base_tuples_fetched_; }
  uint64_t index_lookups() const { return index_lookups_; }
  const std::map<std::string, uint64_t>& fetched_by_relation() const {
    return fetched_by_relation_;
  }

  /// Charges `tuples` fetched from `relation` via an index probe (hash or
  /// projection index). `op` may be null.
  void ChargeIndexLookup(const std::string& relation, uint64_t tuples,
                         OpCounters* op);

  /// Charges `tuples` fetched from `relation` via a sequential scan.
  void ChargeScan(const std::string& relation, uint64_t tuples, OpCounters* op);

  /// Stable pointer to the per-relation fetched counter for `name` (map
  /// nodes are pointer-stable). Pair with ChargeRows so per-row scan charges
  /// skip the name lookup.
  uint64_t* RelationSlot(const std::string& name);

  /// Hot-path scan charge of `n` tuples against a pre-resolved slot.
  void ChargeRows(uint64_t* slot, uint64_t n, OpCounters* op);

  /// Folds a morsel-worker context's universal accounting into this one:
  /// base tuples fetched, index lookups, and per-relation fetch counts are
  /// summed, and the worker's first error (if any) becomes this context's
  /// error if it is still clean. When `op` is non-null the worker's totals
  /// are also bumped onto that per-operator slot, so per-op Theorem 4.2
  /// bound checks see the same numbers as a sequential run. The governor is
  /// NOT re-charged — governed fan-out goes through the charge-log/replay
  /// protocol (BeginChargeLog + ReplayWorker) instead, which reproduces the
  /// sequential trip sequence exactly.
  void AbsorbWorker(const ExecContext& worker, OpCounters* op = nullptr);

  // --- Charge-log mode (worker lanes of a governed fan-out) ---

  /// Puts this context into charge-log mode: metered charges are appended
  /// to charge_log() instead of probing a parent governor, fetches are
  /// served from a per-lane lease on `ledger`, and this context's own
  /// governor is armed with `time_limits` (deadline/cancel only — copied
  /// from the parent so all lanes share one clock). Per-op attribution is
  /// recorded by parent-op id only; the worker never writes parent
  /// OpCounters.
  void BeginChargeLog(SharedLedger* ledger, const GovernorLimits& time_limits);

  bool charge_log_active() const { return log_mode_; }
  const std::vector<ChargeEvent>& charge_log() const { return charge_log_; }

  /// True when this worker stopped early for a non-error reason: its lane
  /// lease ran dry or its local (time-only) governor tripped. A starved
  /// worker's log understates the sequential prefix, so the parent must
  /// discard log and output and re-execute the morsel sequentially.
  bool starved() const { return starved_; }

  /// Bumps `op->rows_out` by `n` — or, in charge-log mode, records the bump
  /// for the parent's replay so worker lanes never write parent counters.
  void ChargeOpRows(OpCounters* op, uint64_t n);

  /// Replays `worker`'s charge log into this context in recorded order,
  /// re-applying every event through this context's governor exactly as a
  /// sequential run would have: kLookup/kScan events charge fetches (and
  /// per-op counters via the logged op ids), kRows events bump rows_out.
  /// Stops applying governor probes once this context trips (remaining
  /// events still land in the totals of nothing — they are dropped, as the
  /// sequential walk would have stopped there). Afterwards, if this context
  /// is still clean, the worker's error (if any) is adopted.
  void ReplayWorker(const ExecContext& worker);

  /// Folds a worker's raw totals into the per-lane observability map
  /// (`lane` < 0 counts as lane 0, the inline caller lane). Purely
  /// observational: per-lane numbers reflect work attempted, including
  /// discarded morsels.
  void AccumulateLane(int lane, const ExecContext& worker);
  const std::map<int, uint64_t>& fetched_by_lane() const {
    return fetched_by_lane_;
  }
  const std::map<int, uint64_t>& lookups_by_lane() const {
    return lookups_by_lane_;
  }

  /// First error wins; operators stop producing once a context has failed.
  const Status& status() const { return status_; }
  bool ok() const { return status_.ok(); }
  void SetError(Status s);

  /// Registers a per-operator counter slot under `parent` (-1 = root); the
  /// pointer stays valid for the context's lifetime.
  OpCounters* NewOp(std::string label, int32_t parent = -1);
  const std::deque<OpCounters>& ops() const { return ops_; }

  /// Copy of the per-op counters, for callers that outlive the context
  /// (BoundedEvalStats, EXPLAIN rendering, bench sidecars).
  std::vector<OpCounters> SnapshotOps() const;

  /// Folds this context's totals into `registry` under `prefix` (e.g.
  /// prefix "exec." writes counters "exec.base_tuples_fetched",
  /// "exec.index_lookups", and "exec.fetched.<relation>").
  void ExportMetrics(obs::MetricsRegistry* registry,
                     const std::string& prefix) const;

  /// One-line accounting summary for logs and benches.
  std::string DebugString() const;

 private:
  void Charge(const std::string& relation, uint64_t tuples, OpCounters* op);
  /// Converts the governor's recorded trip into this context's first error.
  void RecordTrip();
  /// Charge-log mode: appends the event, keeps this worker's raw totals,
  /// and stops the lane (starved_) when its lease runs dry.
  void LogCharge(ChargeEvent::Kind kind, uint32_t relation_id, uint64_t tuples,
                 OpCounters* op);
  uint32_t InternLogRelation(const std::string& relation);

  const Database* db_ = nullptr;
  std::map<std::string, const Relation*> overrides_;
  ResourceGovernor governor_;
  uint64_t base_tuples_fetched_ = 0;
  uint64_t index_lookups_ = 0;
  std::map<std::string, uint64_t> fetched_by_relation_;
  std::deque<OpCounters> ops_;
  Status status_ = Status::OK();
  obs::Tracer* tracer_ = nullptr;
  obs::QueryId query_id_;
  bool timing_enabled_ = false;

  // Charge-log mode state (worker lanes of a governed fan-out).
  bool log_mode_ = false;
  bool starved_ = false;
  SubBudget lease_;
  std::vector<ChargeEvent> charge_log_;
  std::vector<std::string> log_relations_;
  std::map<std::string, uint32_t> log_relation_ids_;
  std::map<const uint64_t*, uint32_t> log_slot_ids_;

  // Per-lane observability (parent side of a governed fan-out).
  std::map<int, uint64_t> fetched_by_lane_;
  std::map<int, uint64_t> lookups_by_lane_;
};

/// Metered access primitives. Every component that touches base-relation
/// storage — the pull operators below, the Theorem 4.2 bounded executor, the
/// embedded-statement chase — fetches through one of these, so their charges
/// land in the same ExecContext counters and the bounded/unbounded paths
/// report comparable numbers.

/// Hash-index probe on `positions` (canonicalized by the relation) with
/// `key` in canonical position order. Charges one index lookup plus the
/// bucket size; returns the matching row ids or nullptr.
const std::vector<uint32_t>* MeteredIndexLookup(ExecContext* ctx,
                                                const std::string& name,
                                                const Relation& rel,
                                                const std::vector<size_t>& positions,
                                                const Tuple& key,
                                                OpCounters* op = nullptr);

/// Projection-index probe (embedded access statements): distinct
/// `value_positions` projections of the rows matching `key`. Charges one
/// index lookup plus the group size.
std::vector<Tuple> MeteredProjectionLookup(
    ExecContext* ctx, const std::string& name, const Relation& rel,
    const std::vector<size_t>& key_positions,
    const std::vector<size_t>& value_positions, const Tuple& key,
    OpCounters* op = nullptr);

/// Charges a full sequential pass over `rel` (the (R, ∅, N, T) access unit).
/// Counted as one lookup fetching |R| tuples, mirroring how the bounded
/// executor has always accounted whole-relation access.
void ChargeFullAccess(ExecContext* ctx, const std::string& name,
                      const Relation& rel, OpCounters* op = nullptr);

}  // namespace scalein::exec

#endif  // SCALEIN_EXEC_EXEC_CONTEXT_H_
