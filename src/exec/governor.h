#ifndef SCALEIN_EXEC_GOVERNOR_H_
#define SCALEIN_EXEC_GOVERNOR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "util/status.h"

namespace scalein::exec {

struct OpCounters;

/// Which run-time limit stopped an evaluation.
enum class LimitKind {
  kNone = 0,
  kFetchBudget,  ///< the paper's M: base tuples fetched exceeded the cap
  kDeadline,     ///< wall-clock deadline passed
  kOutputRows,   ///< emitted answer/row cap reached
  kCancelled,    ///< cooperative cancellation token fired
};

/// Canonical lowercase name ("fetch-budget", "deadline", ...).
const char* LimitKindName(LimitKind kind);

/// Cooperative cancellation handle. Copies share one flag, so a caller keeps
/// a token, hands copies to GovernorLimits, and flips it from any thread;
/// every engine checkpoint observes the flip at its next (amortized) check.
class CancellationToken {
 public:
  CancellationToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void Cancel() { flag_->store(true, std::memory_order_relaxed); }
  bool cancelled() const { return flag_->load(std::memory_order_relaxed); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// The run-time resource envelope of one evaluation — the operational form of
/// the paper's "capacity of our available resources". Zero values disable a
/// limit. `deadline_ns` (absolute, MonotonicNowNs clock) wins over
/// `deadline_ms` (relative to Arm time) when both are set; multi-evaluation
/// engines (incremental maintainers) pin an absolute deadline once so the
/// whole batch shares one clock.
struct GovernorLimits {
  uint64_t fetch_budget = 0;    ///< max base tuples fetched
  uint64_t deadline_ms = 0;     ///< wall-clock budget from Arm()
  uint64_t deadline_ns = 0;     ///< absolute monotonic deadline
  uint64_t output_row_cap = 0;  ///< max rows/answers emitted
  bool has_cancel = false;
  CancellationToken cancel;     ///< observed only when has_cancel

  bool any() const {
    return fetch_budget != 0 || deadline_ms != 0 || deadline_ns != 0 ||
           output_row_cap != 0 || has_cancel;
  }

  /// Resolves a relative deadline into an absolute one against the current
  /// clock (no-op when already absolute or unset). Call once before fanning
  /// the same limits out to several evaluations.
  GovernorLimits Pinned() const;
};

/// What tripped, where, and how far the evaluation got — the structured
/// payload a degraded (partial) result carries instead of a bare error.
struct TripInfo {
  LimitKind kind = LimitKind::kNone;
  std::string detail;        ///< human-readable limit description
  int32_t op_id = -1;        ///< tripping operator's ExecContext::ops() id
  std::string op_label;      ///< tripping operator's label, when known
  uint64_t fetched_at_trip = 0;

  bool tripped() const { return kind != LimitKind::kNone; }
  /// "deadline: wall-clock deadline of 50ms exceeded (at op scan(friend),
  /// 123 tuples fetched)"
  std::string ToString() const;
  /// The typed Status a tripped evaluation propagates on its error path:
  /// kFetchBudget/kOutputRows → ResourceExhausted, kDeadline →
  /// DeadlineExceeded, kCancelled → Cancelled.
  Status ToStatus() const;
};

/// Unified run-time limit enforcement, owned by ExecContext and consulted by
/// every engine: exec operators and the bounded derivation walk charge
/// fetches through ExecContext (which forwards here), drains charge emitted
/// rows, and non-fetching search loops (QDSI subset search, witness
/// branch-and-bound, ∆QSI update enumeration) call Checkpoint() directly.
///
/// Cost model: with no limits armed every probe is one predicted branch.
/// With limits armed, fetch/output caps are an integer compare; the clock
/// and the cancellation flag are only consulted every kCheckInterval probes
/// (amortized — a trip is detected at most 64 events late, never early).
/// The first limit to trip is recorded in trip() and sticks; all later
/// probes return false immediately.
class ResourceGovernor {
 public:
  static constexpr uint32_t kCheckInterval = 64;

  /// Installs `limits` and starts the deadline clock. Re-arming clears any
  /// recorded trip and emitted-row count.
  void Arm(const GovernorLimits& limits);

  const GovernorLimits& limits() const { return limits_; }
  bool tripped() const { return trip_.kind != LimitKind::kNone; }
  const TripInfo& trip() const { return trip_; }
  uint64_t rows_emitted() const { return rows_emitted_; }
  /// Last running fetch total seen by OnFetch; governed fan-out uses it to
  /// size the shared ledger from the budget still unspent at fan-out time.
  uint64_t last_fetched() const { return last_fetched_; }
  /// The absolute monotonic deadline Arm() resolved (0 = none). Worker-lane
  /// governors in a governed fan-out copy this so every lane shares the
  /// parent's clock.
  uint64_t resolved_deadline_ns() const { return deadline_ns_; }

  /// Probe after a fetch charge; `total_fetched` is the context's running
  /// total. Returns false when tripped (now or earlier).
  bool OnFetch(uint64_t total_fetched, OpCounters* op) {
    if (trip_.kind != LimitKind::kNone) return false;
    if (limits_.fetch_budget != 0 && total_fetched > limits_.fetch_budget) {
      last_fetched_ = total_fetched;
      return Trip(LimitKind::kFetchBudget, op);
    }
    last_fetched_ = total_fetched;
    return TimeOk(op);
  }

  /// Probe after emitting `n` rows from a drain/root. Returns false when
  /// tripped.
  bool OnOutput(uint64_t n, OpCounters* op) {
    if (trip_.kind != LimitKind::kNone) return false;
    rows_emitted_ += n;
    if (limits_.output_row_cap != 0 && rows_emitted_ > limits_.output_row_cap) {
      return Trip(LimitKind::kOutputRows, op);
    }
    return TimeOk(op);
  }

  /// Pure progress probe for loops that do work without fetching (witness
  /// search nodes, QDSI subset enumeration, chase steps). Returns false when
  /// tripped.
  bool Checkpoint(OpCounters* op = nullptr) {
    if (trip_.kind != LimitKind::kNone) return false;
    return TimeOk(op);
  }

 private:
  bool TimeOk(OpCounters* op) {
    if (!has_time_limits_) return true;
    if (--check_countdown_ != 0) return true;
    check_countdown_ = kCheckInterval;
    return TimeOkSlow(op);
  }
  /// Reads the monotonic clock / cancellation flag; trips when past due.
  bool TimeOkSlow(OpCounters* op);
  /// Records the first trip (kind, detail, tripping op); returns false.
  bool Trip(LimitKind kind, OpCounters* op);

  GovernorLimits limits_;
  TripInfo trip_;
  uint64_t deadline_ns_ = 0;  ///< resolved absolute deadline; 0 = none
  uint64_t rows_emitted_ = 0;
  uint64_t last_fetched_ = 0;
  uint32_t check_countdown_ = kCheckInterval;
  bool has_time_limits_ = false;
};

/// The shared side of a governed fan-out's fetch budget: the parent's
/// unspent budget plus a bounded per-lane overdraft, carved out by worker
/// lanes in chunks through SubBudget leases. Lanes that cannot acquire a
/// chunk are *starved* — they stop early and the parent re-executes their
/// morsel sequentially, so the overdraft never changes what the caller
/// observes; it only lets lanes that would have run within budget proceed
/// without a shared atomic on every charge.
class SharedLedger {
 public:
  /// `remaining` is the parent's unspent fetch budget at fan-out time.
  /// Capacity is `remaining` plus one lease chunk of slack per lane, so a
  /// lane holding the morsel that crosses the budget line can log a faithful
  /// prefix past it (the parent's replay re-applies the exact budget).
  void Init(uint64_t remaining, size_t lanes) {
    capacity_ = remaining + lanes * SubBudgetChunk();
    reserved_.store(0, std::memory_order_relaxed);
    unlimited_ = false;
  }

  /// True until Init() installs a finite budget (ledger on an unbudgeted
  /// fan-out: every Acquire is granted in full).
  bool unlimited() const { return unlimited_; }

  /// Grants up to `want` units; returns the amount granted, 0 when the
  /// ledger is exhausted.
  uint64_t Acquire(uint64_t want) {
    if (unlimited_) return want;
    uint64_t cur = reserved_.load(std::memory_order_relaxed);
    while (true) {
      if (cur >= capacity_) return 0;
      const uint64_t grant = want < capacity_ - cur ? want : capacity_ - cur;
      if (reserved_.compare_exchange_weak(cur, cur + grant,
                                          std::memory_order_relaxed)) {
        return grant;
      }
    }
  }

  /// Returns `n` previously Acquire()d units so later callers can reserve
  /// them — the envelope-lease refund path: a serve session reserves a
  /// query's static bound at admission and releases the unspent remainder
  /// at completion. No-op on an unlimited ledger; clamps at zero so a
  /// mismatched release can never underflow into a huge reservation.
  void Release(uint64_t n) {
    if (unlimited_ || n == 0) return;
    uint64_t cur = reserved_.load(std::memory_order_relaxed);
    while (true) {
      const uint64_t give = n < cur ? n : cur;
      if (reserved_.compare_exchange_weak(cur, cur - give,
                                          std::memory_order_relaxed)) {
        return;
      }
    }
  }

  /// Units currently reserved (for gauges; racy by nature).
  uint64_t Reserved() const { return reserved_.load(std::memory_order_relaxed); }

  static constexpr uint64_t SubBudgetChunk() { return 64; }

 private:
  std::atomic<uint64_t> reserved_{0};
  uint64_t capacity_ = 0;
  bool unlimited_ = true;
};

/// A worker lane's lease on a SharedLedger. Charges are served from the
/// locally leased amount; the shared atomic is touched only once per
/// kChunk units. Charge() returning false means the ledger is exhausted and
/// the lane must stop (its charge log is discarded and the morsel re-runs
/// in the parent).
class SubBudget {
 public:
  static constexpr uint64_t kChunk = SharedLedger::SubBudgetChunk();

  void Attach(SharedLedger* ledger) {
    ledger_ = ledger;
    leased_ = 0;
  }

  bool Charge(uint64_t n) {
    if (ledger_ == nullptr || ledger_->unlimited()) return true;
    while (leased_ < n) {
      const uint64_t want = n - leased_ > kChunk ? n - leased_ : kChunk;
      const uint64_t got = ledger_->Acquire(want);
      if (got == 0) return false;
      leased_ += got;
    }
    leased_ -= n;
    return true;
  }

 private:
  SharedLedger* ledger_ = nullptr;
  uint64_t leased_ = 0;
};

/// A structured partial result: what an engine produced before a governor
/// limit tripped (PIQL-style success tolerance — degrade, don't discard).
/// `complete` is true on a clean run (trip is then kNone and the value is
/// the full answer). For monotone engines the partial value is a genuine
/// subset of the full answer.
template <typename T>
struct Degraded {
  /// Default-constructible only when T is (answer sets are; Relation needs
  /// the value constructor below).
  Degraded() = default;
  explicit Degraded(T v) : value(std::move(v)) {}

  T value;
  bool complete = true;
  TripInfo trip;
  /// Per-operator counter snapshot at the trip (EXPLAIN ANALYZE input);
  /// captured on degraded results so the tripping operator is identifiable.
  std::vector<OpCounters> ops;
  uint64_t base_tuples_fetched = 0;
  uint64_t index_lookups = 0;
  /// Non-empty when a fallback engine produced `value` after the primary
  /// tripped (e.g. "approx" for the greedy budgeted CQ engine).
  std::string fallback;
};

}  // namespace scalein::exec

#endif  // SCALEIN_EXEC_GOVERNOR_H_
