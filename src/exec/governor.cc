#include "exec/governor.h"

#include "exec/exec_context.h"
#include "util/strings.h"

namespace scalein::exec {

const char* LimitKindName(LimitKind kind) {
  switch (kind) {
    case LimitKind::kNone:
      return "none";
    case LimitKind::kFetchBudget:
      return "fetch-budget";
    case LimitKind::kDeadline:
      return "deadline";
    case LimitKind::kOutputRows:
      return "output-rows";
    case LimitKind::kCancelled:
      return "cancelled";
  }
  return "?";
}

GovernorLimits GovernorLimits::Pinned() const {
  GovernorLimits pinned = *this;
  if (pinned.deadline_ns == 0 && pinned.deadline_ms != 0) {
    pinned.deadline_ns = obs::MonotonicNowNs() + pinned.deadline_ms * 1'000'000;
  }
  return pinned;
}

std::string TripInfo::ToString() const {
  if (kind == LimitKind::kNone) return "not tripped";
  std::string out = std::string(LimitKindName(kind)) + ": " + detail;
  out += " (";
  if (!op_label.empty()) out += "at op " + op_label + ", ";
  out += std::to_string(fetched_at_trip) + " tuples fetched)";
  return out;
}

Status TripInfo::ToStatus() const {
  switch (kind) {
    case LimitKind::kNone:
      return Status::OK();
    case LimitKind::kDeadline:
      return Status::DeadlineExceeded(ToString());
    case LimitKind::kCancelled:
      return Status::Cancelled(ToString());
    case LimitKind::kFetchBudget:
    case LimitKind::kOutputRows:
      return Status::ResourceExhausted(ToString());
  }
  return Status::Internal("unknown limit kind");
}

void ResourceGovernor::Arm(const GovernorLimits& limits) {
  limits_ = limits;
  trip_ = TripInfo{};
  rows_emitted_ = 0;
  last_fetched_ = 0;
  check_countdown_ = kCheckInterval;
  deadline_ns_ = limits_.deadline_ns;
  if (deadline_ns_ == 0 && limits_.deadline_ms != 0) {
    deadline_ns_ = obs::MonotonicNowNs() + limits_.deadline_ms * 1'000'000;
  }
  has_time_limits_ = deadline_ns_ != 0 || limits_.has_cancel;
}

bool ResourceGovernor::TimeOkSlow(OpCounters* op) {
  if (limits_.has_cancel && limits_.cancel.cancelled()) {
    return Trip(LimitKind::kCancelled, op);
  }
  if (deadline_ns_ != 0 && obs::MonotonicNowNs() > deadline_ns_) {
    return Trip(LimitKind::kDeadline, op);
  }
  return true;
}

bool ResourceGovernor::Trip(LimitKind kind, OpCounters* op) {
  trip_.kind = kind;
  trip_.fetched_at_trip = last_fetched_;
  if (op != nullptr) {
    trip_.op_id = op->id;
    trip_.op_label = op->label;
  }
  switch (kind) {
    case LimitKind::kFetchBudget:
      trip_.detail = "fetch budget of " + std::to_string(limits_.fetch_budget) +
                     " base tuples exceeded";
      break;
    case LimitKind::kDeadline:
      trip_.detail =
          limits_.deadline_ms != 0
              ? "wall-clock deadline of " + std::to_string(limits_.deadline_ms) +
                    "ms exceeded"
              : "wall-clock deadline exceeded";
      break;
    case LimitKind::kOutputRows:
      trip_.detail = "output cap of " + std::to_string(limits_.output_row_cap) +
                     " rows exceeded";
      break;
    case LimitKind::kCancelled:
      trip_.detail = "evaluation cancelled";
      break;
    case LimitKind::kNone:
      break;
  }
  return false;
}

}  // namespace scalein::exec
