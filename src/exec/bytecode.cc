#include "exec/bytecode.h"

#include <string>

namespace scalein::exec {
namespace {

std::string RegName(Reg r) {
  return r == kNoReg ? std::string("r?") : "r" + std::to_string(r);
}

std::string SlotText(const Slot& s, const CompiledProgram& p) {
  switch (s.kind) {
    case Slot::Kind::kConst:
      return p.consts[s.index].ToString();
    case Slot::Kind::kReg:
      return RegName(s.reg);
    case Slot::Kind::kUnset:
      return "_";
  }
  return "?";
}

std::string PositionsText(const std::vector<size_t>& positions) {
  std::string out = "[";
  for (size_t i = 0; i < positions.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(positions[i]);
  }
  return out + "]";
}

std::string RegListText(const std::vector<Reg>& regs) {
  std::string out = "[";
  for (size_t i = 0; i < regs.size(); ++i) {
    if (i > 0) out += ",";
    out += RegName(regs[i]);
  }
  return out + "]";
}

std::string UnifyText(const std::vector<UnifyStep>& steps,
                      const CompiledProgram& p) {
  std::string out = "(";
  for (size_t i = 0; i < steps.size(); ++i) {
    if (i > 0) out += " ";
    const UnifyStep& s = steps[i];
    out += std::to_string(i) + ":";
    switch (s.kind) {
      case UnifyStep::Kind::kCheckConst:
        out += "ck=" + p.consts[s.index].ToString();
        break;
      case UnifyStep::Kind::kCheckReg:
        out += "ck=" + RegName(s.reg);
        break;
      case UnifyStep::Kind::kBindLocal:
        out += "bind>l" + std::to_string(s.index);
        break;
      case UnifyStep::Kind::kCheckLocal:
        out += "ck=l" + std::to_string(s.index);
        break;
      case UnifyStep::Kind::kSkip:
        out += "skip";
        break;
      case UnifyStep::Kind::kBindReg:
        out += "bind>" + RegName(s.reg);
        break;
    }
  }
  return out + ")";
}

std::string OpRef(int32_t op_idx, const CompiledProgram& p) {
  if (op_idx < 0) return "op=-";
  return "op=" + std::to_string(op_idx) + ":" + p.ops[op_idx].label;
}

std::string LeafText(const LeafCode& leaf, const CompiledProgram& p) {
  if (leaf.is_condition) {
    std::string out = "COND " + OpRef(leaf.op_idx, p);
    out += " resolve{";
    for (size_t i = 0; i < leaf.cond_sources.size(); ++i) {
      if (i > 0) out += ",";
      out += "l" + std::to_string(i) + "=" + SlotText(leaf.cond_sources[i], p);
    }
    out += "} " + leaf.cond.ToString();
    if (!leaf.ext_regs.empty()) out += " ext>" + RegListText(leaf.ext_regs);
    return out;
  }
  std::string out =
      (leaf.full_scan ? "SCAN " : "PROBE ") + p.relations[leaf.relation];
  out += " " + OpRef(leaf.op_idx, p);
  if (!leaf.full_scan) {
    out += " key" + PositionsText(leaf.key_positions) + "=(";
    for (size_t i = 0; i < leaf.key.size(); ++i) {
      if (i > 0) out += ",";
      out += SlotText(leaf.key[i], p);
    }
    out += ")";
  }
  out += " unify" + UnifyText(leaf.unify, p);
  if (!leaf.ext_regs.empty()) out += " ext>" + RegListText(leaf.ext_regs);
  out += " CHARGE";  // probe + distinct-extension rows fold into this leaf
  return out;
}

std::string DoubleText(double d) {
  // Bounds are integral in practice; render without trailing zeros.
  if (d == static_cast<double>(static_cast<long long>(d))) {
    return std::to_string(static_cast<long long>(d));
  }
  return std::to_string(d);
}

}  // namespace

std::string CompiledProgram::Disassemble() const {
  std::string out;
  out += (kind == Kind::kPlain ? "plain" : "embedded");
  out += " bytecode: regs=" + std::to_string(num_regs) +
         " consts=" + std::to_string(consts.size()) +
         " ops=" + std::to_string(ops.size()) +
         " static_bound=" + DoubleText(static_bound) + "\n";
  std::string params_line = "  params:";
  for (const auto& [v, r] : param_regs) {
    params_line += " " + v.name() + ">" + RegName(r);
  }
  out += params_line + "\n";

  size_t pc = 0;
  auto line = [&](const std::string& text) {
    std::string num = std::to_string(pc++);
    while (num.size() < 2) num = "0" + num;
    out += "  " + num + "  " + text + "\n";
  };

  if (kind == Kind::kPlain) {
    for (const PlainStage& stage : stages) {
      switch (stage.kind) {
        case PlainStage::Kind::kExpand:
          line("EXPAND    " + LeafText(stage.leaf, *this));
          break;
        case PlainStage::Kind::kNegations: {
          line("NEGFILTER " + std::to_string(stage.negs.size()) + " checks");
          for (const LeafCode& neg : stage.negs) {
            out += "        ! " + LeafText(neg, *this) + "\n";
          }
          break;
        }
        case PlainStage::Kind::kFinalize:
          line("FINALIZE  " + OpRef(stage.op_idx, *this) + " layout=" +
               RegListText(stage.layout) + " CHARGE");
          break;
        case PlainStage::Kind::kExistsFinalize:
          line("PROJECT   " + OpRef(stage.op_idx, *this) + " layout=" +
               RegListText(stage.layout) + " CHARGE");
          break;
      }
    }
    line("EMIT      head=" + RegListText(head_regs) + " CHARGE output-cap");
    return out;
  }

  for (const AtomCode& atom : atoms) {
    std::string text = "CHASE     " + relations[atom.relation] + " " +
                       OpRef(atom.op_idx, *this) + " seed(";
    for (size_t i = 0; i < atom.seed.size(); ++i) {
      if (i > 0) text += ",";
      text += SlotText(atom.seed[i], *this);
    }
    text += ")";
    line(text);
    for (const ChaseStepCode& step : atom.steps) {
      out += "        . STEP key" + PositionsText(step.key_layout) + " val" +
             PositionsText(step.value_layout) + " CHARGE\n";
    }
    if (atom.needs_verification) {
      out += "        . VERIFY key" + PositionsText(atom.verify_positions) +
             " CHARGE\n";
    }
    out += "        . UNIFY " + UnifyText(atom.unify, *this) + "\n";
  }
  line("EMIT      head=" + RegListText(embed_head_regs) + " CHARGE output-cap");
  return out;
}

}  // namespace scalein::exec
