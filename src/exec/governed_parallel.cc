#include "exec/governed_parallel.h"

#include <deque>
#include <vector>

#include "par/worker_pool.h"

namespace scalein::exec {

Status GovernedParallelMorsels(
    ExecContext* parent, size_t morsels,
    const std::function<void(size_t, ExecContext*)>& run,
    const std::function<void(size_t)>& reexec,
    const std::function<void(size_t)>& commit) {
  par::WorkerPool& pool = par::WorkerPool::Global();
  const ResourceGovernor& gov = parent->governor();

  SharedLedger ledger;
  const uint64_t budget = gov.limits().fetch_budget;
  if (budget != 0) {
    const uint64_t fetched = parent->base_tuples_fetched();
    ledger.Init(budget > fetched ? budget - fetched : 0, pool.threads());
  }

  // Lanes share the parent's resolved clock and cancellation flag; the
  // fetch budget lives in the ledger and the output cap is parent-only.
  GovernorLimits lane_limits;
  lane_limits.deadline_ns = gov.resolved_deadline_ns();
  lane_limits.has_cancel = gov.limits().has_cancel;
  lane_limits.cancel = gov.limits().cancel;

  std::deque<ExecContext> workers;
  for (size_t m = 0; m < morsels; ++m) {
    ExecContext& w = workers.emplace_back(parent->db());
    w.set_tracer(nullptr);  // accounting only; spans stay with the parent
    w.BeginChargeLog(&ledger, lane_limits);
  }

  std::vector<int> lanes(morsels, -1);
  pool.ParallelFor(morsels, [&](size_t m) {
    lanes[m] = par::CurrentLane();
    run(m, &workers[m]);
  });

  for (size_t m = 0; m < morsels; ++m) {
    parent->AccumulateLane(lanes[m], workers[m]);
    if (!parent->ok()) continue;  // trip/error recorded earlier: discard
    if (workers[m].starved()) {
      reexec(m);
    } else {
      parent->ReplayWorker(workers[m]);
      if (parent->ok()) commit(m);
    }
  }
  return parent->status();
}

}  // namespace scalein::exec
