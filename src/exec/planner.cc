#include "exec/planner.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <utility>

#include "obs/flight_recorder.h"
#include "obs/trace.h"

namespace scalein::exec {
namespace {

size_t PositionOf(const std::vector<std::string>& attrs,
                  const std::string& name) {
  auto it = std::find(attrs.begin(), attrs.end(), name);
  SI_CHECK_MSG(it != attrs.end(), name.c_str());
  return static_cast<size_t>(it - attrs.begin());
}

/// A select/project/rename tower over one base relation, collapsed: output
/// column i of the subtree is base position `out_to_base[i]`, and `conds`
/// holds every selection conjunct rewritten to base positions.
struct AccessPath {
  std::string name;
  const Relation* rel = nullptr;  // nullptr: unknown relation, empty result
  size_t base_arity = 0;
  std::vector<size_t> out_to_base;
  CompiledCondition conds;
};

std::optional<AccessPath> ResolveAccessPath(const RaExpr& expr,
                                            ExecContext* ctx) {
  switch (expr.kind()) {
    case RaExpr::Kind::kRelation: {
      AccessPath ap;
      ap.name = expr.relation_name();
      ap.rel = ctx->Resolve(ap.name);
      ap.base_arity = expr.attributes().size();
      if (ap.rel != nullptr) SI_CHECK_EQ(ap.rel->arity(), ap.base_arity);
      ap.out_to_base.resize(ap.base_arity);
      for (size_t i = 0; i < ap.base_arity; ++i) ap.out_to_base[i] = i;
      return ap;
    }
    case RaExpr::Kind::kRename:
      // Renaming changes names only; positions pass through.
      return ResolveAccessPath(expr.input(), ctx);
    case RaExpr::Kind::kProject: {
      std::optional<AccessPath> child = ResolveAccessPath(expr.input(), ctx);
      if (!child.has_value()) return std::nullopt;
      const std::vector<std::string>& in_attrs = expr.input().attributes();
      std::vector<size_t> out;
      out.reserve(expr.projection().size());
      for (const std::string& a : expr.projection()) {
        out.push_back(child->out_to_base[PositionOf(in_attrs, a)]);
      }
      child->out_to_base = std::move(out);
      return child;
    }
    case RaExpr::Kind::kSelect: {
      std::optional<AccessPath> child = ResolveAccessPath(expr.input(), ctx);
      if (!child.has_value()) return std::nullopt;
      CompiledCondition local =
          CompiledCondition::Compile(expr.condition(), expr.input().attributes());
      for (CompiledAtom& a : local.atoms) {
        a.lhs = child->out_to_base[a.lhs];
        if (a.rhs_is_attr) a.rhs_pos = child->out_to_base[a.rhs_pos];
        child->conds.atoms.push_back(std::move(a));
      }
      return child;
    }
    default:
      return std::nullopt;
  }
}

bool IsIdentity(const std::vector<size_t>& out_to_base, size_t base_arity) {
  if (out_to_base.size() != base_arity) return false;
  for (size_t i = 0; i < base_arity; ++i) {
    if (out_to_base[i] != i) return false;
  }
  return true;
}

/// Constant-equality pins from `conds`: position -> constant, first wins.
std::map<size_t, Value> ConstPins(const CompiledCondition& conds) {
  std::map<size_t, Value> pins;
  for (const CompiledAtom& a : conds.atoms) {
    if (a.negated || a.rhs_is_attr) continue;
    pins.emplace(a.lhs, a.rhs_const);
  }
  return pins;
}

std::unique_ptr<Operator> PlanAccessPath(const AccessPath& ap,
                                         ExecContext* ctx) {
  if (ap.rel == nullptr) return std::make_unique<EmptyOp>(ctx);

  std::map<size_t, Value> pins = ConstPins(ap.conds);
  bool all_const_eq = true;
  std::set<size_t> cond_positions;
  for (const CompiledAtom& a : ap.conds.atoms) {
    if (a.negated || a.rhs_is_attr) all_const_eq = false;
    if (!cond_positions.insert(a.lhs).second) all_const_eq = false;  // dup pos
  }

  if (!pins.empty()) {
    std::vector<size_t> key_positions;
    Tuple key;
    key_positions.reserve(pins.size());
    key.reserve(pins.size());
    for (const auto& [p, v] : pins) {  // std::map: already sorted, unique
      key_positions.push_back(p);
      key.push_back(v);
    }
    // Embedded-statement shape π_Y(σ_{X=ā}(R)): serve the distinct
    // projections straight from the ProjectionIndex.
    std::set<size_t> out_set(ap.out_to_base.begin(), ap.out_to_base.end());
    if (all_const_eq && out_set.size() == ap.out_to_base.size() &&
        ap.out_to_base.size() < ap.base_arity) {
      std::vector<size_t> canonical(out_set.begin(), out_set.end());
      std::vector<size_t> remap;
      remap.reserve(ap.out_to_base.size());
      for (size_t p : ap.out_to_base) {
        remap.push_back(static_cast<size_t>(
            std::lower_bound(canonical.begin(), canonical.end(), p) -
            canonical.begin()));
      }
      return std::make_unique<ProjectionLookupOp>(
          ctx, ap.name, ap.rel, key_positions, canonical, key, remap);
    }
    std::unique_ptr<Operator> op = std::make_unique<IndexLookupOp>(
        ctx, ap.name, ap.rel, key_positions, key);
    // Conjuncts beyond the key (attr=attr, ≠, duplicate pins) run as a
    // residual filter over the base row.
    if (!all_const_eq || cond_positions.size() != pins.size()) {
      op = std::make_unique<FilterOp>(ctx, std::move(op), ap.conds);
    }
    if (!IsIdentity(ap.out_to_base, ap.base_arity)) {
      op = std::make_unique<ProjectOp>(ctx, std::move(op), ap.out_to_base);
    }
    return op;
  }

  std::unique_ptr<Operator> op =
      std::make_unique<ScanOp>(ctx, ap.name, ap.rel);
  if (!ap.conds.atoms.empty()) {
    op = std::make_unique<FilterOp>(ctx, std::move(op), ap.conds);
  }
  if (!IsIdentity(ap.out_to_base, ap.base_arity)) {
    op = std::make_unique<ProjectOp>(ctx, std::move(op), ap.out_to_base);
  }
  return op;
}

std::vector<size_t> AlignRightToLeft(const RaExpr& expr) {
  // align[i] = position in right attrs of left attr i.
  const std::vector<std::string>& lattrs = expr.left().attributes();
  const std::vector<std::string>& rattrs = expr.right().attributes();
  std::vector<size_t> align;
  align.reserve(lattrs.size());
  for (const std::string& a : lattrs) align.push_back(PositionOf(rattrs, a));
  return align;
}

std::unique_ptr<Operator> PlanJoin(const RaExpr& expr, ExecContext* ctx) {
  const std::vector<std::string>& lattrs = expr.left().attributes();
  const std::vector<std::string>& rattrs = expr.right().attributes();
  AttrSet lset(lattrs.begin(), lattrs.end());
  std::vector<size_t> l_shared;
  std::vector<size_t> r_shared;
  std::vector<size_t> r_extra;
  for (size_t rp = 0; rp < rattrs.size(); ++rp) {
    if (lset.count(rattrs[rp])) {
      r_shared.push_back(rp);
      l_shared.push_back(PositionOf(lattrs, rattrs[rp]));
    } else {
      r_extra.push_back(rp);
    }
  }

  Plan left = PlanRa(expr.left(), ctx);

  std::optional<AccessPath> path = ResolveAccessPath(expr.right(), ctx);
  if (path.has_value()) {
    if (path->rel == nullptr) return std::make_unique<EmptyOp>(ctx);
    // Probe columns: shared attributes keyed from the left row, plus any
    // constant-pinned base positions from pushed-down selections.
    std::vector<std::pair<size_t, IndexJoinOp::KeySource>> entries;
    std::set<size_t> probed;
    for (size_t i = 0; i < r_shared.size(); ++i) {
      size_t base_pos = path->out_to_base[r_shared[i]];
      if (!probed.insert(base_pos).second) continue;
      IndexJoinOp::KeySource s;
      s.from_left = true;
      s.left_col = l_shared[i];
      entries.emplace_back(base_pos, std::move(s));
    }
    for (const auto& [p, v] : ConstPins(path->conds)) {
      if (!probed.insert(p).second) continue;
      IndexJoinOp::KeySource s;
      s.constant = v;
      entries.emplace_back(p, std::move(s));
    }
    if (!entries.empty()) {
      std::sort(entries.begin(), entries.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      std::vector<size_t> positions;
      std::vector<IndexJoinOp::KeySource> sources;
      positions.reserve(entries.size());
      sources.reserve(entries.size());
      for (auto& [p, s] : entries) {
        positions.push_back(p);
        sources.push_back(std::move(s));
      }
      std::vector<size_t> emits;
      emits.reserve(r_extra.size());
      for (size_t rp : r_extra) emits.push_back(path->out_to_base[rp]);
      return std::make_unique<IndexJoinOp>(
          ctx, path->name, path->rel, std::move(left.root),
          std::move(positions), std::move(sources), path->conds,
          std::move(emits));
    }
    // No probe columns (pure cartesian against a base relation): fall
    // through to a hash join, which materializes the right side once
    // instead of rescanning it per left row.
  }

  Plan right = PlanRa(expr.right(), ctx);
  return std::make_unique<HashJoinOp>(ctx, std::move(left.root),
                                      std::move(right.root), l_shared,
                                      r_shared, r_extra);
}

}  // namespace

Plan PlanRa(const RaExpr& expr, ExecContext* ctx) {
  // Recursive calls nest, so an installed tracer sees planning as a flame
  // graph of the expression tree; with no tracer the span is a null check.
  obs::ScopedSpan span(ctx->tracer(), "plan.ra", "plan");
  Plan plan;
  plan.attributes = expr.attributes();
  std::optional<AccessPath> path = ResolveAccessPath(expr, ctx);
  if (path.has_value()) {
    plan.root = PlanAccessPath(*path, ctx);
    return plan;
  }
  switch (expr.kind()) {
    case RaExpr::Kind::kUnion: {
      Plan left = PlanRa(expr.left(), ctx);
      Plan right = PlanRa(expr.right(), ctx);
      plan.root = std::make_unique<UnionOp>(
          ctx, std::move(left.root), std::move(right.root),
          AlignRightToLeft(expr));
      return plan;
    }
    case RaExpr::Kind::kDiff: {
      Plan left = PlanRa(expr.left(), ctx);
      Plan right = PlanRa(expr.right(), ctx);
      plan.root = std::make_unique<DiffOp>(
          ctx, std::move(left.root), std::move(right.root),
          AlignRightToLeft(expr));
      return plan;
    }
    case RaExpr::Kind::kJoin:
      plan.root = PlanJoin(expr, ctx);
      return plan;
    case RaExpr::Kind::kSelect:
    case RaExpr::Kind::kProject:
    case RaExpr::Kind::kRename: {
      // Tower over a non-access-path input (e.g. σ over a join): plan the
      // input, then apply the operation row-at-a-time.
      Plan input = PlanRa(expr.input(), ctx);
      switch (expr.kind()) {
        case RaExpr::Kind::kSelect:
          plan.root = std::make_unique<FilterOp>(
              ctx, std::move(input.root),
              CompiledCondition::Compile(expr.condition(), input.attributes));
          return plan;
        case RaExpr::Kind::kProject: {
          std::vector<size_t> positions;
          positions.reserve(expr.projection().size());
          for (const std::string& a : expr.projection()) {
            positions.push_back(PositionOf(input.attributes, a));
          }
          plan.root = std::make_unique<ProjectOp>(ctx, std::move(input.root),
                                                positions);
          return plan;
        }
        default:  // kRename: names only
          plan.root = std::move(input.root);
          return plan;
      }
    }
    default:
      break;
  }
  SI_CHECK(false);
  return plan;
}

CqPlan PlanCq(const Cq& q, ExecContext* ctx) {
  obs::ScopedSpan span(ctx->tracer(), "plan.cq", "plan");
  const std::vector<CqAtom>& atoms = q.atoms();
  if (obs::FlightRecorderEnabled()) {
    // Fingerprint over the atom relation sequence — cheap to build and
    // stable for a given query shape. (PlanRa recurses per node, so the
    // plan event lives here and in the shell, not inside PlanRa.)
    std::string shape;
    for (const CqAtom& atom : atoms) {
      shape += atom.relation;
      shape += '/';
      shape += std::to_string(atom.args.size());
      shape += ';';
    }
    obs::RecordFlightEvent(
        obs::EventKind::kPlan, obs::Fingerprint(shape),
        {obs::EventArg("engine", "plan.cq"),
         obs::EventArg("atoms", static_cast<uint64_t>(atoms.size()))});
  }
  CqPlan plan;
  std::unique_ptr<Operator> root = std::make_unique<ConstRowOp>(ctx);
  std::map<Variable, size_t> col_of;
  std::vector<bool> done(atoms.size(), false);

  for (size_t step = 0; step < atoms.size(); ++step) {
    // Most bound argument positions first; ties by smaller relation, then
    // lowest index (CqEvaluator's dynamic heuristic, computed statically).
    size_t best = atoms.size();
    int best_score = -1;
    size_t best_size = 0;
    for (size_t i = 0; i < atoms.size(); ++i) {
      if (done[i]) continue;
      int score = 0;
      for (const Term& t : atoms[i].args) {
        if (t.is_const() || col_of.count(t.var())) ++score;
      }
      const Relation* rel = ctx->Resolve(atoms[i].relation);
      size_t size = rel == nullptr ? 0 : rel->size();
      if (score > best_score || (score == best_score && size < best_size)) {
        best = i;
        best_score = score;
        best_size = size;
      }
    }
    SI_CHECK_LT(best, atoms.size());
    done[best] = true;
    const CqAtom& atom = atoms[best];
    const Relation* rel = ctx->Resolve(atom.relation);
    if (rel == nullptr || rel->arity() != atom.args.size()) {
      plan.root = std::make_unique<EmptyOp>(ctx);
      return plan;
    }

    std::vector<size_t> positions;
    std::vector<IndexJoinOp::KeySource> sources;
    CompiledCondition residual;
    std::vector<size_t> emits;
    std::map<Variable, size_t> first_pos;  // new vars' first position in atom
    for (size_t p = 0; p < atom.args.size(); ++p) {
      const Term& t = atom.args[p];
      IndexJoinOp::KeySource s;
      if (t.is_const()) {
        s.constant = t.constant();
        positions.push_back(p);
        sources.push_back(std::move(s));
        continue;
      }
      auto bound = col_of.find(t.var());
      if (bound != col_of.end()) {
        s.from_left = true;
        s.left_col = bound->second;
        positions.push_back(p);
        sources.push_back(std::move(s));
        continue;
      }
      auto seen = first_pos.find(t.var());
      if (seen != first_pos.end()) {
        // Repeated fresh variable within the atom: base-row equality.
        CompiledAtom eq;
        eq.lhs = p;
        eq.rhs_is_attr = true;
        eq.rhs_pos = seen->second;
        residual.atoms.push_back(std::move(eq));
        continue;
      }
      first_pos.emplace(t.var(), p);
      emits.push_back(p);
    }
    for (const auto& [v, p] : first_pos) {
      // Column index = left width + rank of p among emits.
      size_t rank = static_cast<size_t>(
          std::lower_bound(emits.begin(), emits.end(), p) - emits.begin());
      col_of.emplace(v, plan.columns.size() + rank);
    }
    // Record new columns in emit order.
    std::vector<std::pair<size_t, Variable>> ordered;
    for (const auto& [v, p] : first_pos) ordered.emplace_back(p, v);
    std::sort(ordered.begin(), ordered.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (auto& [p, v] : ordered) plan.columns.push_back(v);

    root = std::make_unique<IndexJoinOp>(ctx, atom.relation, rel,
                                         std::move(root), std::move(positions),
                                         std::move(sources),
                                         std::move(residual), std::move(emits));
  }
  plan.root = std::move(root);
  return plan;
}

Relation DrainToRelation(Operator* op, size_t arity) {
  Relation out(arity);
  op->Open();
  Tuple row;
  while (op->Next(&row)) {
    // The row that trips the output cap is not part of the answer.
    if (!op->context()->ChargeOutput(1, op->counters())) break;
    out.Insert(row);
  }
  return out;
}

Degraded<Relation> DrainToRelationDegraded(Operator* op, size_t arity) {
  Degraded<Relation> result(DrainToRelation(op, arity));
  ExecContext* ctx = op->context();
  result.base_tuples_fetched = ctx->base_tuples_fetched();
  result.index_lookups = ctx->index_lookups();
  if (ctx->trip().tripped()) {
    result.complete = false;
    result.trip = ctx->trip();
    result.ops = ctx->SnapshotOps();
  }
  return result;
}

}  // namespace scalein::exec
