#ifndef SCALEIN_EXEC_VM_H_
#define SCALEIN_EXEC_VM_H_

#include <vector>

#include "core/bounded_eval.h"
#include "eval/answer_set.h"
#include "exec/bytecode.h"
#include "exec/exec_context.h"
#include "exec/governor.h"
#include "relational/database.h"
#include "util/status.h"

namespace scalein::exec {

/// Register-bytecode executor for compiled bounded plans (exec/compiler.h).
///
/// Drop-in twin of core's BoundedEvaluator for programs the compiler
/// accepted: same entry points, same limits/enforcement/timing knobs, and —
/// the contract everything else hangs off — the *identical* sequence of
/// metered charges against an identically-registered op table. Answers,
/// fetch totals, per-relation/per-op accounting, TripInfo, and sealed access
/// certificates are byte-equal to the interpreter at any thread count; wide
/// frontiers fan out through the same governed morsel protocol
/// (exec/governed_parallel.h) with the same thresholds and splits.
///
/// What the compiled path removes is the interpreter's per-tuple data
/// structures: frontiers are flat register rows instead of
/// std::map<Variable, Value> bindings, unification is a fused step loop
/// (computed-goto dispatch where the compiler supports it) instead of map
/// probes, and set semantics are recovered by sort+unique over fixed-width
/// rows. Timing capture (`set_collect_timing`) remains supported but
/// per-node wall times are *approximate* on the compiled path (wrapper ops
/// share one start clock); timing never feeds certificates or accounting.
class CompiledEvaluator {
 public:
  explicit CompiledEvaluator(Database* db) : db_(db) {}

  /// Mirrors BoundedEvaluator::set_enforce_bounds: any access returning more
  /// rows than its statement's N fails with ResourceExhausted.
  void set_enforce_bounds(bool enforce) { enforce_bounds_ = enforce; }

  void set_fetch_budget(uint64_t budget) { limits_.fetch_budget = budget; }

  /// Per-evaluation resource envelope, armed on each evaluation's fresh
  /// ExecContext — exactly like the interpreter.
  void set_limits(const GovernorLimits& limits) { limits_ = limits; }
  const GovernorLimits& limits() const { return limits_; }

  void set_collect_timing(bool collect) { collect_timing_ = collect; }

  /// Executes a kPlain program. `params` must bind exactly the parameter
  /// set the program was compiled for.
  Result<AnswerSet> Evaluate(const CompiledProgram& program,
                             const Binding& params,
                             BoundedEvalStats* stats = nullptr) const;

  /// Degradation-aware kPlain execution: a governor trip returns the partial
  /// answer set with the trip record and op snapshot, like
  /// BoundedEvaluator::EvaluateDegraded.
  Result<Degraded<AnswerSet>> EvaluateDegraded(
      const CompiledProgram& program, const Binding& params,
      BoundedEvalStats* stats = nullptr) const;

  /// Batch kPlain execution on the global worker pool; results in input
  /// order, stats merged in input order.
  std::vector<Result<AnswerSet>> EvaluateBatch(
      const CompiledProgram& program, const std::vector<Binding>& batch,
      BoundedEvalStats* stats = nullptr) const;

  /// Executes a kEmbedded program (Proposition 4.5 chase).
  Result<AnswerSet> EvaluateEmbedded(const CompiledProgram& program,
                                     const Binding& params,
                                     BoundedEvalStats* stats = nullptr) const;

  std::vector<Result<AnswerSet>> EvaluateEmbeddedBatch(
      const CompiledProgram& program, const std::vector<Binding>& batch,
      BoundedEvalStats* stats = nullptr) const;

  /// Degradation-aware kEmbedded execution, with the same optional
  /// approx-engine fallback as the interpreter.
  Result<Degraded<AnswerSet>> EvaluateEmbeddedDegraded(
      const CompiledProgram& program, const Binding& params,
      BoundedEvalStats* stats = nullptr, bool fallback_to_approx = false) const;

 private:
  Result<AnswerSet> EvaluateEmbeddedImpl(const CompiledProgram& program,
                                         const Binding& params,
                                         ExecContext* ctx,
                                         bool capture_ops) const;

  Database* db_;
  bool enforce_bounds_ = false;
  GovernorLimits limits_;
  bool collect_timing_ = false;
};

/// Builds every index `program` can probe (plain leaves or embedded chase
/// steps + verification), so parallel execution only ever finds them —
/// the compiled counterpart of the interpreter's Prebuild* helpers.
void PrebuildCompiledIndexes(const Database& db, const CompiledProgram& program);

}  // namespace scalein::exec

#endif  // SCALEIN_EXEC_VM_H_
