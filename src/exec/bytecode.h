#ifndef SCALEIN_EXEC_BYTECODE_H_
#define SCALEIN_EXEC_BYTECODE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/access_schema.h"
#include "query/cq.h"
#include "query/formula.h"
#include "query/term.h"
#include "relational/value.h"

namespace scalein::exec {

/// Register index into a compiled plan's frontier row. The frontier of a
/// compiled bounded evaluation is a flat array of rows, each `num_regs`
/// Values wide, with one register per query variable the plan can bind —
/// replacing the interpreter's per-partial std::map<Variable, Value>
/// Bindings on the hot path.
using Reg = uint16_t;
constexpr Reg kNoReg = 0xFFFF;

/// Where a compiled slot's value comes from at run time.
struct Slot {
  enum class Kind : uint8_t {
    kConst,  ///< CompiledProgram::consts[index]
    kReg,    ///< frontier register `reg`
    kUnset,  ///< embedded chase seed: position starts unbound
  };
  Kind kind = Kind::kUnset;
  uint16_t index = 0;  ///< constant-pool slot (kConst)
  Reg reg = kNoReg;    ///< frontier register (kReg)
};

/// One per-argument-position action while consuming a fetched row — the
/// register form of the interpreter's unification loops (PlainExecutor's
/// `consume`, the embedded chase's assignment extension). Executed in
/// position order; any failed check rejects the row, exactly like the
/// interpreter's early returns.
struct UnifyStep {
  enum class Kind : uint8_t {
    kCheckConst,  ///< row[pos] must equal consts[index]
    kCheckReg,    ///< row[pos] must equal frontier register `reg`
    kBindLocal,   ///< first occurrence of a new variable: local[index] = row[pos]
    kCheckLocal,  ///< repeated new variable: row[pos] must equal local[index]
    kSkip,        ///< embedded unify: constant position, no comparison
    kBindReg,     ///< embedded unify: bind row[pos] into register `reg`
  };
  Kind kind = Kind::kSkip;
  uint16_t index = 0;  ///< constant-pool / local-extension slot
  Reg reg = kNoReg;    ///< frontier register
};

/// Resolution of one free variable of a compiled condition formula: read
/// from a frontier register or from the visit's local extension buffer.
struct CondVar {
  uint32_t var_id = 0;  ///< Variable::id()
  bool local = false;   ///< false: frontier register; true: local ext slot
  uint16_t index = 0;   ///< local slot (local)
  Reg reg = kNoReg;     ///< frontier register (!local)
};

/// A compiled leaf of a plain §4 derivation: one metered atom probe or one
/// condition evaluation. One leaf visit replicates one interpreter
/// Eval(node, opt, env) call on that leaf — same metered charges in the
/// same order, same distinct-extension count charged to the same op.
struct LeafCode {
  bool is_condition = false;
  int32_t op_idx = -1;  ///< index into CompiledProgram::ops; -1 when unregistered

  // --- rule "atom" ---
  uint32_t relation = 0;  ///< index into CompiledProgram::relations
  /// Access statement backing the probe (enforce-bounds N and message text).
  const AccessStatement* access = nullptr;
  bool full_scan = false;  ///< key positions empty: the (R, ∅, N, T) unit
  std::vector<size_t> key_positions;  ///< canonical (sorted, deduplicated)
  std::vector<Slot> key;              ///< value source per key position
  std::vector<UnifyStep> unify;       ///< one per atom argument position

  // --- rule "condition" ---
  Formula cond = Formula::True();
  /// Sources for the condition's determined extension variables (the
  /// condition_resolve entries not bound by the environment), in variable-id
  /// order — one per local extension slot.
  std::vector<Slot> cond_sources;
  /// Free-variable resolution for evaluating `cond` over registers/locals.
  std::vector<CondVar> cond_vars;

  // --- common ---
  uint16_t ext_width = 0;     ///< number of new variables this leaf binds
  std::vector<Reg> ext_regs;  ///< frontier destination per local slot
                              ///< (variable-id order); empty for negations
};

/// One stage of a compiled plain program. A program is a straight-line
/// sequence of stages over one frontier row buffer:
///   kExpand*  [kNegations]  kFinalize  kExistsFinalize*
/// lowered from the supported option-tree shape
///   exists* ( and(leaf+; leaf*) | leaf ).
struct PlainStage {
  enum class Kind : uint8_t {
    kExpand,          ///< expand every frontier row through one positive leaf
    kNegations,       ///< filter rows through the safe negation leaves
    kFinalize,        ///< sort + dedup on `layout`, charge the "and" op
    kExistsFinalize,  ///< project to `layout`, dedup, charge the "exists" op
  };
  Kind kind = Kind::kExpand;
  LeafCode leaf;               ///< kExpand
  std::vector<LeafCode> negs;  ///< kNegations
  int32_t op_idx = -1;         ///< kFinalize / kExistsFinalize owner op
  /// Registers of the stage's binding domain in variable-id order — the
  /// comparison layout replicating std::set<Binding> order and dedup.
  std::vector<Reg> layout;
};

/// One embedded chase step inside a compiled atom (Proposition 4.5).
struct ChaseStepCode {
  const AccessStatement* statement = nullptr;
  std::vector<size_t> key_positions;    ///< original order, as the plan names them
  std::vector<size_t> value_positions;  ///< original order
  std::vector<size_t> key_layout;       ///< canonical (the projection index's)
  std::vector<size_t> value_layout;     ///< canonical
};

/// One compiled atom of an embedded chase plan.
struct AtomCode {
  uint32_t relation = 0;  ///< index into CompiledProgram::relations
  int32_t op_idx = -1;    ///< "chase(R)" op prototype index
  size_t arity = 0;
  std::vector<Slot> seed;  ///< per position: constant / register / unset
  std::vector<ChaseStepCode> steps;
  bool needs_verification = false;
  const AccessStatement* verify_statement = nullptr;
  std::vector<size_t> verify_positions;  ///< canonical verification key
  std::vector<UnifyStep> unify;          ///< kSkip / kCheckReg / kBindReg
};

/// Prototype of one per-op counter slot, registered into a fresh ExecContext
/// in table order — reproducing the interpreter's RegisterOps pre-order so
/// op ids, labels, parents, and static bounds are identical.
struct OpProto {
  std::string label;
  int32_t parent = -1;  ///< index into the prototype table; -1 for the root
  double static_bound = -1.0;
};

/// An index the plan can probe, prebuilt before any parallel section
/// (Ensure* is a const-but-mutating cache fill).
struct PrebuildIndex {
  uint32_t relation = 0;
  std::vector<size_t> positions;  ///< canonical hash-index key; empty = none
};

/// A bounded plan lowered to register bytecode: everything the VM
/// (exec/vm.h) needs to execute the derivation with the exact metered-access
/// sequence of the interpreter, minus the per-tuple map/set allocations.
/// Immutable once built; shared across sessions via the AnalysisCache entry
/// it is attached to. Pointers into the access schema / analysis stay valid
/// through `keepalive`.
struct CompiledProgram {
  enum class Kind : uint8_t { kPlain, kEmbedded };
  Kind kind = Kind::kPlain;

  // --- common ---
  uint16_t num_regs = 0;
  std::vector<Value> consts;
  std::vector<std::string> relations;
  std::vector<OpProto> ops;
  VarSet params;  ///< the parameter set the program was compiled for
  std::vector<std::pair<Variable, Reg>> param_regs;  ///< seed from the binding
  double static_bound = 0;  ///< the derivation's Theorem 4.2 / Prop 4.5 M
  std::vector<PrebuildIndex> prebuilds;  ///< hash indexes (plain leaves)

  // --- plain ---
  std::vector<PlainStage> stages;
  std::vector<Reg> final_layout;  ///< result binding domain, id-sorted
  std::vector<Reg> head_regs;     ///< open head variables in head order

  // --- embedded ---
  std::vector<AtomCode> atoms;
  Cq embed_query;                  ///< for the approx fallback + head shape
  std::vector<Reg> embed_head_regs;  ///< open head positions in head order

  /// Keeps the analysis (and through it the access schema entries the
  /// compiled statement pointers reference) alive as long as the program.
  std::shared_ptr<const void> keepalive;

  /// Human-readable listing (EXPLAIN's `compiled:` section, docs/bytecode.md
  /// format): one line per stage/opcode with registers and charge targets.
  std::string Disassemble() const;
};

}  // namespace scalein::exec

#endif  // SCALEIN_EXEC_BYTECODE_H_
