#include "exec/exec_context.h"

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/failpoint.h"

namespace scalein::exec {

ExecContext::ExecContext()
    : tracer_(obs::Tracer::Global()), query_id_(obs::CurrentQueryId()) {}

ExecContext::ExecContext(const Database* db)
    : db_(db), tracer_(obs::Tracer::Global()), query_id_(obs::CurrentQueryId()) {}

const Relation* ExecContext::Resolve(const std::string& name) const {
  auto it = overrides_.find(name);
  if (it != overrides_.end()) return it->second;
  if (db_ == nullptr) return nullptr;
  return db_->FindRelation(name);
}

void ExecContext::RecordTrip() {
  if (!status_.ok() || !governor_.tripped()) return;
  if (log_mode_) {
    // Worker-local (time-only) trip: this lane's log understates the
    // sequential prefix, so mark it starved and stop quietly; the parent
    // re-executes the morsel and records the authoritative trip itself.
    starved_ = true;
    status_ = governor_.trip().ToStatus();
    return;
  }
  status_ = governor_.trip().ToStatus();
  if (obs::FlightRecorderEnabled()) {
    const TripInfo& trip = governor_.trip();
    obs::RecordFlightEvent(
        obs::EventKind::kGovernorTrip, LimitKindName(trip.kind),
        {obs::EventArg("detail", trip.ToString()),
         obs::EventArg("fetched", base_tuples_fetched_)});
  }
}

void ExecContext::Charge(const std::string& relation, uint64_t tuples,
                         OpCounters* op) {
  base_tuples_fetched_ += tuples;
  fetched_by_relation_[relation] += tuples;
  if (!governor_.OnFetch(base_tuples_fetched_, op)) RecordTrip();
}

uint64_t* ExecContext::RelationSlot(const std::string& name) {
  uint64_t* slot = &fetched_by_relation_[name];
  if (log_mode_) log_slot_ids_.emplace(slot, InternLogRelation(name));
  return slot;
}

void ExecContext::ChargeRows(uint64_t* slot, uint64_t n, OpCounters* op) {
  if (log_mode_) {
    LogCharge(ChargeEvent::Kind::kScan, log_slot_ids_.at(slot), n, op);
    return;
  }
  *slot += n;
  base_tuples_fetched_ += n;
  if (op != nullptr) op->tuples_fetched += n;
  if (!governor_.OnFetch(base_tuples_fetched_, op)) RecordTrip();
}

void ExecContext::ChargeIndexLookup(const std::string& relation,
                                    uint64_t tuples, OpCounters* op) {
  if (log_mode_) {
    ++index_lookups_;
    LogCharge(ChargeEvent::Kind::kLookup, InternLogRelation(relation), tuples,
              op);
    return;
  }
  ++index_lookups_;
  if (op != nullptr) {
    ++op->index_lookups;
    op->tuples_fetched += tuples;
  }
  Charge(relation, tuples, op);
}

void ExecContext::ChargeScan(const std::string& relation, uint64_t tuples,
                             OpCounters* op) {
  if (log_mode_) {
    LogCharge(ChargeEvent::Kind::kScan, InternLogRelation(relation), tuples,
              op);
    return;
  }
  if (op != nullptr) op->tuples_fetched += tuples;
  Charge(relation, tuples, op);
}

void ExecContext::ChargeOpRows(OpCounters* op, uint64_t n) {
  if (op == nullptr || n == 0) return;
  if (log_mode_) {
    charge_log_.push_back({ChargeEvent::Kind::kRows, op->id, 0, n});
    return;
  }
  op->rows_out += n;
}

uint32_t ExecContext::InternLogRelation(const std::string& relation) {
  auto [it, inserted] = log_relation_ids_.emplace(
      relation, static_cast<uint32_t>(log_relations_.size()));
  if (inserted) log_relations_.push_back(relation);
  return it->second;
}

void ExecContext::LogCharge(ChargeEvent::Kind kind, uint32_t relation_id,
                            uint64_t tuples, OpCounters* op) {
  charge_log_.push_back({kind, op != nullptr ? op->id : -1, relation_id,
                         tuples});
  base_tuples_fetched_ += tuples;
  fetched_by_relation_[log_relations_[relation_id]] += tuples;
  if (!lease_.Charge(tuples)) {
    starved_ = true;
    SetError(
        Status::ResourceExhausted("worker lane sub-budget lease exhausted"));
    return;
  }
  // Time-only local governor (the fetch budget lives in the shared ledger);
  // a trip here marks the lane starved via RecordTrip.
  if (!governor_.OnFetch(base_tuples_fetched_, nullptr)) RecordTrip();
}

void ExecContext::BeginChargeLog(SharedLedger* ledger,
                                 const GovernorLimits& time_limits) {
  log_mode_ = true;
  starved_ = false;
  lease_.Attach(ledger);
  governor_.Arm(time_limits);
}

void ExecContext::ReplayWorker(const ExecContext& worker) {
  for (const ChargeEvent& ev : worker.charge_log_) {
    if (!ok()) return;  // the sequential walk would have stopped here
    OpCounters* op = ev.op_id >= 0 ? &ops_[ev.op_id] : nullptr;
    switch (ev.kind) {
      case ChargeEvent::Kind::kRows:
        if (op != nullptr) op->rows_out += ev.n;
        break;
      case ChargeEvent::Kind::kLookup:
        ChargeIndexLookup(worker.log_relations_[ev.relation], ev.n, op);
        break;
      case ChargeEvent::Kind::kScan:
        ChargeScan(worker.log_relations_[ev.relation], ev.n, op);
        break;
    }
  }
  if (ok() && !worker.status_.ok()) status_ = worker.status_;
}

void ExecContext::AccumulateLane(int lane, const ExecContext& worker) {
  if (lane < 0) lane = 0;
  fetched_by_lane_[lane] += worker.base_tuples_fetched_;
  lookups_by_lane_[lane] += worker.index_lookups_;
}

void ExecContext::AbsorbWorker(const ExecContext& worker, OpCounters* op) {
  base_tuples_fetched_ += worker.base_tuples_fetched_;
  index_lookups_ += worker.index_lookups_;
  for (const auto& [name, tuples] : worker.fetched_by_relation_) {
    fetched_by_relation_[name] += tuples;
  }
  if (op != nullptr) {
    op->tuples_fetched += worker.base_tuples_fetched_;
    op->index_lookups += worker.index_lookups_;
  }
  if (!worker.status_.ok() && status_.ok()) status_ = worker.status_;
}

void ExecContext::SetError(Status s) {
  if (status_.ok()) status_ = std::move(s);
}

OpCounters* ExecContext::NewOp(std::string label, int32_t parent) {
  ops_.emplace_back();
  OpCounters& op = ops_.back();
  op.label = std::move(label);
  op.id = static_cast<int32_t>(ops_.size()) - 1;
  op.parent = parent;
  return &op;
}

std::vector<OpCounters> ExecContext::SnapshotOps() const {
  return std::vector<OpCounters>(ops_.begin(), ops_.end());
}

void ExecContext::ExportMetrics(obs::MetricsRegistry* registry,
                                const std::string& prefix) const {
  registry->GetCounter(prefix + "base_tuples_fetched")
      .Increment(base_tuples_fetched_);
  registry->GetCounter(prefix + "index_lookups").Increment(index_lookups_);
  for (const auto& [name, tuples] : fetched_by_relation_) {
    registry->GetCounter(prefix + "fetched." + name).Increment(tuples);
  }
  if (governor_.tripped()) {
    registry
        ->GetCounter(prefix + "governor.trips." +
                     LimitKindName(governor_.trip().kind))
        .Increment();
  }
}

std::string ExecContext::DebugString() const {
  std::string out = "fetched=" + std::to_string(base_tuples_fetched_) +
                    " lookups=" + std::to_string(index_lookups_);
  for (const OpCounters& op : ops_) {
    out += " | " + op.label + ": out=" + std::to_string(op.rows_out) +
           " fetched=" + std::to_string(op.tuples_fetched);
  }
  return out;
}

const std::vector<uint32_t>* MeteredIndexLookup(
    ExecContext* ctx, const std::string& name, const Relation& rel,
    const std::vector<size_t>& positions, const Tuple& key, OpCounters* op) {
  if (Status s = SCALEIN_FAILPOINT("index_probe"); !s.ok()) {
    ctx->SetError(std::move(s));
    return nullptr;
  }
  // Sharded relations route the probe to the one shard owning the key's
  // hash; accounting is identical to the single-index path.
  const std::vector<uint32_t>* rows =
      rel.num_shards() > 1 ? rel.EnsureShardedIndex(positions).Lookup(key)
                           : rel.EnsureIndex(positions).Lookup(key);
  ctx->ChargeIndexLookup(name, rows == nullptr ? 0 : rows->size(), op);
  return rows;
}

std::vector<Tuple> MeteredProjectionLookup(
    ExecContext* ctx, const std::string& name, const Relation& rel,
    const std::vector<size_t>& key_positions,
    const std::vector<size_t>& value_positions, const Tuple& key,
    OpCounters* op) {
  if (Status s = SCALEIN_FAILPOINT("index_probe"); !s.ok()) {
    ctx->SetError(std::move(s));
    return {};
  }
  const ProjectionIndex& index =
      rel.EnsureProjectionIndex(key_positions, value_positions);
  std::vector<Tuple> projections = index.Lookup(key);
  ctx->ChargeIndexLookup(name, projections.size(), op);
  return projections;
}

void ChargeFullAccess(ExecContext* ctx, const std::string& name,
                      const Relation& rel, OpCounters* op) {
  ctx->ChargeIndexLookup(name, rel.size(), op);
}

}  // namespace scalein::exec
