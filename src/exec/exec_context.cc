#include "exec/exec_context.h"

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/failpoint.h"

namespace scalein::exec {

ExecContext::ExecContext() : tracer_(obs::Tracer::Global()) {}

ExecContext::ExecContext(const Database* db)
    : db_(db), tracer_(obs::Tracer::Global()) {}

const Relation* ExecContext::Resolve(const std::string& name) const {
  auto it = overrides_.find(name);
  if (it != overrides_.end()) return it->second;
  if (db_ == nullptr) return nullptr;
  return db_->FindRelation(name);
}

void ExecContext::RecordTrip() {
  if (!status_.ok() || !governor_.tripped()) return;
  status_ = governor_.trip().ToStatus();
  if (obs::FlightRecorderEnabled()) {
    const TripInfo& trip = governor_.trip();
    obs::RecordFlightEvent(
        obs::EventKind::kGovernorTrip, LimitKindName(trip.kind),
        {obs::EventArg("detail", trip.ToString()),
         obs::EventArg("fetched", base_tuples_fetched_)});
  }
}

void ExecContext::Charge(const std::string& relation, uint64_t tuples,
                         OpCounters* op) {
  base_tuples_fetched_ += tuples;
  fetched_by_relation_[relation] += tuples;
  if (!governor_.OnFetch(base_tuples_fetched_, op)) RecordTrip();
}

void ExecContext::ChargeRows(uint64_t* slot, uint64_t n, OpCounters* op) {
  *slot += n;
  base_tuples_fetched_ += n;
  if (op != nullptr) op->tuples_fetched += n;
  if (!governor_.OnFetch(base_tuples_fetched_, op)) RecordTrip();
}

void ExecContext::ChargeIndexLookup(const std::string& relation,
                                    uint64_t tuples, OpCounters* op) {
  ++index_lookups_;
  if (op != nullptr) {
    ++op->index_lookups;
    op->tuples_fetched += tuples;
  }
  Charge(relation, tuples, op);
}

void ExecContext::ChargeScan(const std::string& relation, uint64_t tuples,
                             OpCounters* op) {
  if (op != nullptr) op->tuples_fetched += tuples;
  Charge(relation, tuples, op);
}

void ExecContext::AbsorbWorker(const ExecContext& worker, OpCounters* op) {
  base_tuples_fetched_ += worker.base_tuples_fetched_;
  index_lookups_ += worker.index_lookups_;
  for (const auto& [name, tuples] : worker.fetched_by_relation_) {
    fetched_by_relation_[name] += tuples;
  }
  if (op != nullptr) {
    op->tuples_fetched += worker.base_tuples_fetched_;
    op->index_lookups += worker.index_lookups_;
  }
  if (!worker.status_.ok() && status_.ok()) status_ = worker.status_;
}

void ExecContext::SetError(Status s) {
  if (status_.ok()) status_ = std::move(s);
}

OpCounters* ExecContext::NewOp(std::string label, int32_t parent) {
  ops_.emplace_back();
  OpCounters& op = ops_.back();
  op.label = std::move(label);
  op.id = static_cast<int32_t>(ops_.size()) - 1;
  op.parent = parent;
  return &op;
}

std::vector<OpCounters> ExecContext::SnapshotOps() const {
  return std::vector<OpCounters>(ops_.begin(), ops_.end());
}

void ExecContext::ExportMetrics(obs::MetricsRegistry* registry,
                                const std::string& prefix) const {
  registry->GetCounter(prefix + "base_tuples_fetched")
      .Increment(base_tuples_fetched_);
  registry->GetCounter(prefix + "index_lookups").Increment(index_lookups_);
  for (const auto& [name, tuples] : fetched_by_relation_) {
    registry->GetCounter(prefix + "fetched." + name).Increment(tuples);
  }
  if (governor_.tripped()) {
    registry
        ->GetCounter(prefix + "governor.trips." +
                     LimitKindName(governor_.trip().kind))
        .Increment();
  }
}

std::string ExecContext::DebugString() const {
  std::string out = "fetched=" + std::to_string(base_tuples_fetched_) +
                    " lookups=" + std::to_string(index_lookups_);
  for (const OpCounters& op : ops_) {
    out += " | " + op.label + ": out=" + std::to_string(op.rows_out) +
           " fetched=" + std::to_string(op.tuples_fetched);
  }
  return out;
}

const std::vector<uint32_t>* MeteredIndexLookup(
    ExecContext* ctx, const std::string& name, const Relation& rel,
    const std::vector<size_t>& positions, const Tuple& key, OpCounters* op) {
  if (Status s = SCALEIN_FAILPOINT("index_probe"); !s.ok()) {
    ctx->SetError(std::move(s));
    return nullptr;
  }
  // Sharded relations route the probe to the one shard owning the key's
  // hash; accounting is identical to the single-index path.
  const std::vector<uint32_t>* rows =
      rel.num_shards() > 1 ? rel.EnsureShardedIndex(positions).Lookup(key)
                           : rel.EnsureIndex(positions).Lookup(key);
  ctx->ChargeIndexLookup(name, rows == nullptr ? 0 : rows->size(), op);
  return rows;
}

std::vector<Tuple> MeteredProjectionLookup(
    ExecContext* ctx, const std::string& name, const Relation& rel,
    const std::vector<size_t>& key_positions,
    const std::vector<size_t>& value_positions, const Tuple& key,
    OpCounters* op) {
  if (Status s = SCALEIN_FAILPOINT("index_probe"); !s.ok()) {
    ctx->SetError(std::move(s));
    return {};
  }
  const ProjectionIndex& index =
      rel.EnsureProjectionIndex(key_positions, value_positions);
  std::vector<Tuple> projections = index.Lookup(key);
  ctx->ChargeIndexLookup(name, projections.size(), op);
  return projections;
}

void ChargeFullAccess(ExecContext* ctx, const std::string& name,
                      const Relation& rel, OpCounters* op) {
  ctx->ChargeIndexLookup(name, rel.size(), op);
}

}  // namespace scalein::exec
