#ifndef SCALEIN_EXEC_GOVERNED_PARALLEL_H_
#define SCALEIN_EXEC_GOVERNED_PARALLEL_H_

#include <functional>

#include "exec/exec_context.h"
#include "util/status.h"

namespace scalein {
class Database;
}

namespace scalein::exec {

/// Deterministic governed morsel fan-out: the sub-budget lease / charge-log
/// replay protocol (docs/parallelism.md).
///
/// Runs `run(m, worker_ctx)` for each morsel m in [0, morsels) on the global
/// worker pool. Each worker ExecContext is in charge-log mode: fetches are
/// served from per-lane SubBudget leases on one SharedLedger sized from the
/// parent's unspent fetch budget, the lane-local governor carries only the
/// parent's deadline/cancellation (same absolute clock), and every metered
/// charge is appended to a log instead of probing the parent's governor.
///
/// Reconciliation then walks the morsels in order — the exact order the
/// sequential walk would have processed them:
///   - parent already failed/tripped → the morsel is discarded;
///   - worker clean → its log replays through the parent's armed governor
///     (reproducing the sequential charge/trip sequence byte-for-byte); if
///     the parent is still clean, `commit(m)` publishes the morsel's output;
///   - worker errored (failpoint, storage error) → the log — a faithful
///     prefix up to the error — replays, then the error propagates;
///   - worker starved (lane lease dry, or local deadline/cancel trip) → its
///     log understates the sequential prefix, so log and output are
///     discarded and `reexec(m)` re-runs the morsel sequentially in the
///     parent context, giving exact sequential semantics with no
///     double-counting.
///
/// The result: a governed run at SCALEIN_THREADS=N produces the same
/// answers, the same TripInfo (kind, op, fetched_at_trip), the same per-op
/// and per-relation accounting — hence the same access certificate — as at
/// N=1. The only non-reproducible case is a deadline/cancellation that
/// expires *mid-run* (wall-clock nondeterminism is inherent); pre-expired
/// deadlines and pre-cancelled tokens reconcile deterministically because
/// every lane detects them within its first check interval.
///
/// `run` must confine all writes to the morsel's own worker context and
/// output buffer. `reexec(m)` must perform the morsel's work against the
/// parent context directly; `commit(m)` must publish the worker's buffered
/// output. Returns the parent's status after reconciliation.
Status GovernedParallelMorsels(
    ExecContext* parent, size_t morsels,
    const std::function<void(size_t, ExecContext*)>& run,
    const std::function<void(size_t)>& reexec,
    const std::function<void(size_t)>& commit);

}  // namespace scalein::exec

#endif  // SCALEIN_EXEC_GOVERNED_PARALLEL_H_
