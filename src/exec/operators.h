#ifndef SCALEIN_EXEC_OPERATORS_H_
#define SCALEIN_EXEC_OPERATORS_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "exec/exec_context.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "query/ra_expr.h"
#include "relational/relation.h"

namespace scalein::exec {

/// Pull-based physical operator (Volcano-style, one row per Next). Operators
/// form a tree; `Open` (re)initializes, `Next` produces the next row into
/// `*out` and returns false on exhaustion or when the context has failed
/// (budget exhausted), so early-exit consumers (Boolean queries, first-answer
/// probes) stop fetching as soon as they have what they need.
///
/// Every operator registers an OpCounters with the context at construction
/// (`NewOp`), and parents link children via `Adopt`, so the executed tree is
/// reconstructible for EXPLAIN ANALYZE. `Open`/`Next` are non-virtual
/// wrappers (NVI): they count rows_out uniformly and — only when the context
/// enabled timing before planning — record per-op wall time. With timing off
/// the wrapper costs one predicted branch; compiling with
/// SCALEIN_OBS_ENABLE_TIMING=0 removes even that, restoring the exact
/// untimed hot loop.
class Operator {
 public:
  Operator(ExecContext* ctx, std::string label)
      : ctx_(ctx),
        op_(ctx->NewOp(std::move(label))),
        timing_(ctx->timing_enabled() ? op_ : nullptr) {}
  virtual ~Operator() = default;

  void Open() {
#if SCALEIN_OBS_ENABLE_RECORDER
    if (obs::FlightRecorderEnabled()) RecordOpOpen();
#endif
#if SCALEIN_OBS_ENABLE_TIMING
    if (timing_ != nullptr) {
      TimedOpen();
      return;
    }
#endif
    DoOpen();
  }

  bool Next(Tuple* out) {
    bool produced;
#if SCALEIN_OBS_ENABLE_TIMING
    if (timing_ != nullptr) {
      produced = TimedNext(out);
    } else
#endif
    {
      produced = DoNext(out);
      if (produced) ++op_->rows_out;
    }
#if SCALEIN_OBS_ENABLE_RECORDER
    // Flight-recorder progress events, batched so the per-row cost with a
    // recorder installed stays one predicted branch + a counter bump (the
    // recorder-on governed bench gate in bench_fig_bounded_q1 is <= 3%).
    if (obs::FlightRecorderEnabled()) {
      if (produced) {
        if (++next_since_event_ >= kOpEventEveryRows) RecordOpBatch();
      } else if (!close_recorded_) {
        RecordOpClose();
      }
    }
#endif
    return produced;
  }

  /// This operator's slot in the context's op table (never null).
  OpCounters* counters() const { return op_; }

  /// The context this operator charges (drains consult its governor).
  ExecContext* context() const { return ctx_; }

 protected:
  /// Declares `child` a subtree of this operator in the explain tree; call
  /// once per child from the parent's constructor.
  void Adopt(Operator& child) { child.op_->parent = op_->id; }

  virtual void DoOpen() = 0;
  virtual bool DoNext(Tuple* out) = 0;

  ExecContext* ctx_;
  OpCounters* op_;

 private:
  void TimedOpen();
  bool TimedNext(Tuple* out);

#if SCALEIN_OBS_ENABLE_RECORDER
  /// One op-next-batch event per this many produced rows.
  static constexpr uint32_t kOpEventEveryRows = 256;

  /// Out-of-line emitters (exec/operators.cc): the inline wrappers above
  /// only pay the enabled-check; label/num marshalling happens here, on the
  /// allocation-free RecordFlightNums path.
  void RecordOpOpen();
  void RecordOpBatch();
  void RecordOpClose();

  uint32_t next_since_event_ = 0;
  uint64_t fetched_at_event_ = 0;
  bool close_recorded_ = false;
#endif

  OpCounters* timing_;
};

/// One selection conjunct compiled to column positions over a fixed layout.
struct CompiledAtom {
  size_t lhs = 0;
  bool rhs_is_attr = false;
  size_t rhs_pos = 0;
  Value rhs_const;
  bool negated = false;
};

/// A conjunction of compiled atoms; the runtime form of SelectionCondition.
struct CompiledCondition {
  std::vector<CompiledAtom> atoms;

  bool Eval(TupleView row) const {
    for (const CompiledAtom& a : atoms) {
      const Value& lhs = row[a.lhs];
      const Value& rhs = a.rhs_is_attr ? row[a.rhs_pos] : a.rhs_const;
      if ((lhs == rhs) == a.negated) return false;
    }
    return true;
  }

  /// Compiles `cond` against the layout `attrs` (positions by name).
  static CompiledCondition Compile(const SelectionCondition& cond,
                                   const std::vector<std::string>& attrs);
};

/// Emits no rows: unknown relations and statically-empty plans.
class EmptyOp final : public Operator {
 public:
  explicit EmptyOp(ExecContext* ctx) : Operator(ctx, "empty") {}

 protected:
  void DoOpen() override {}
  bool DoNext(Tuple*) override { return false; }
};

/// Emits exactly one zero-column row: the seed of a CQ probe chain.
class ConstRowOp final : public Operator {
 public:
  explicit ConstRowOp(ExecContext* ctx) : Operator(ctx, "const-row") {}

 protected:
  void DoOpen() override { done_ = false; }
  bool DoNext(Tuple* out) override {
    if (done_) return false;
    done_ = true;
    out->clear();
    return true;
  }

 private:
  bool done_ = false;
};

/// Sequential scan of a base relation; every row is charged to the context.
class ScanOp final : public Operator {
 public:
  ScanOp(ExecContext* ctx, std::string name, const Relation* rel);

 protected:
  void DoOpen() override { next_row_ = 0; }
  bool DoNext(Tuple* out) override;

 private:
  const Relation* rel_;
  uint64_t* slot_;
  size_t next_row_ = 0;
};

/// Hash-index point lookup with a key fixed at plan time (selection
/// pushdown: σ_{X=ā}(R) through the access-schema index on X).
class IndexLookupOp final : public Operator {
 public:
  /// `positions` must be sorted and duplicate-free; `key` in that order.
  IndexLookupOp(ExecContext* ctx, std::string name, const Relation* rel,
                std::vector<size_t> positions, Tuple key);

 protected:
  void DoOpen() override;
  bool DoNext(Tuple* out) override;

 private:
  const Relation* rel_;
  std::string name_;
  std::vector<size_t> positions_;
  Tuple key_;
  const std::vector<uint32_t>* rows_ = nullptr;
  size_t next_ = 0;
};

/// Projection-index lookup: the distinct π_Y(σ_{X=ā}(R)) of an embedded
/// access statement, emitted in a caller-chosen column order.
class ProjectionLookupOp final : public Operator {
 public:
  /// `remap[i]` is the index into the canonical value layout feeding output
  /// column i.
  ProjectionLookupOp(ExecContext* ctx, std::string name, const Relation* rel,
                     std::vector<size_t> key_positions,
                     std::vector<size_t> value_positions, Tuple key,
                     std::vector<size_t> remap);

 protected:
  void DoOpen() override;
  bool DoNext(Tuple* out) override;

 private:
  const Relation* rel_;
  std::string name_;
  std::vector<size_t> key_positions_;
  std::vector<size_t> value_positions_;
  Tuple key_;
  std::vector<size_t> remap_;
  std::vector<Tuple> groups_;
  size_t next_ = 0;
};

/// Filters child rows by a compiled condition.
class FilterOp final : public Operator {
 public:
  FilterOp(ExecContext* ctx, std::unique_ptr<Operator> child,
           CompiledCondition condition)
      : Operator(ctx, "filter"),
        child_(std::move(child)),
        condition_(std::move(condition)) {
    Adopt(*child_);
  }

 protected:
  void DoOpen() override { child_->Open(); }
  bool DoNext(Tuple* out) override;

 private:
  std::unique_ptr<Operator> child_;
  CompiledCondition condition_;
};

/// Projects child rows onto `positions` (duplicates NOT removed here; set
/// semantics are restored when the drain materializes into a Relation).
class ProjectOp final : public Operator {
 public:
  ProjectOp(ExecContext* ctx, std::unique_ptr<Operator> child,
            std::vector<size_t> positions)
      : Operator(ctx, "project"),
        child_(std::move(child)),
        positions_(std::move(positions)) {
    Adopt(*child_);
  }

 protected:
  void DoOpen() override { child_->Open(); }
  bool DoNext(Tuple* out) override;

 private:
  std::unique_ptr<Operator> child_;
  std::vector<size_t> positions_;
  Tuple scratch_;
};

/// Concatenates two streams; right rows are remapped to the left layout
/// (`align[i]` = right position of left column i).
class UnionOp final : public Operator {
 public:
  UnionOp(ExecContext* ctx, std::unique_ptr<Operator> left,
          std::unique_ptr<Operator> right, std::vector<size_t> align)
      : Operator(ctx, "union"),
        left_(std::move(left)),
        right_(std::move(right)),
        align_(std::move(align)) {
    Adopt(*left_);
    Adopt(*right_);
  }

 protected:
  void DoOpen() override;
  bool DoNext(Tuple* out) override;

 private:
  std::unique_ptr<Operator> left_;
  std::unique_ptr<Operator> right_;
  std::vector<size_t> align_;
  bool on_right_ = false;
  Tuple scratch_;
};

/// Anti-join: left rows whose aligned form is absent from the materialized
/// right side.
class DiffOp final : public Operator {
 public:
  DiffOp(ExecContext* ctx, std::unique_ptr<Operator> left,
         std::unique_ptr<Operator> right, std::vector<size_t> align)
      : Operator(ctx, "diff"),
        left_(std::move(left)),
        right_(std::move(right)),
        align_(std::move(align)) {
    Adopt(*left_);
    Adopt(*right_);
  }

 protected:
  void DoOpen() override;
  bool DoNext(Tuple* out) override;

 private:
  std::unique_ptr<Operator> left_;
  std::unique_ptr<Operator> right_;
  std::vector<size_t> align_;
  std::unordered_set<Tuple, TupleHash, TupleEq> right_rows_;
};

/// Hash join: materializes the right child into a hash table keyed on
/// `r_key`, probes with left rows keyed on `l_key` (parallel vectors), and
/// emits left ++ right[r_extra]. With empty keys this degenerates to the
/// cartesian product.
class HashJoinOp final : public Operator {
 public:
  HashJoinOp(ExecContext* ctx, std::unique_ptr<Operator> left,
             std::unique_ptr<Operator> right, std::vector<size_t> l_key,
             std::vector<size_t> r_key, std::vector<size_t> r_extra)
      : Operator(ctx, "hash-join"),
        left_(std::move(left)),
        right_(std::move(right)),
        l_key_(std::move(l_key)),
        r_key_(std::move(r_key)),
        r_extra_(std::move(r_extra)) {
    Adopt(*left_);
    Adopt(*right_);
  }

 protected:
  void DoOpen() override;
  bool DoNext(Tuple* out) override;

 private:
  std::unique_ptr<Operator> left_;
  std::unique_ptr<Operator> right_;
  std::vector<size_t> l_key_;
  std::vector<size_t> r_key_;
  std::vector<size_t> r_extra_;
  std::unordered_map<Tuple, std::vector<Tuple>, TupleHash, TupleEq> table_;
  Tuple left_row_;
  const std::vector<Tuple>* matches_ = nullptr;
  size_t match_next_ = 0;
};

/// Index nested-loop join against a BASE relation: for every left row,
/// probes the relation's hash index on `index_positions` (key values drawn
/// from left columns and plan-time constants), applies a residual condition
/// over the full base row, and emits left ++ base[emit_positions].
///
/// This is the index-aware join the planner prefers whenever the probe side
/// is (a selection/projection/renaming of) a stored relation — the physical
/// counterpart of an access-schema statement (R, X, N, T). With no probe
/// columns it degenerates to a metered nested-loop scan.
class IndexJoinOp final : public Operator {
 public:
  struct KeySource {
    bool from_left = false;
    size_t left_col = 0;  ///< when from_left
    Value constant;       ///< otherwise
  };

  /// `index_positions` must be sorted and duplicate-free; `key_sources` is
  /// parallel to it.
  IndexJoinOp(ExecContext* ctx, std::string name, const Relation* rel,
              std::unique_ptr<Operator> left,
              std::vector<size_t> index_positions,
              std::vector<KeySource> key_sources, CompiledCondition residual,
              std::vector<size_t> emit_positions);

 protected:
  void DoOpen() override;
  bool DoNext(Tuple* out) override;

 private:
  bool AdvanceLeft();

  std::string name_;
  const Relation* rel_;
  std::unique_ptr<Operator> left_;
  std::vector<size_t> index_positions_;
  std::vector<KeySource> key_sources_;
  CompiledCondition residual_;
  std::vector<size_t> emit_positions_;
  uint64_t* slot_;

  Tuple left_row_;
  Tuple key_;
  bool left_valid_ = false;
  const std::vector<uint32_t>* matches_ = nullptr;  // index mode
  size_t match_next_ = 0;
  size_t scan_next_ = 0;  // scan mode (no probe columns)
};

}  // namespace scalein::exec

#endif  // SCALEIN_EXEC_OPERATORS_H_
