#ifndef SCALEIN_EXEC_COMPILER_H_
#define SCALEIN_EXEC_COMPILER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "core/bounded_eval.h"
#include "core/controllability.h"
#include "core/embedded_controllability.h"
#include "exec/bytecode.h"
#include "query/formula.h"
#include "util/status.h"

namespace scalein::exec {

/// Lowers a §4 plain-controllability derivation into register bytecode.
///
/// Supported shape (covers every derivation the parser's FO queries produce
/// on the hot path): a chain of ∃-wrappers over one conjunction of
/// atom/condition leaves with atom/condition negations, or a bare leaf —
///   exists* ( and(leaf+; leaf*) | leaf ),  leaf := atom | condition.
/// Derivations using the "or"/"forall" rules, nested non-leaf conjuncts, or
/// other unsupported structure are rejected with a reason (the caller falls
/// back to the interpreter — a sanctioned path counted by
/// `exec.compiled_fallbacks`). The compiled program issues the *identical*
/// sequence of metered charges as the interpreter, so answers, TripInfo,
/// per-op/per-relation accounting, and sealed certificates are byte-equal.
///
/// `analysis` is retained by the returned program (the bytecode points into
/// the analysis' access statements and formulas).
Result<std::shared_ptr<const CompiledProgram>> CompilePlain(
    const FoQuery& q,
    std::shared_ptr<const ControllabilityAnalysis> analysis,
    const VarSet& param_vars);

/// Lowers a Proposition 4.5 embedded chase plan into register bytecode.
/// Rejects non-scale-independent analyses and atoms of arity > 64 (the
/// chase candidate validity mask is one machine word).
Result<std::shared_ptr<const CompiledProgram>> CompileEmbedded(
    std::shared_ptr<const EmbeddedCqAnalysis> analysis);

/// The compiled-plan side of one AnalysisCache entry: programs per parameter
/// set, living and dying with the cached derivation. The cache drops the
/// whole entry on DDL/env-drift/eviction, so a program can never outlive (or
/// lag behind) the analysis it was lowered from — the invalidation story of
/// the derivation and its bytecode is one object.
///
/// Thread-safe. In kAuto mode a program is compiled on the *second* sighting
/// of a parameter-set key (first sightings defer — one-off queries never pay
/// compilation); kOn compiles immediately; kOff always returns nullptr.
/// Compile failures are cached per key with their reason, so an unsupported
/// shape costs one rejection, not one per request.
class CompiledPlanSet {
 public:
  enum class Mode : uint8_t { kOff, kOn, kAuto };

  /// Parses "off"/"on"/"auto" (anything else: kAuto).
  static Mode ParseMode(std::string_view text);
  static const char* ModeName(Mode mode);

  /// The compiled plain program for `param_vars`, or nullptr with `*why`
  /// explaining the deferral ("auto: first sighting") or failure
  /// ("unsupported: ..."). `*failed` (optional) is true only for genuine
  /// compile failures — the fallback-counter signal.
  std::shared_ptr<const CompiledProgram> GetOrCompilePlain(
      Mode mode, const FoQuery& q,
      const std::shared_ptr<const ControllabilityAnalysis>& analysis,
      const VarSet& param_vars, std::string* why, bool* failed = nullptr);

  /// Embedded counterpart, keyed by the analysis' parameter set.
  std::shared_ptr<const CompiledProgram> GetOrCompileEmbedded(
      Mode mode, const std::shared_ptr<const EmbeddedCqAnalysis>& analysis,
      std::string* why, bool* failed = nullptr);

  /// Number of successful compilations (tests assert recompile-after-DDL).
  uint64_t compiles() const;

 private:
  struct PlanSlot {
    std::shared_ptr<const CompiledProgram> program;
    bool failed = false;
    std::string reason;
    uint32_t sightings = 0;
  };

  template <typename CompileFn>
  std::shared_ptr<const CompiledProgram> GetOrCompile(Mode mode,
                                                      const std::string& key,
                                                      const CompileFn& compile,
                                                      std::string* why,
                                                      bool* failed);

  mutable std::mutex mu_;
  std::map<std::string, PlanSlot> slots_;
  uint64_t compiles_ = 0;
};

}  // namespace scalein::exec

#endif  // SCALEIN_EXEC_COMPILER_H_
