#include "exec/compiler.h"

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "relational/relation.h"

namespace scalein::exec {
namespace {

uint16_t InternConst(CompiledProgram* p, const Value& v) {
  for (size_t i = 0; i < p->consts.size(); ++i) {
    if (p->consts[i] == v) return static_cast<uint16_t>(i);
  }
  p->consts.push_back(v);
  return static_cast<uint16_t>(p->consts.size() - 1);
}

uint32_t InternRelation(CompiledProgram* p, const std::string& name) {
  for (size_t i = 0; i < p->relations.size(); ++i) {
    if (p->relations[i] == name) return static_cast<uint32_t>(i);
  }
  p->relations.push_back(name);
  return static_cast<uint32_t>(p->relations.size() - 1);
}

Result<Reg> AllocReg(CompiledProgram* p, const Variable& v,
                     std::map<Variable, Reg>* var_regs) {
  if (p->num_regs >= kNoReg) {
    return Status::Unimplemented("register file exhausted");
  }
  Reg r = p->num_regs++;
  var_regs->emplace(v, r);
  return r;
}

/// Lowers one atom leaf. `env` maps every environment-bound variable to its
/// frontier register; when `bind_regs` is set (positive leaves) the leaf's
/// new variables are given frontier registers and recorded in `env`.
Status CompileAtomLeaf(const NodeAnalysis& node, const ControlOption& opt,
                       bool bind_regs, CompiledProgram* p,
                       std::map<Variable, Reg>* env, LeafCode* out) {
  const Formula& atom = node.formula;
  if (opt.access == nullptr && !opt.key_positions.empty()) {
    return Status::Unimplemented("atom option has no access statement");
  }
  out->is_condition = false;
  out->relation = InternRelation(p, atom.relation());
  out->access = opt.access;
  out->key_positions = Relation::CanonicalPositions(opt.key_positions);
  out->full_scan = out->key_positions.empty();
  for (size_t pos : out->key_positions) {
    const Term& t = atom.args()[pos];
    Slot s;
    if (t.is_const()) {
      s.kind = Slot::Kind::kConst;
      s.index = InternConst(p, t.constant());
    } else {
      auto it = env->find(t.var());
      if (it == env->end()) {
        return Status::Unimplemented("key variable '" + t.var().name() +
                                     "' is not bound by the environment");
      }
      s.kind = Slot::Kind::kReg;
      s.reg = it->second;
    }
    out->key.push_back(s);
  }
  if (!out->key_positions.empty()) {
    p->prebuilds.push_back({out->relation, out->key_positions});
  }

  // New variables in variable-id order — the interpreter's extension Binding
  // iterates in exactly this order, which fixes local slot assignment and
  // (for positive leaves) the merge order into frontier registers.
  VarSet ext;
  for (const Term& t : atom.args()) {
    if (t.is_var() && !env->count(t.var())) ext.insert(t.var());
  }
  std::map<Variable, uint16_t> local;
  for (const Variable& v : ext) {
    local.emplace(v, static_cast<uint16_t>(local.size()));
  }
  out->ext_width = static_cast<uint16_t>(ext.size());

  std::set<Variable> seen;
  for (const Term& t : atom.args()) {
    UnifyStep s;
    if (t.is_const()) {
      s.kind = UnifyStep::Kind::kCheckConst;
      s.index = InternConst(p, t.constant());
    } else if (env->count(t.var())) {
      s.kind = UnifyStep::Kind::kCheckReg;
      s.reg = env->at(t.var());
    } else if (seen.insert(t.var()).second) {
      s.kind = UnifyStep::Kind::kBindLocal;
      s.index = local.at(t.var());
    } else {
      s.kind = UnifyStep::Kind::kCheckLocal;
      s.index = local.at(t.var());
    }
    out->unify.push_back(s);
  }

  if (bind_regs) {
    for (const Variable& v : ext) {
      SI_ASSIGN_OR_RETURN(Reg r, AllocReg(p, v, env));
      out->ext_regs.push_back(r);
    }
  }
  return Status::OK();
}

/// Lowers one condition leaf (the §4 "condition" rule: a Boolean
/// combination of equalities whose unresolved variables are determined by
/// condition_resolve pins/representatives).
Status CompileConditionLeaf(const NodeAnalysis& node, const ControlOption& opt,
                            bool bind_regs, CompiledProgram* p,
                            std::map<Variable, Reg>* env, LeafCode* out) {
  out->is_condition = true;
  out->cond = node.formula;
  std::map<Variable, uint16_t> local;
  for (const auto& [v, t] : opt.condition_resolve) {
    if (env->count(v)) continue;
    Slot s;
    if (t.is_const()) {
      s.kind = Slot::Kind::kConst;
      s.index = InternConst(p, t.constant());
    } else {
      auto rep = env->find(t.var());
      if (rep == env->end()) {
        return Status::Unimplemented("condition representative '" +
                                     t.var().name() +
                                     "' is not bound by the environment");
      }
      s.kind = Slot::Kind::kReg;
      s.reg = rep->second;
    }
    local.emplace(v, static_cast<uint16_t>(out->cond_sources.size()));
    out->cond_sources.push_back(s);
  }
  out->ext_width = static_cast<uint16_t>(out->cond_sources.size());
  for (const Variable& v : node.formula.FreeVariables()) {
    CondVar cv;
    cv.var_id = v.id();
    auto reg = env->find(v);
    if (reg != env->end()) {
      cv.local = false;
      cv.reg = reg->second;
    } else {
      auto loc = local.find(v);
      if (loc == local.end()) {
        return Status::Unimplemented("condition variable '" + v.name() +
                                     "' is neither bound nor determined");
      }
      cv.local = true;
      cv.index = loc->second;
    }
    out->cond_vars.push_back(cv);
  }
  if (bind_regs) {
    for (const auto& [v, idx] : local) {
      (void)idx;  // map iteration is id order == local slot order
      SI_ASSIGN_OR_RETURN(Reg r, AllocReg(p, v, env));
      out->ext_regs.push_back(r);
    }
  }
  return Status::OK();
}

Status CompileLeaf(const NodeAnalysis& node, const ControlOption& opt,
                   bool bind_regs, CompiledProgram* p,
                   std::map<Variable, Reg>* env, LeafCode* out) {
  if (opt.rule == "atom") {
    return CompileAtomLeaf(node, opt, bind_regs, p, env, out);
  }
  if (opt.rule == "condition") {
    return CompileConditionLeaf(node, opt, bind_regs, p, env, out);
  }
  return Status::Unimplemented("unsupported derivation rule '" + opt.rule +
                               "' (compiled grammar: exists* (and | leaf))");
}

std::vector<Reg> LayoutFor(const VarSet& domain,
                           const std::map<Variable, Reg>& var_regs) {
  std::vector<Reg> layout;
  layout.reserve(domain.size());
  for (const Variable& v : domain) layout.push_back(var_regs.at(v));
  return layout;
}

}  // namespace

Result<std::shared_ptr<const CompiledProgram>> CompilePlain(
    const FoQuery& q, std::shared_ptr<const ControllabilityAnalysis> analysis,
    const VarSet& param_vars) {
  const ControlOption* opt = analysis->BestOptionFor(param_vars);
  if (opt == nullptr) {
    return Status::FailedPrecondition(
        "query is not controlled by the given parameters " +
        VarSetToString(param_vars));
  }
  auto prog = std::make_shared<CompiledProgram>();
  CompiledProgram* p = prog.get();
  p->kind = CompiledProgram::Kind::kPlain;
  p->params = param_vars;
  p->static_bound = opt->fetch_bound;
  p->keepalive = analysis;

  std::map<Variable, Reg> var_regs;
  for (const Variable& v : param_vars) {
    SI_ASSIGN_OR_RETURN(Reg r, AllocReg(p, v, &var_regs));
    p->param_regs.emplace_back(v, r);
  }

  // Descend the ∃-wrapper chain, emitting op prototypes in the
  // interpreter's RegisterOps pre-order (each node before its children).
  struct ExistsFrame {
    const NodeAnalysis* node;
    int32_t op_idx;
  };
  std::vector<ExistsFrame> exists_chain;
  const NodeAnalysis* node = &analysis->root();
  const ControlOption* cur = opt;
  int32_t parent_idx = -1;
  while (cur->rule == "exists") {
    p->ops.push_back({"exists", parent_idx, cur->fetch_bound});
    parent_idx = static_cast<int32_t>(p->ops.size()) - 1;
    exists_chain.push_back({node, parent_idx});
    node = node->subs[0].get();
    cur = cur->child_options[0];
  }

  VarSet domain;  // the frontier's binding domain (excludes parameters)
  if (cur->rule == "and") {
    p->ops.push_back({"and", parent_idx, cur->fetch_bound});
    const int32_t and_idx = static_cast<int32_t>(p->ops.size()) - 1;
    const size_t n_neg = node->subs.size() - node->n_positives;

    // Op prototypes first (children in evaluation order, negations after),
    // exactly like RegisterOps; leaf bodies are lowered in a second pass.
    std::vector<int32_t> step_ops, neg_ops;
    for (size_t step = 0; step < cur->conjunct_order.size(); ++step) {
      const NodeAnalysis& child = *node->subs[cur->conjunct_order[step]];
      const ControlOption& copt = *cur->child_options[step];
      std::string label = copt.rule == "atom"
                              ? "atom(" + child.formula.relation() + ")"
                              : copt.rule;
      p->ops.push_back({std::move(label), and_idx, copt.fetch_bound});
      step_ops.push_back(static_cast<int32_t>(p->ops.size()) - 1);
    }
    for (size_t ni = 0; ni < n_neg; ++ni) {
      const NodeAnalysis& neg = *node->subs[node->n_positives + ni];
      const ControlOption& nopt =
          *cur->child_options[cur->conjunct_order.size() + ni];
      std::string label = nopt.rule == "atom"
                              ? "atom(" + neg.formula.relation() + ")"
                              : nopt.rule;
      p->ops.push_back({std::move(label), and_idx, nopt.fetch_bound});
      neg_ops.push_back(static_cast<int32_t>(p->ops.size()) - 1);
    }

    for (size_t step = 0; step < cur->conjunct_order.size(); ++step) {
      const NodeAnalysis& child = *node->subs[cur->conjunct_order[step]];
      const ControlOption& copt = *cur->child_options[step];
      PlainStage stage;
      stage.kind = PlainStage::Kind::kExpand;
      stage.leaf.op_idx = step_ops[step];
      SI_RETURN_IF_ERROR(CompileLeaf(child, copt, /*bind_regs=*/true, p,
                                     &var_regs, &stage.leaf));
      p->stages.push_back(std::move(stage));
    }
    if (n_neg > 0) {
      PlainStage stage;
      stage.kind = PlainStage::Kind::kNegations;
      for (size_t ni = 0; ni < n_neg; ++ni) {
        const NodeAnalysis& neg = *node->subs[node->n_positives + ni];
        const ControlOption& nopt =
            *cur->child_options[cur->conjunct_order.size() + ni];
        LeafCode leaf;
        leaf.op_idx = neg_ops[ni];
        SI_RETURN_IF_ERROR(
            CompileLeaf(neg, nopt, /*bind_regs=*/false, p, &var_regs, &leaf));
        stage.negs.push_back(std::move(leaf));
      }
      p->stages.push_back(std::move(stage));
    }
    for (const auto& [v, r] : var_regs) {
      (void)r;
      if (!param_vars.count(v)) domain.insert(v);
    }
    PlainStage fin;
    fin.kind = PlainStage::Kind::kFinalize;
    fin.op_idx = and_idx;
    fin.layout = LayoutFor(domain, var_regs);
    p->stages.push_back(std::move(fin));
  } else {
    std::string label = cur->rule == "atom"
                            ? "atom(" + node->formula.relation() + ")"
                            : cur->rule;
    p->ops.push_back({std::move(label), parent_idx, cur->fetch_bound});
    PlainStage stage;
    stage.kind = PlainStage::Kind::kExpand;
    stage.leaf.op_idx = static_cast<int32_t>(p->ops.size()) - 1;
    SI_RETURN_IF_ERROR(
        CompileLeaf(*node, *cur, /*bind_regs=*/true, p, &var_regs, &stage.leaf));
    p->stages.push_back(std::move(stage));
    for (const auto& [v, r] : var_regs) {
      (void)r;
      if (!param_vars.count(v)) domain.insert(v);
    }
  }

  // ∃-projections innermost first, matching the evaluation (return) order.
  for (auto it = exists_chain.rbegin(); it != exists_chain.rend(); ++it) {
    for (const Variable& v : it->node->formula.quantified()) domain.erase(v);
    PlainStage stage;
    stage.kind = PlainStage::Kind::kExistsFinalize;
    stage.op_idx = it->op_idx;
    stage.layout = LayoutFor(domain, var_regs);
    p->stages.push_back(std::move(stage));
  }
  p->final_layout = LayoutFor(domain, var_regs);

  for (const Variable& v : q.head) {
    if (param_vars.count(v)) continue;
    if (!domain.count(v)) {
      return Status::Unimplemented("head variable '" + v.name() +
                                   "' is not bound by the compiled plan");
    }
    p->head_regs.push_back(var_regs.at(v));
  }
  // The VM's flat frontier needs a row width of at least one Value even for
  // variable-free programs (a zero width would make every row buffer empty).
  if (p->num_regs == 0) p->num_regs = 1;
  return std::shared_ptr<const CompiledProgram>(std::move(prog));
}

Result<std::shared_ptr<const CompiledProgram>> CompileEmbedded(
    std::shared_ptr<const EmbeddedCqAnalysis> analysis) {
  if (!analysis->IsScaleIndependent()) {
    return Status::FailedPrecondition(
        "query has no embedded-controllability plan");
  }
  const Cq& q = analysis->query();
  const EmbeddedPlan& plan = analysis->plan();
  auto prog = std::make_shared<CompiledProgram>();
  CompiledProgram* p = prog.get();
  p->kind = CompiledProgram::Kind::kEmbedded;
  p->params = analysis->params();
  p->static_bound = plan.fetch_bound;
  p->keepalive = analysis;
  p->embed_query = q;

  std::map<Variable, Reg> var_regs;
  for (const Variable& v : p->params) {
    SI_ASSIGN_OR_RETURN(Reg r, AllocReg(p, v, &var_regs));
    p->param_regs.emplace_back(v, r);
  }

  p->ops.push_back({"embedded-cq", -1, plan.fetch_bound});
  for (const AtomPlan& ap : plan.atom_plans) {
    p->ops.push_back({"chase(" + q.atoms()[ap.atom_index].relation + ")", 0,
                      ap.fetch_bound});
  }

  VarSet bound = p->params;
  for (size_t ai = 0; ai < plan.atom_plans.size(); ++ai) {
    const AtomPlan& ap = plan.atom_plans[ai];
    const CqAtom& atom = q.atoms()[ap.atom_index];
    if (atom.args.size() > 64) {
      return Status::Unimplemented(
          "atom arity exceeds 64 (chase validity mask is one machine word)");
    }
    AtomCode ac;
    ac.relation = InternRelation(p, atom.relation);
    ac.op_idx = static_cast<int32_t>(ai) + 1;
    ac.arity = atom.args.size();

    std::vector<bool> pos_bound(ac.arity, false);
    for (size_t pos = 0; pos < ac.arity; ++pos) {
      const Term& t = atom.args[pos];
      Slot s;
      if (t.is_const()) {
        s.kind = Slot::Kind::kConst;
        s.index = InternConst(p, t.constant());
        pos_bound[pos] = true;
      } else if (bound.count(t.var())) {
        s.kind = Slot::Kind::kReg;
        s.reg = var_regs.at(t.var());
        pos_bound[pos] = true;
      }
      ac.seed.push_back(s);
    }
    for (const AtomChaseStep& step : ap.steps) {
      ChaseStepCode sc;
      sc.statement = step.statement;
      sc.key_positions = step.key_positions;
      sc.value_positions = step.value_positions;
      sc.key_layout = Relation::CanonicalPositions(step.key_positions);
      sc.value_layout = Relation::CanonicalPositions(step.value_positions);
      for (size_t pos : sc.key_layout) {
        if (pos >= ac.arity || !pos_bound[pos]) {
          return Status::Unimplemented(
              "chase step key position is not yet bound");
        }
      }
      for (size_t pos : sc.value_layout) {
        if (pos >= ac.arity) {
          return Status::Unimplemented("chase step value position out of range");
        }
        pos_bound[pos] = true;
      }
      ac.steps.push_back(std::move(sc));
    }
    for (size_t pos = 0; pos < ac.arity; ++pos) {
      if (!pos_bound[pos]) {
        return Status::Unimplemented("chase leaves an atom position unbound");
      }
    }
    if (ap.needs_verification) {
      ac.needs_verification = true;
      ac.verify_statement = ap.verify_statement;
      ac.verify_positions = Relation::CanonicalPositions(ap.verify_key_positions);
    }

    std::set<Variable> local_bound(bound.begin(), bound.end());
    for (size_t pos = 0; pos < ac.arity; ++pos) {
      const Term& t = atom.args[pos];
      UnifyStep s;
      if (t.is_const()) {
        s.kind = UnifyStep::Kind::kSkip;
      } else if (local_bound.count(t.var())) {
        s.kind = UnifyStep::Kind::kCheckReg;
        s.reg = var_regs.at(t.var());
      } else {
        SI_ASSIGN_OR_RETURN(Reg r, AllocReg(p, t.var(), &var_regs));
        s.kind = UnifyStep::Kind::kBindReg;
        s.reg = r;
        local_bound.insert(t.var());
      }
      ac.unify.push_back(s);
    }
    bound = VarSet(local_bound.begin(), local_bound.end());
    p->atoms.push_back(std::move(ac));
  }

  for (const Term& h : q.head()) {
    if (h.is_const()) continue;
    if (p->params.count(h.var())) continue;
    auto it = var_regs.find(h.var());
    if (it == var_regs.end()) {
      return Status::Unimplemented("head variable '" + h.var().name() +
                                   "' is not bound by the chase");
    }
    p->embed_head_regs.push_back(it->second);
  }
  if (p->num_regs == 0) p->num_regs = 1;
  return std::shared_ptr<const CompiledProgram>(std::move(prog));
}

CompiledPlanSet::Mode CompiledPlanSet::ParseMode(std::string_view text) {
  if (text == "off") return Mode::kOff;
  if (text == "on") return Mode::kOn;
  return Mode::kAuto;
}

const char* CompiledPlanSet::ModeName(Mode mode) {
  switch (mode) {
    case Mode::kOff:
      return "off";
    case Mode::kOn:
      return "on";
    case Mode::kAuto:
      return "auto";
  }
  return "auto";
}

template <typename CompileFn>
std::shared_ptr<const CompiledProgram> CompiledPlanSet::GetOrCompile(
    Mode mode, const std::string& key, const CompileFn& compile,
    std::string* why, bool* failed) {
  if (failed != nullptr) *failed = false;
  if (mode == Mode::kOff) {
    if (why != nullptr) *why = "off";
    return nullptr;
  }
  std::lock_guard<std::mutex> lock(mu_);
  PlanSlot& slot = slots_[key];
  ++slot.sightings;
  if (slot.program != nullptr) {
    if (why != nullptr) why->clear();
    return slot.program;
  }
  if (slot.failed) {
    if (why != nullptr) *why = slot.reason;
    if (failed != nullptr) *failed = true;
    return nullptr;
  }
  if (mode == Mode::kAuto && slot.sightings < 2) {
    if (why != nullptr) *why = "auto: deferred until second sighting";
    return nullptr;
  }
  Result<std::shared_ptr<const CompiledProgram>> result = compile();
  if (result.ok()) {
    slot.program = std::move(result).ValueOrDie();
    ++compiles_;
    if (why != nullptr) why->clear();
    return slot.program;
  }
  slot.failed = true;
  slot.reason = result.status().message();
  if (why != nullptr) *why = slot.reason;
  if (failed != nullptr) *failed = true;
  return nullptr;
}

std::shared_ptr<const CompiledProgram> CompiledPlanSet::GetOrCompilePlain(
    Mode mode, const FoQuery& q,
    const std::shared_ptr<const ControllabilityAnalysis>& analysis,
    const VarSet& param_vars, std::string* why, bool* failed) {
  return GetOrCompile(
      mode, "plain\x1f" + VarSetToString(param_vars),
      [&] { return CompilePlain(q, analysis, param_vars); }, why, failed);
}

std::shared_ptr<const CompiledProgram> CompiledPlanSet::GetOrCompileEmbedded(
    Mode mode, const std::shared_ptr<const EmbeddedCqAnalysis>& analysis,
    std::string* why, bool* failed) {
  return GetOrCompile(
      mode, "embedded\x1f" + VarSetToString(analysis->params()),
      [&] { return CompileEmbedded(analysis); }, why, failed);
}

uint64_t CompiledPlanSet::compiles() const {
  std::lock_guard<std::mutex> lock(mu_);
  return compiles_;
}

}  // namespace scalein::exec
