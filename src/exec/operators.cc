#include "exec/operators.h"

#include <algorithm>
#include <utility>

#include "util/failpoint.h"

namespace scalein::exec {
namespace {

size_t PositionOf(const std::vector<std::string>& attrs,
                  const std::string& name) {
  auto it = std::find(attrs.begin(), attrs.end(), name);
  SI_CHECK_MSG(it != attrs.end(), name.c_str());
  return static_cast<size_t>(it - attrs.begin());
}

}  // namespace

#if SCALEIN_OBS_ENABLE_RECORDER

void Operator::RecordOpOpen() {
  next_since_event_ = 0;
  fetched_at_event_ = op_->tuples_fetched;
  close_recorded_ = false;
  obs::RecordFlightNums(
      obs::EventKind::kOpOpen, op_->label.c_str(),
      {{"op", static_cast<double>(op_->id)}});
}

void Operator::RecordOpBatch() {
  const uint64_t delta = op_->tuples_fetched - fetched_at_event_;
  next_since_event_ = 0;
  fetched_at_event_ = op_->tuples_fetched;
  obs::RecordFlightNums(
      obs::EventKind::kOpNext, op_->label.c_str(),
      {{"op", static_cast<double>(op_->id)},
       {"rows", static_cast<double>(op_->rows_out)},
       {"fetched_delta", static_cast<double>(delta)}});
}

void Operator::RecordOpClose() {
  close_recorded_ = true;
  obs::RecordFlightNums(
      obs::EventKind::kOpClose, op_->label.c_str(),
      {{"op", static_cast<double>(op_->id)},
       {"rows", static_cast<double>(op_->rows_out)},
       {"fetched", static_cast<double>(op_->tuples_fetched)},
       {"lookups", static_cast<double>(op_->index_lookups)}});
}

#endif  // SCALEIN_OBS_ENABLE_RECORDER

void Operator::TimedOpen() {
  const uint64_t start = obs::MonotonicNowNs();
  DoOpen();
  op_->open_ns += obs::MonotonicNowNs() - start;
}

bool Operator::TimedNext(Tuple* out) {
  const uint64_t start = obs::MonotonicNowNs();
  bool produced = DoNext(out);
  op_->next_ns += obs::MonotonicNowNs() - start;
  ++op_->next_calls;
  if (produced) ++op_->rows_out;
  return produced;
}

CompiledCondition CompiledCondition::Compile(
    const SelectionCondition& cond, const std::vector<std::string>& attrs) {
  CompiledCondition out;
  out.atoms.reserve(cond.conjuncts.size());
  for (const SelectionAtom& c : cond.conjuncts) {
    CompiledAtom a;
    a.lhs = PositionOf(attrs, c.lhs);
    if (c.rhs_kind == SelectionAtom::Rhs::kAttribute) {
      a.rhs_is_attr = true;
      a.rhs_pos = PositionOf(attrs, c.rhs_attr);
    } else {
      a.rhs_const = c.rhs_const;
    }
    a.negated = c.negated;
    out.atoms.push_back(std::move(a));
  }
  return out;
}

ScanOp::ScanOp(ExecContext* ctx, std::string name, const Relation* rel)
    : Operator(ctx, "scan(" + name + ")"),
      rel_(rel),
      slot_(ctx->RelationSlot(name)) {}

bool ScanOp::DoNext(Tuple* out) {
  if (!ctx_->ok() || rel_ == nullptr || next_row_ >= rel_->size()) return false;
  if (Status s = SCALEIN_FAILPOINT("scan_next"); !s.ok()) {
    ctx_->SetError(std::move(s));
    return false;
  }
  TupleView row = rel_->TupleAt(next_row_++);
  ctx_->ChargeRows(slot_, 1, op_);
  // The fetch that trips the budget must not be emitted: stop right here.
  if (!ctx_->ok()) return false;
  out->assign(row.begin(), row.end());
  return true;
}

IndexLookupOp::IndexLookupOp(ExecContext* ctx, std::string name,
                             const Relation* rel,
                             std::vector<size_t> positions, Tuple key)
    : Operator(ctx, "idx-lookup(" + name + ")"),
      rel_(rel),
      name_(std::move(name)),
      positions_(std::move(positions)),
      key_(std::move(key)) {}

void IndexLookupOp::DoOpen() {
  rows_ = rel_ == nullptr
              ? nullptr
              : MeteredIndexLookup(ctx_, name_, *rel_, positions_, key_, op_);
  next_ = 0;
}

bool IndexLookupOp::DoNext(Tuple* out) {
  if (!ctx_->ok() || rows_ == nullptr || next_ >= rows_->size()) return false;
  TupleView row = rel_->TupleAt((*rows_)[next_++]);
  out->assign(row.begin(), row.end());
  return true;
}

ProjectionLookupOp::ProjectionLookupOp(ExecContext* ctx, std::string name,
                                       const Relation* rel,
                                       std::vector<size_t> key_positions,
                                       std::vector<size_t> value_positions,
                                       Tuple key, std::vector<size_t> remap)
    : Operator(ctx, "proj-lookup(" + name + ")"),
      rel_(rel),
      name_(std::move(name)),
      key_positions_(std::move(key_positions)),
      value_positions_(std::move(value_positions)),
      key_(std::move(key)),
      remap_(std::move(remap)) {}

void ProjectionLookupOp::DoOpen() {
  groups_.clear();
  if (rel_ != nullptr) {
    groups_ = MeteredProjectionLookup(ctx_, name_, *rel_, key_positions_,
                                      value_positions_, key_, op_);
  }
  next_ = 0;
}

bool ProjectionLookupOp::DoNext(Tuple* out) {
  if (!ctx_->ok() || next_ >= groups_.size()) return false;
  const Tuple& group = groups_[next_++];
  out->clear();
  out->reserve(remap_.size());
  for (size_t i : remap_) out->push_back(group[i]);
  return true;
}

bool FilterOp::DoNext(Tuple* out) {
  while (child_->Next(out)) {
    if (condition_.Eval(*out)) return true;
  }
  return false;
}

bool ProjectOp::DoNext(Tuple* out) {
  if (!child_->Next(&scratch_)) return false;
  out->clear();
  out->reserve(positions_.size());
  for (size_t p : positions_) out->push_back(scratch_[p]);
  return true;
}

void UnionOp::DoOpen() {
  left_->Open();
  right_->Open();
  on_right_ = false;
}

bool UnionOp::DoNext(Tuple* out) {
  if (!on_right_) {
    if (left_->Next(out)) return true;
    on_right_ = true;
  }
  if (!right_->Next(&scratch_)) return false;
  out->clear();
  out->reserve(align_.size());
  for (size_t p : align_) out->push_back(scratch_[p]);
  return true;
}

void DiffOp::DoOpen() {
  right_rows_.clear();
  right_->Open();
  Tuple row;
  Tuple aligned;
  while (right_->Next(&row)) {
    aligned.clear();
    aligned.reserve(align_.size());
    for (size_t p : align_) aligned.push_back(row[p]);
    right_rows_.insert(aligned);
  }
  left_->Open();
}

bool DiffOp::DoNext(Tuple* out) {
  while (left_->Next(out)) {
    if (right_rows_.find(*out) == right_rows_.end()) return true;
  }
  return false;
}

void HashJoinOp::DoOpen() {
  table_.clear();
  right_->Open();
  Tuple row;
  while (right_->Next(&row)) {
    table_[ProjectTuple(row, r_key_)].push_back(row);
  }
  left_->Open();
  matches_ = nullptr;
  match_next_ = 0;
}

bool HashJoinOp::DoNext(Tuple* out) {
  for (;;) {
    if (matches_ != nullptr && match_next_ < matches_->size()) {
      const Tuple& rrow = (*matches_)[match_next_++];
      *out = left_row_;
      for (size_t rp : r_extra_) out->push_back(rrow[rp]);
      return true;
    }
    if (!left_->Next(&left_row_)) return false;
    auto it = table_.find(ProjectTuple(left_row_, l_key_));
    matches_ = it == table_.end() ? nullptr : &it->second;
    match_next_ = 0;
  }
}

IndexJoinOp::IndexJoinOp(ExecContext* ctx, std::string name,
                         const Relation* rel, std::unique_ptr<Operator> left,
                         std::vector<size_t> index_positions,
                         std::vector<KeySource> key_sources,
                         CompiledCondition residual,
                         std::vector<size_t> emit_positions)
    : Operator(ctx, "idx-join(" + name + ")"),
      name_(std::move(name)),
      rel_(rel),
      left_(std::move(left)),
      index_positions_(std::move(index_positions)),
      key_sources_(std::move(key_sources)),
      residual_(std::move(residual)),
      emit_positions_(std::move(emit_positions)),
      slot_(ctx->RelationSlot(name_)) {
  Adopt(*left_);
  key_.resize(key_sources_.size());
}

void IndexJoinOp::DoOpen() {
  left_->Open();
  left_valid_ = false;
  matches_ = nullptr;
  match_next_ = 0;
  scan_next_ = 0;
}

bool IndexJoinOp::AdvanceLeft() {
  if (!left_->Next(&left_row_)) return false;
  if (index_positions_.empty()) {
    scan_next_ = 0;
  } else {
    for (size_t i = 0; i < key_sources_.size(); ++i) {
      const KeySource& s = key_sources_[i];
      key_[i] = s.from_left ? left_row_[s.left_col] : s.constant;
    }
    matches_ =
        MeteredIndexLookup(ctx_, name_, *rel_, index_positions_, key_, op_);
    match_next_ = 0;
  }
  return true;
}

bool IndexJoinOp::DoNext(Tuple* out) {
  if (rel_ == nullptr) return false;
  for (;;) {
    if (!ctx_->ok()) return false;
    if (!left_valid_) {
      if (!AdvanceLeft()) return false;
      left_valid_ = true;
    }
    if (index_positions_.empty()) {
      // Probe-less atom: a metered nested-loop pass over the base relation
      // per left row (the (R, ∅, N, T) access unit).
      while (scan_next_ < rel_->size()) {
        TupleView row = rel_->TupleAt(scan_next_++);
        ctx_->ChargeRows(slot_, 1, op_);
        if (!ctx_->ok()) return false;
        if (!residual_.Eval(row)) continue;
        *out = left_row_;
        for (size_t p : emit_positions_) out->push_back(row[p]);
        return true;
      }
    } else {
      while (matches_ != nullptr && match_next_ < matches_->size()) {
        TupleView row = rel_->TupleAt((*matches_)[match_next_++]);
        if (!residual_.Eval(row)) continue;
        *out = left_row_;
        for (size_t p : emit_positions_) out->push_back(row[p]);
        return true;
      }
    }
    left_valid_ = false;
  }
}

}  // namespace scalein::exec
