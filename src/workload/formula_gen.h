#ifndef SCALEIN_WORKLOAD_FORMULA_GEN_H_
#define SCALEIN_WORKLOAD_FORMULA_GEN_H_

#include <cstdint>

#include "query/cq.h"
#include "query/formula.h"
#include "query/ra_expr.h"
#include "relational/database.h"
#include "relational/schema.h"
#include "util/rng.h"

namespace scalein {

/// Random query / database generators for property tests and the complexity
/// benchmarks. All generators are deterministic in the supplied Rng.
struct FormulaGenConfig {
  uint64_t num_relations = 3;
  uint64_t max_arity = 3;
  uint64_t num_variables = 4;
  /// Probability that an atom argument is a constant.
  double constant_probability = 0.15;
  /// Constants / database values are drawn from [1, domain_size].
  uint64_t domain_size = 4;
};

/// Schema with relations r0, r1, ... of random arities in [1, max_arity].
Schema RandomSchema(const FormulaGenConfig& config, Rng* rng);

/// Random CQ over `schema` with `num_atoms` atoms and a random head.
/// Guaranteed safe; head variables are distinct.
Cq RandomCq(const Schema& schema, const FormulaGenConfig& config,
            size_t num_atoms, Rng* rng);

/// Random FO *sentence-or-query* over `schema` with roughly `size` connective
/// nodes. Quantifiers, conjunction, disjunction, and negation are mixed; the
/// result's free variables become the head.
FoQuery RandomFoQuery(const Schema& schema, const FormulaGenConfig& config,
                      size_t size, Rng* rng);

/// Random database over `schema`: `num_tuples` tuples with values drawn
/// uniformly from [1, domain_size].
Database RandomDatabase(const Schema& schema, const FormulaGenConfig& config,
                        size_t num_tuples, Rng* rng);

/// Random well-formed relational algebra expression over `schema` with about
/// `size` operator nodes. Selections reference live attributes, projections
/// keep a nonempty subset, and ∪/− pair an expression with a selection of
/// itself so attribute sets always match.
RaExpr RandomRaExpr(const Schema& schema, const FormulaGenConfig& config,
                    size_t size, Rng* rng);

}  // namespace scalein

#endif  // SCALEIN_WORKLOAD_FORMULA_GEN_H_
