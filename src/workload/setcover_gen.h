#ifndef SCALEIN_WORKLOAD_SETCOVER_GEN_H_
#define SCALEIN_WORKLOAD_SETCOVER_GEN_H_

#include <cstdint>

#include "query/cq.h"
#include "relational/database.h"
#include "relational/schema.h"

namespace scalein {

/// Planted set-cover instances in the shape of the Theorem 3.3 lower bound:
/// the NP-hardness of QDSI's data complexity comes from set cover, and the
/// instance below makes the correspondence literal. Over
///   setrep(s), covers(s, x)
/// and the query
///   Q(x) :- setrep(s), covers(s, x)
/// each answer x needs one support {setrep(s), covers(s,x)}; the covers-tuple
/// is private to (s, x) but setrep(s) is shared, so the minimum witness is
/// |elements| + (minimum number of sets covering all elements). A cover of
/// size `planted_cover_size` is planted; noise memberships are added on top.
struct SetCoverConfig {
  uint64_t num_elements = 30;
  uint64_t num_sets = 10;
  uint64_t planted_cover_size = 3;
  /// Extra random (set, element) memberships beyond the planted cover.
  uint64_t noise_memberships = 40;
  uint64_t seed = 7;
};

struct SetCoverInstance {
  Schema schema;
  Database db;
  Cq query;
  uint64_t planted_cover_size = 0;

  /// The witness-size value a minimum cover of the planted size implies.
  uint64_t PlantedWitnessSize(uint64_t num_elements) const {
    return num_elements + planted_cover_size;
  }
};

SetCoverInstance GenerateSetCover(const SetCoverConfig& config);

}  // namespace scalein

#endif  // SCALEIN_WORKLOAD_SETCOVER_GEN_H_
