#ifndef SCALEIN_WORKLOAD_UPDATE_GEN_H_
#define SCALEIN_WORKLOAD_UPDATE_GEN_H_

#include "incremental/delta_rules.h"
#include "util/rng.h"
#include "workload/social_gen.h"

namespace scalein {

/// Random valid update against `db`: `num_insertions` fresh tuples with
/// values in [1, domain_size] plus `num_deletions` existing tuples, spread
/// over the schema's relations. Always satisfies Update::Validate.
Update RandomUpdate(const Database& db, size_t num_insertions,
                    size_t num_deletions, uint64_t domain_size, Rng* rng);

/// The Example 1.1(b) update stream: a batch of fresh visit insertions for
/// random persons/restaurants of a social database (undated or dated layout
/// is detected from the schema).
Update VisitInsertions(const Database& social_db, const SocialConfig& config,
                       size_t count, Rng* rng);

}  // namespace scalein

#endif  // SCALEIN_WORKLOAD_UPDATE_GEN_H_
