#include "workload/update_gen.h"

#include <algorithm>

namespace scalein {

Update RandomUpdate(const Database& db, size_t num_insertions,
                    size_t num_deletions, uint64_t domain_size, Rng* rng) {
  Update u;
  const std::vector<RelationSchema>& relations = db.schema().relations();
  SI_CHECK(!relations.empty());

  std::set<std::pair<std::string, Tuple>> chosen_insert;
  size_t attempts = 0;
  while (chosen_insert.size() < num_insertions && attempts < 64 * (num_insertions + 1)) {
    ++attempts;
    const RelationSchema& rs = relations[rng->Uniform(relations.size())];
    Tuple t;
    t.reserve(rs.arity());
    for (size_t a = 0; a < rs.arity(); ++a) {
      t.push_back(
          Value::Int(1 + static_cast<int64_t>(rng->Uniform(domain_size))));
    }
    if (db.relation(rs.name()).Contains(t)) continue;
    if (chosen_insert.emplace(rs.name(), t).second) {
      u.AddInsertion(rs.name(), std::move(t));
    }
  }

  std::set<std::pair<std::string, Tuple>> chosen_delete;
  attempts = 0;
  while (chosen_delete.size() < num_deletions && attempts < 64 * (num_deletions + 1)) {
    ++attempts;
    const RelationSchema& rs = relations[rng->Uniform(relations.size())];
    const Relation& rel = db.relation(rs.name());
    if (rel.empty()) continue;
    Tuple t = ToTuple(rel.TupleAt(rng->Uniform(rel.size())));
    if (chosen_delete.emplace(rs.name(), t).second) {
      u.AddDeletion(rs.name(), std::move(t));
    }
  }
  return u;
}

Update VisitInsertions(const Database& social_db, const SocialConfig& config,
                       size_t count, Rng* rng) {
  Update u;
  const Relation& visit = social_db.relation("visit");
  const bool dated = visit.arity() == 5;
  std::set<Tuple> chosen;
  std::set<Tuple> batch_dates;  // (id, yy, mm, dd) already used in this batch
  size_t attempts = 0;
  while (chosen.size() < count && attempts < 64 * (count + 1)) {
    ++attempts;
    int64_t id = static_cast<int64_t>(rng->Uniform(config.num_persons));
    int64_t rid = static_cast<int64_t>(
        rng->Uniform(std::max<uint64_t>(1, config.num_restaurants)));
    Tuple t;
    if (dated) {
      int64_t yy = static_cast<int64_t>(
          config.first_year + rng->Uniform(std::max<uint64_t>(1, config.num_years)));
      int64_t mm = 1 + static_cast<int64_t>(rng->Uniform(12));
      int64_t dd = 1 + static_cast<int64_t>(rng->Uniform(28));
      // Keep the one-visit-per-day FD: skip dates this person already has.
      const HashIndex& by_person_date =
          const_cast<Relation&>(visit).EnsureIndex({0, 2, 3, 4});
      Tuple fd_key{Value::Int(id), Value::Int(yy), Value::Int(mm),
                   Value::Int(dd)};
      if (by_person_date.Lookup(fd_key) != nullptr) continue;
      if (!batch_dates.insert(fd_key).second) continue;
      t = Tuple{Value::Int(id), Value::Int(rid), Value::Int(yy), Value::Int(mm),
                Value::Int(dd)};
    } else {
      t = Tuple{Value::Int(id), Value::Int(rid)};
    }
    if (visit.Contains(t)) continue;
    if (chosen.insert(t).second) u.AddInsertion("visit", std::move(t));
  }
  return u;
}

}  // namespace scalein
