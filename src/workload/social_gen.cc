#include "workload/social_gen.h"

#include <algorithm>
#include <set>

#include "util/rng.h"
#include "util/strings.h"

namespace scalein {

Schema SocialSchema(bool dated_visits) {
  Schema schema;
  schema.Relation("person", {"id", "name", "city"});
  schema.Relation("friend", {"id1", "id2"});
  schema.Relation("restr", {"rid", "name", "city", "rating"});
  if (dated_visits) {
    schema.Relation("visit", {"id", "rid", "yy", "mm", "dd"});
  } else {
    schema.Relation("visit", {"id", "rid"});
  }
  return schema;
}

AccessSchema SocialAccessSchema(const SocialConfig& config) {
  AccessSchema access;
  access.Add("friend", {"id1"}, config.max_friends_per_person);
  access.AddKey("person", {"id"});
  access.AddKey("restr", {"rid"});
  access.Add("restr", {"city"}, std::max<uint64_t>(1, config.num_restaurants));
  if (config.dated_visits) {
    // A year has at most 366 days (Example 4.6).
    access.AddEmbedded("visit", {"yy"}, {"yy", "mm", "dd"}, 366);
    // Each person dines out at most once per day (the effective FD).
    access.AddFd("visit", {"id", "yy", "mm", "dd"}, {"rid"});
  }
  return access;
}

Database GenerateSocial(const SocialConfig& config) {
  Database db(SocialSchema(config.dated_visits));
  Rng rng(config.seed);

  auto city_name = [&](uint64_t c) {
    return c == 0 ? std::string(kNyc) : "city" + std::to_string(c);
  };

  // Size the column stores up front: generation is the dominant cost of the
  // large-|D| benchmark points, and the repeated doubling of unreserved
  // vectors shows up there.
  db.relation("person").Reserve(config.num_persons);
  db.relation("restr").Reserve(config.num_restaurants);
  db.relation("friend").Reserve(config.num_persons *
                                (config.max_friends_per_person / 2 + 1));
  db.relation("visit").Reserve(config.num_persons *
                               config.avg_visits_per_person);

  // Persons: id is a key by construction.
  for (uint64_t i = 0; i < config.num_persons; ++i) {
    uint64_t city = rng.Uniform(std::max<uint64_t>(1, config.num_cities));
    db.Insert("person",
              Tuple{Value::Int(static_cast<int64_t>(i)),
                    Value::Str("p" + std::to_string(i)),
                    Value::Str(city_name(city))});
  }

  // Restaurants: rid key; rating A/B/C.
  static const char* kRatings[] = {"A", "B", "C"};
  for (uint64_t r = 0; r < config.num_restaurants; ++r) {
    uint64_t city = rng.Uniform(std::max<uint64_t>(1, config.num_cities));
    db.Insert("restr",
              Tuple{Value::Int(static_cast<int64_t>(r)),
                    Value::Str("r" + std::to_string(r)),
                    Value::Str(city_name(city)),
                    Value::Str(kRatings[rng.Uniform(3)])});
  }

  // Friendships: at most max_friends_per_person out-edges per person.
  for (uint64_t i = 0; i < config.num_persons; ++i) {
    uint64_t cap = std::max<uint64_t>(1, config.max_friends_per_person);
    uint64_t degree = 1 + rng.Uniform(cap);
    std::set<uint64_t> picked;
    for (uint64_t f = 0; f < degree && picked.size() < config.num_persons - 1;
         ++f) {
      uint64_t other = rng.Uniform(config.num_persons);
      if (other == i || !picked.insert(other).second) continue;
      db.Insert("friend", Tuple{Value::Int(static_cast<int64_t>(i)),
                                Value::Int(static_cast<int64_t>(other))});
    }
  }

  // Visits. For dated visits, distinct (yy, mm, dd) per person keeps the
  // one-visit-per-day FD intact.
  for (uint64_t i = 0; i < config.num_persons; ++i) {
    uint64_t visits =
        config.avg_visits_per_person == 0
            ? 0
            : rng.Uniform(2 * config.avg_visits_per_person + 1);
    std::set<Tuple> dates;
    for (uint64_t v = 0; v < visits; ++v) {
      uint64_t rid =
          config.num_restaurants == 0
              ? 0
              : rng.Zipf(config.num_restaurants, config.restaurant_skew);
      if (!config.dated_visits) {
        db.Insert("visit", Tuple{Value::Int(static_cast<int64_t>(i)),
                                 Value::Int(static_cast<int64_t>(rid))});
        continue;
      }
      uint64_t yy = config.first_year +
                    rng.Uniform(std::max<uint64_t>(1, config.num_years));
      uint64_t mm = 1 + rng.Uniform(12);
      uint64_t dd = 1 + rng.Uniform(28);
      Tuple date{Value::Int(static_cast<int64_t>(yy)),
                 Value::Int(static_cast<int64_t>(mm)),
                 Value::Int(static_cast<int64_t>(dd))};
      if (!dates.insert(date).second) continue;  // keep the FD
      db.Insert("visit", Tuple{Value::Int(static_cast<int64_t>(i)),
                               Value::Int(static_cast<int64_t>(rid)), date[0],
                               date[1], date[2]});
    }
  }
  return db;
}

}  // namespace scalein
