#include "workload/formula_gen.h"

#include <algorithm>

namespace scalein {
namespace {

Variable PoolVariable(uint64_t i) {
  return Variable::Named("x" + std::to_string(i));
}

Term RandomTerm(const FormulaGenConfig& config, Rng* rng) {
  if (rng->Bernoulli(config.constant_probability)) {
    return Term::Const(
        Value::Int(1 + static_cast<int64_t>(rng->Uniform(config.domain_size))));
  }
  return Term::Var(PoolVariable(rng->Uniform(config.num_variables)));
}

CqAtom RandomAtom(const Schema& schema, const FormulaGenConfig& config,
                  Rng* rng) {
  const RelationSchema& rs =
      schema.relations()[rng->Uniform(schema.relations().size())];
  CqAtom atom;
  atom.relation = rs.name();
  atom.args.reserve(rs.arity());
  for (size_t i = 0; i < rs.arity(); ++i) {
    atom.args.push_back(RandomTerm(config, rng));
  }
  return atom;
}

Formula RandomFormulaImpl(const Schema& schema, const FormulaGenConfig& config,
                          size_t budget, Rng* rng) {
  if (budget <= 1) {
    if (rng->Bernoulli(0.8)) {
      CqAtom atom = RandomAtom(schema, config, rng);
      return Formula::Atom(atom.relation, atom.args);
    }
    return Formula::Eq(RandomTerm(config, rng), RandomTerm(config, rng));
  }
  switch (rng->Uniform(6)) {
    case 0: {
      size_t left = 1 + rng->Uniform(budget - 1);
      return Formula::And(RandomFormulaImpl(schema, config, left, rng),
                          RandomFormulaImpl(schema, config, budget - left, rng));
    }
    case 1: {
      size_t left = 1 + rng->Uniform(budget - 1);
      return Formula::Or(RandomFormulaImpl(schema, config, left, rng),
                         RandomFormulaImpl(schema, config, budget - left, rng));
    }
    case 2:
      return Formula::Not(RandomFormulaImpl(schema, config, budget - 1, rng));
    case 3: {
      Variable v = PoolVariable(rng->Uniform(config.num_variables));
      return Formula::Exists({v},
                             RandomFormulaImpl(schema, config, budget - 1, rng));
    }
    case 4: {
      Variable v = PoolVariable(rng->Uniform(config.num_variables));
      size_t left = 1 + rng->Uniform(budget - 1);
      return Formula::Forall(
          {v},
          Formula::Implies(
              RandomFormulaImpl(schema, config, left, rng),
              RandomFormulaImpl(schema, config, budget - left, rng)));
    }
    default: {
      size_t left = 1 + rng->Uniform(budget - 1);
      return Formula::Implies(
          RandomFormulaImpl(schema, config, left, rng),
          RandomFormulaImpl(schema, config, budget - left, rng));
    }
  }
}

}  // namespace

Schema RandomSchema(const FormulaGenConfig& config, Rng* rng) {
  Schema schema;
  for (uint64_t r = 0; r < config.num_relations; ++r) {
    size_t arity = 1 + rng->Uniform(std::max<uint64_t>(1, config.max_arity));
    std::vector<std::string> attrs;
    attrs.reserve(arity);
    for (size_t a = 0; a < arity; ++a) attrs.push_back("a" + std::to_string(a));
    schema.Relation("r" + std::to_string(r), attrs);
  }
  return schema;
}

Cq RandomCq(const Schema& schema, const FormulaGenConfig& config,
            size_t num_atoms, Rng* rng) {
  std::vector<CqAtom> atoms;
  atoms.reserve(std::max<size_t>(1, num_atoms));
  for (size_t i = 0; i < std::max<size_t>(1, num_atoms); ++i) {
    atoms.push_back(RandomAtom(schema, config, rng));
  }
  VarSet body_vars;
  for (const CqAtom& a : atoms) {
    VarSet av = a.Vars();
    body_vars.insert(av.begin(), av.end());
  }
  std::vector<Term> head;
  for (const Variable& v : body_vars) {
    if (rng->Bernoulli(0.5)) head.push_back(Term::Var(v));
  }
  return Cq("q", std::move(head), std::move(atoms));
}

FoQuery RandomFoQuery(const Schema& schema, const FormulaGenConfig& config,
                      size_t size, Rng* rng) {
  Formula body = RandomFormulaImpl(schema, config, std::max<size_t>(1, size),
                                   rng);
  FoQuery q;
  q.name = "q";
  const VarSet& free = body.FreeVariables();
  q.head.assign(free.begin(), free.end());
  q.body = std::move(body);
  return q;
}

RaExpr RandomRaExpr(const Schema& schema, const FormulaGenConfig& config,
                    size_t size, Rng* rng) {
  if (size <= 1) {
    const RelationSchema& rs =
        schema.relations()[rng->Uniform(schema.relations().size())];
    return RaExpr::Relation(rs.name(), rs.attributes());
  }
  switch (rng->Uniform(6)) {
    case 0: {  // selection
      RaExpr input = RandomRaExpr(schema, config, size - 1, rng);
      const std::vector<std::string>& attrs = input.attributes();
      SelectionCondition cond;
      SelectionAtom atom;
      const std::string& lhs = attrs[rng->Uniform(attrs.size())];
      if (rng->Bernoulli(0.5) && attrs.size() > 1) {
        const std::string& rhs = attrs[rng->Uniform(attrs.size())];
        atom = rng->Bernoulli(0.25) ? SelectionAtom::AttrNeqAttr(lhs, rhs)
                                    : SelectionAtom::AttrEqAttr(lhs, rhs);
      } else {
        Value c = Value::Int(
            1 + static_cast<int64_t>(rng->Uniform(config.domain_size)));
        atom = rng->Bernoulli(0.25) ? SelectionAtom::AttrNeqConst(lhs, c)
                                    : SelectionAtom::AttrEqConst(lhs, c);
      }
      cond.conjuncts.push_back(std::move(atom));
      return RaExpr::Select(std::move(input), std::move(cond));
    }
    case 1: {  // projection onto a random nonempty subset
      RaExpr input = RandomRaExpr(schema, config, size - 1, rng);
      const std::vector<std::string>& attrs = input.attributes();
      std::vector<std::string> keep;
      for (const std::string& a : attrs) {
        if (rng->Bernoulli(0.6)) keep.push_back(a);
      }
      if (keep.empty()) keep.push_back(attrs[rng->Uniform(attrs.size())]);
      return RaExpr::Project(std::move(input), std::move(keep));
    }
    case 2: {  // rename one attribute to a fresh name
      RaExpr input = RandomRaExpr(schema, config, size - 1, rng);
      const std::vector<std::string>& attrs = input.attributes();
      const std::string& from = attrs[rng->Uniform(attrs.size())];
      std::string to = Variable::Fresh("col").name();
      return RaExpr::Rename(std::move(input),
                            {{from, std::move(to)}});
    }
    case 3:    // union with a selection of itself (attr sets match)
    case 4: {  // difference, same trick
      RaExpr left = RandomRaExpr(schema, config, size - 1, rng);
      const std::vector<std::string>& attrs = left.attributes();
      SelectionCondition cond;
      cond.conjuncts.push_back(SelectionAtom::AttrEqConst(
          attrs[rng->Uniform(attrs.size())],
          Value::Int(1 + static_cast<int64_t>(rng->Uniform(config.domain_size)))));
      RaExpr right = RaExpr::Select(left, std::move(cond));
      return rng->Bernoulli(0.5) ? RaExpr::Union(std::move(left), std::move(right))
                                 : RaExpr::Diff(std::move(left), std::move(right));
    }
    default: {  // join
      size_t left_size = 1 + rng->Uniform(size - 1);
      RaExpr left = RandomRaExpr(schema, config, left_size, rng);
      RaExpr right = RandomRaExpr(schema, config, size - left_size, rng);
      // A join is only well-formed when non-shared attribute names stay
      // unique; our leaves reuse schema attribute names, so name clashes are
      // impossible (shared names join naturally). Renamed columns are fresh.
      return RaExpr::Join(std::move(left), std::move(right));
    }
  }
}

Database RandomDatabase(const Schema& schema, const FormulaGenConfig& config,
                        size_t num_tuples, Rng* rng) {
  Database db(schema);
  for (size_t i = 0; i < num_tuples; ++i) {
    const RelationSchema& rs =
        schema.relations()[rng->Uniform(schema.relations().size())];
    Tuple t;
    t.reserve(rs.arity());
    for (size_t a = 0; a < rs.arity(); ++a) {
      t.push_back(Value::Int(
          1 + static_cast<int64_t>(rng->Uniform(config.domain_size))));
    }
    db.Insert(rs.name(), t);
  }
  return db;
}

}  // namespace scalein
