#ifndef SCALEIN_WORKLOAD_SOCIAL_GEN_H_
#define SCALEIN_WORKLOAD_SOCIAL_GEN_H_

#include <cstdint>

#include "core/access_schema.h"
#include "relational/database.h"
#include "relational/schema.h"

namespace scalein {

/// Synthetic stand-in for the paper's Facebook Graph Search workload
/// (Example 1.1). The generator reproduces the *structural constraints* the
/// paper's arguments rest on — the per-user friend cap, `id` as a key of
/// `person`, `rid` as a key of `restr`, and (for dated visits) the
/// one-visit-per-day FD — so generated databases provably conform to
/// `SocialAccessSchema`. Everything else (names, popularity skew) is
/// incidental color.
struct SocialConfig {
  uint64_t num_persons = 1000;
  /// The Facebook-style cap: at most this many friend(id1, ·) tuples per id1.
  uint64_t max_friends_per_person = 50;
  uint64_t num_restaurants = 200;
  /// Average visit tuples per person.
  uint64_t avg_visits_per_person = 5;
  uint64_t num_cities = 10;
  /// Extend visit with (yy, mm, dd) and enforce the Example 4.6 FD
  /// id, yy, mm, dd → rid.
  bool dated_visits = false;
  uint64_t first_year = 2011;
  uint64_t num_years = 3;
  /// Zipf exponent for restaurant popularity (0 = uniform).
  double restaurant_skew = 0.8;
  uint64_t seed = 42;
};

/// person(id, name, city); friend(id1, id2); restr(rid, name, city, rating);
/// visit(id, rid) or visit(id, rid, yy, mm, dd).
Schema SocialSchema(bool dated_visits);

/// The declared access schema of Example 1.1 / 4.6:
///   (friend, {id1}, F, 1), (person, {id}, 1, 1), (restr, {rid}, 1, 1),
///   (restr, {city}, num_restaurants, 1), and for dated visits the embedded
///   (visit, yy[yy, mm, dd], 366, 1) plus the FD id,yy,mm,dd → rid.
AccessSchema SocialAccessSchema(const SocialConfig& config);

/// Generates a database conforming to SocialAccessSchema(config).
Database GenerateSocial(const SocialConfig& config);

/// Name of the city every example query filters on.
inline const char* kNyc = "NYC";

}  // namespace scalein

#endif  // SCALEIN_WORKLOAD_SOCIAL_GEN_H_
