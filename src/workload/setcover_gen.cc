#include "workload/setcover_gen.h"

#include "query/parser.h"
#include "util/rng.h"

namespace scalein {

SetCoverInstance GenerateSetCover(const SetCoverConfig& config) {
  Schema schema;
  schema.Relation("setrep", {"s"});
  schema.Relation("covers", {"s", "x"});

  Database db(schema);
  Rng rng(config.seed);

  db.relation("setrep").Reserve(config.num_sets);
  db.relation("covers").Reserve(config.num_elements +
                                config.noise_memberships);

  for (uint64_t s = 0; s < config.num_sets; ++s) {
    db.Insert("setrep", Tuple{Value::Int(static_cast<int64_t>(s))});
  }
  // Plant a cover: elements are split round-robin over the first
  // `planted_cover_size` sets.
  uint64_t cover = std::max<uint64_t>(1, config.planted_cover_size);
  for (uint64_t x = 0; x < config.num_elements; ++x) {
    uint64_t s = x % cover;
    db.Insert("covers", Tuple{Value::Int(static_cast<int64_t>(s)),
                              Value::Int(static_cast<int64_t>(x))});
  }
  // Noise memberships (avoiding accidental smaller covers is not required:
  // the planted size is an upper bound on the optimum).
  for (uint64_t i = 0; i < config.noise_memberships; ++i) {
    uint64_t s = rng.Uniform(std::max<uint64_t>(1, config.num_sets));
    uint64_t x = rng.Uniform(std::max<uint64_t>(1, config.num_elements));
    db.Insert("covers", Tuple{Value::Int(static_cast<int64_t>(s)),
                              Value::Int(static_cast<int64_t>(x))});
  }

  Result<Cq> q = ParseCq("Q(x) :- setrep(s), covers(s, x)", &schema);
  SI_CHECK(q.ok());
  SetCoverInstance out{std::move(schema), std::move(db), *std::move(q),
                       config.planted_cover_size};
  return out;
}

}  // namespace scalein
