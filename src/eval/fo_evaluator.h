#ifndef SCALEIN_EVAL_FO_EVALUATOR_H_
#define SCALEIN_EVAL_FO_EVALUATOR_H_

#include <map>

#include "eval/answer_set.h"
#include "query/formula.h"
#include "relational/database.h"

namespace scalein {

/// Reference evaluator for FO queries under the active-domain semantics of §2:
/// quantifiers range over adom(D) and the answer to Q(x̄) is
/// { ā ∈ adom(D)^m | D ⊨ Q(ā) }.
///
/// This evaluator is deliberately naive (exponential in quantifier depth ×
/// |adom|); it is the executable *definition* against which every optimized
/// engine in the library — the CQ evaluator, the bounded executor of Theorem
/// 4.2, the incremental maintainer — is property-tested. Use it only on small
/// databases.
class FoEvaluator {
 public:
  explicit FoEvaluator(const Database* db);

  /// Answers Q(ā, ·): `binding` fixes values for a subset of the head
  /// variables; the result ranges over the *remaining* head variables, in
  /// head order (the set Q(ā, D) of §2).
  AnswerSet Evaluate(const FoQuery& query, const Binding& binding = {}) const;

  /// Truth value of a Boolean query (empty head).
  bool EvaluateBoolean(const FoQuery& query) const;

  /// D ⊨ f under `env`, which must bind every free variable of `f`.
  bool Holds(const Formula& f, const Binding& env) const;

 private:
  bool HoldsQuantified(const Formula& body, const std::vector<Variable>& vars,
                       size_t next, bool is_exists, Binding* env) const;

  const Database* db_;
  std::vector<Value> adom_;
};

}  // namespace scalein

#endif  // SCALEIN_EVAL_FO_EVALUATOR_H_
