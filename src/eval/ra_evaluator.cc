#include "eval/ra_evaluator.h"

#include <algorithm>

#include "exec/exec_context.h"
#include "exec/planner.h"

namespace scalein {

const Relation* RaContext::Lookup(const std::string& name) const {
  auto it = overrides.find(name);
  if (it != overrides.end()) return it->second;
  if (db == nullptr) return nullptr;
  return db->FindRelation(name);
}

namespace {

size_t PositionOf(const std::vector<std::string>& attrs,
                  const std::string& name) {
  auto it = std::find(attrs.begin(), attrs.end(), name);
  SI_CHECK_MSG(it != attrs.end(), name.c_str());
  return static_cast<size_t>(it - attrs.begin());
}

}  // namespace

bool EvalCondition(const SelectionCondition& cond,
                   const std::vector<std::string>& attrs, TupleView row) {
  for (const SelectionAtom& c : cond.conjuncts) {
    const Value& lhs = row[PositionOf(attrs, c.lhs)];
    Value rhs = c.rhs_kind == SelectionAtom::Rhs::kAttribute
                    ? row[PositionOf(attrs, c.rhs_attr)]
                    : c.rhs_const;
    bool eq = lhs == rhs;
    if (eq == c.negated) return false;
  }
  return true;
}

Relation EvalRa(const RaExpr& expr, const RaContext& ctx) {
  // Thin wrapper over the unified execution engine: lower to a pull-based
  // operator tree (index-aware joins, selection pushdown into index
  // lookups), then drain into a materialized relation.
  exec::ExecContext ectx(ctx.db);
  for (const auto& [name, rel] : ctx.overrides) ectx.AddOverride(name, rel);
  exec::Plan plan = exec::PlanRa(expr, &ectx);
  return exec::DrainToRelation(plan.root.get(), plan.attributes.size());
}

Relation EvalRa(const RaExpr& expr, const Database& db) {
  RaContext ctx;
  ctx.db = &db;
  return EvalRa(expr, ctx);
}

}  // namespace scalein
