#include "eval/ra_evaluator.h"

#include <algorithm>

namespace scalein {

const Relation* RaContext::Lookup(const std::string& name) const {
  auto it = overrides.find(name);
  if (it != overrides.end()) return it->second;
  if (db == nullptr) return nullptr;
  return db->FindRelation(name);
}

namespace {

size_t PositionOf(const std::vector<std::string>& attrs,
                  const std::string& name) {
  auto it = std::find(attrs.begin(), attrs.end(), name);
  SI_CHECK_MSG(it != attrs.end(), name.c_str());
  return static_cast<size_t>(it - attrs.begin());
}

std::vector<size_t> PositionsOf(const std::vector<std::string>& attrs,
                                const std::vector<std::string>& names) {
  std::vector<size_t> out;
  out.reserve(names.size());
  for (const std::string& n : names) out.push_back(PositionOf(attrs, n));
  return out;
}

}  // namespace

bool EvalCondition(const SelectionCondition& cond,
                   const std::vector<std::string>& attrs, TupleView row) {
  for (const SelectionAtom& c : cond.conjuncts) {
    const Value& lhs = row[PositionOf(attrs, c.lhs)];
    Value rhs = c.rhs_kind == SelectionAtom::Rhs::kAttribute
                    ? row[PositionOf(attrs, c.rhs_attr)]
                    : c.rhs_const;
    bool eq = lhs == rhs;
    if (eq == c.negated) return false;
  }
  return true;
}

Relation EvalRa(const RaExpr& expr, const RaContext& ctx) {
  switch (expr.kind()) {
    case RaExpr::Kind::kRelation: {
      const Relation* rel = ctx.Lookup(expr.relation_name());
      Relation out(expr.attributes().size());
      if (rel == nullptr) return out;
      SI_CHECK_EQ(rel->arity(), expr.attributes().size());
      for (size_t i = 0; i < rel->size(); ++i) out.Insert(rel->TupleAt(i));
      return out;
    }
    case RaExpr::Kind::kSelect: {
      Relation in = EvalRa(expr.input(), ctx);
      Relation out(in.arity());
      const std::vector<std::string>& attrs = expr.input().attributes();
      for (size_t i = 0; i < in.size(); ++i) {
        TupleView row = in.TupleAt(i);
        if (EvalCondition(expr.condition(), attrs, row)) out.Insert(row);
      }
      return out;
    }
    case RaExpr::Kind::kProject: {
      Relation in = EvalRa(expr.input(), ctx);
      std::vector<size_t> positions =
          PositionsOf(expr.input().attributes(), expr.projection());
      Relation out(positions.size());
      for (size_t i = 0; i < in.size(); ++i) {
        out.Insert(ProjectTuple(in.TupleAt(i), positions));
      }
      return out;
    }
    case RaExpr::Kind::kRename:
      return EvalRa(expr.input(), ctx);  // data unchanged, names only
    case RaExpr::Kind::kUnion: {
      Relation lhs = EvalRa(expr.left(), ctx);
      Relation rhs = EvalRa(expr.right(), ctx);
      // Align right columns to left's order by attribute name.
      std::vector<size_t> align =
          PositionsOf(expr.right().attributes(), expr.left().attributes());
      Relation out = lhs.Clone();
      for (size_t i = 0; i < rhs.size(); ++i) {
        out.Insert(ProjectTuple(rhs.TupleAt(i), align));
      }
      return out;
    }
    case RaExpr::Kind::kDiff: {
      Relation lhs = EvalRa(expr.left(), ctx);
      Relation rhs = EvalRa(expr.right(), ctx);
      std::vector<size_t> align =
          PositionsOf(expr.right().attributes(), expr.left().attributes());
      Relation aligned(lhs.arity());
      for (size_t i = 0; i < rhs.size(); ++i) {
        aligned.Insert(ProjectTuple(rhs.TupleAt(i), align));
      }
      Relation out(lhs.arity());
      for (size_t i = 0; i < lhs.size(); ++i) {
        if (!aligned.Contains(lhs.TupleAt(i))) out.Insert(lhs.TupleAt(i));
      }
      return out;
    }
    case RaExpr::Kind::kJoin: {
      Relation lhs = EvalRa(expr.left(), ctx);
      Relation rhs = EvalRa(expr.right(), ctx);
      const std::vector<std::string>& lattrs = expr.left().attributes();
      const std::vector<std::string>& rattrs = expr.right().attributes();
      AttrSet lset(lattrs.begin(), lattrs.end());
      // Shared attributes and the right-side extras, by position.
      std::vector<size_t> l_shared;
      std::vector<size_t> r_shared;
      std::vector<size_t> r_extra;
      for (size_t rp = 0; rp < rattrs.size(); ++rp) {
        if (lset.count(rattrs[rp])) {
          r_shared.push_back(rp);
          l_shared.push_back(PositionOf(lattrs, rattrs[rp]));
        } else {
          r_extra.push_back(rp);
        }
      }
      Relation out(expr.attributes().size());
      if (r_shared.empty()) {
        // Cartesian product.
        for (size_t i = 0; i < lhs.size(); ++i) {
          Tuple base = ToTuple(lhs.TupleAt(i));
          for (size_t j = 0; j < rhs.size(); ++j) {
            Tuple row = base;
            TupleView rrow = rhs.TupleAt(j);
            for (size_t rp : r_extra) row.push_back(rrow[rp]);
            out.Insert(row);
          }
        }
        return out;
      }
      // Hash join keyed on shared attributes (index over right side).
      const HashIndex& index = rhs.EnsureIndex(r_shared);
      // The index canonicalizes positions (sorted); build the matching key
      // order for the left side.
      std::vector<size_t> r_sorted = index.positions();
      std::vector<size_t> l_key;
      l_key.reserve(r_sorted.size());
      for (size_t rp : r_sorted) {
        l_key.push_back(PositionOf(lattrs, rattrs[rp]));
      }
      for (size_t i = 0; i < lhs.size(); ++i) {
        TupleView lrow = lhs.TupleAt(i);
        Tuple key = ProjectTuple(lrow, l_key);
        const std::vector<uint32_t>* rows = index.Lookup(key);
        if (rows == nullptr) continue;
        for (uint32_t r : *rows) {
          TupleView rrow = rhs.TupleAt(r);
          Tuple row(lrow.begin(), lrow.end());
          for (size_t rp : r_extra) row.push_back(rrow[rp]);
          out.Insert(row);
        }
      }
      return out;
    }
  }
  SI_CHECK(false);
  return Relation(0);
}

Relation EvalRa(const RaExpr& expr, const Database& db) {
  RaContext ctx;
  ctx.db = &db;
  return EvalRa(expr, ctx);
}

}  // namespace scalein
