#include "eval/cq_evaluator.h"

#include <algorithm>

#include "exec/exec_context.h"
#include "exec/planner.h"

namespace scalein {
namespace {

/// Converts a value binding to a term substitution.
std::map<Variable, Term> AsSubstitution(const Binding& binding) {
  std::map<Variable, Term> subst;
  for (const auto& [var, value] : binding) subst.emplace(var, Term::Const(value));
  return subst;
}

}  // namespace

AnswerSet CqEvaluator::EvaluateImpl(const Cq& q, bool full_head,
                                    bool stop_at_first) const {
  AnswerSet out;
  exec::ExecContext ctx(db_);
  exec::CqPlan plan = exec::PlanCq(q, &ctx);

  // Head assembly: map each head term to a plan column (or a constant).
  // Resolved lazily on the first row — an EmptyOp plan (unknown relation,
  // arity mismatch) may not bind every variable, and emits nothing anyway.
  std::vector<int> head_map;  // -1 = constant, else column index
  bool mapped = false;
  plan.root->Open();
  Tuple row;
  while (plan.root->Next(&row)) {
    if (!mapped) {
      head_map.reserve(q.head().size());
      for (const Term& h : q.head()) {
        if (h.is_const()) {
          head_map.push_back(-1);
          continue;
        }
        auto it =
            std::find(plan.columns.begin(), plan.columns.end(), h.var());
        SI_CHECK(it != plan.columns.end());
        head_map.push_back(static_cast<int>(it - plan.columns.begin()));
      }
      mapped = true;
    }
    Tuple t;
    size_t hi = 0;
    for (const Term& h : q.head()) {
      int col = head_map[hi++];
      if (col < 0) {
        if (full_head) t.push_back(h.constant());
        continue;
      }
      t.push_back(row[static_cast<size_t>(col)]);
    }
    out.insert(std::move(t));
    if (stop_at_first) break;
  }
  tuples_examined_ += ctx.base_tuples_fetched();
  return out;
}

AnswerSet CqEvaluator::Evaluate(const Cq& q, const Binding& binding) const {
  Cq bound = q.Substitute(AsSubstitution(binding));
  return EvaluateImpl(bound, /*full_head=*/false, /*stop_at_first=*/false);
}

AnswerSet CqEvaluator::EvaluateFull(const Cq& q, const Binding& binding) const {
  Cq bound = q.Substitute(AsSubstitution(binding));
  return EvaluateImpl(bound, /*full_head=*/true, /*stop_at_first=*/false);
}

AnswerSet CqEvaluator::EvaluateFull(const Ucq& q, const Binding& binding) const {
  AnswerSet out;
  for (const Cq& d : q.disjuncts()) {
    AnswerSet part = EvaluateFull(d, binding);
    out.insert(part.begin(), part.end());
  }
  return out;
}

bool CqEvaluator::EvaluateBoolean(const Cq& q, const Binding& binding) const {
  Cq bound = q.Substitute(AsSubstitution(binding));
  AnswerSet out = EvaluateImpl(bound, /*full_head=*/false, /*stop_at_first=*/true);
  return !out.empty();
}

std::optional<Tuple> CqEvaluator::FirstFullAnswer(const Cq& q,
                                                  const Binding& binding) const {
  Cq bound = q.Substitute(AsSubstitution(binding));
  AnswerSet out = EvaluateImpl(bound, /*full_head=*/true, /*stop_at_first=*/true);
  if (out.empty()) return std::nullopt;
  return *out.begin();
}

}  // namespace scalein
