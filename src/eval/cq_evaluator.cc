#include "eval/cq_evaluator.h"

#include <algorithm>

namespace scalein {
namespace {

/// Converts a value binding to a term substitution.
std::map<Variable, Term> AsSubstitution(const Binding& binding) {
  std::map<Variable, Term> subst;
  for (const auto& [var, value] : binding) subst.emplace(var, Term::Const(value));
  return subst;
}

struct SearchState {
  Database* db;
  const std::vector<CqAtom>* atoms;
  std::vector<bool> done;
  Binding env;
  uint64_t* tuples_examined;
  bool stop_at_first = false;
  bool found_any = false;
  // Output assembly.
  const std::vector<Term>* head;
  bool full_head = false;
  AnswerSet* out;

  /// How many argument positions of atom `i` are already value-bound.
  int BoundScore(size_t i) const {
    int score = 0;
    for (const Term& t : (*atoms)[i].args) {
      if (t.is_const() || env.count(t.var())) ++score;
    }
    return score;
  }

  void EmitAnswer() {
    found_any = true;
    Tuple t;
    for (const Term& h : *head) {
      if (h.is_const()) {
        if (full_head) t.push_back(h.constant());
        continue;
      }
      auto it = env.find(h.var());
      SI_CHECK(it != env.end());
      t.push_back(it->second);
    }
    out->insert(std::move(t));
  }

  void Search(size_t remaining) {
    if (stop_at_first && found_any) return;
    if (remaining == 0) {
      EmitAnswer();
      return;
    }
    // Pick the most-bound pending atom; ties broken by relation size.
    size_t best = atoms->size();
    int best_score = -1;
    size_t best_size = 0;
    for (size_t i = 0; i < atoms->size(); ++i) {
      if (done[i]) continue;
      int score = BoundScore(i);
      const Relation* rel = db->FindRelation((*atoms)[i].relation);
      size_t size = rel == nullptr ? 0 : rel->size();
      if (score > best_score ||
          (score == best_score && size < best_size)) {
        best = i;
        best_score = score;
        best_size = size;
      }
    }
    SI_CHECK_LT(best, atoms->size());
    done[best] = true;
    MatchAtom(best, remaining);
    done[best] = false;
  }

  void MatchAtom(size_t idx, size_t remaining) {
    const CqAtom& atom = (*atoms)[idx];
    Relation* rel = const_cast<Relation*>(db->FindRelation(atom.relation));
    if (rel == nullptr || rel->arity() != atom.args.size()) return;

    // Split positions into bound (value known) and open.
    std::vector<size_t> bound_positions;
    Tuple key;
    for (size_t p = 0; p < atom.args.size(); ++p) {
      const Term& t = atom.args[p];
      if (t.is_const()) {
        bound_positions.push_back(p);
        key.push_back(t.constant());
      } else {
        auto it = env.find(t.var());
        if (it != env.end()) {
          bound_positions.push_back(p);
          key.push_back(it->second);
        }
      }
    }

    auto try_row = [&](TupleView row) {
      ++*tuples_examined;
      // Bind open variables, checking repeated-variable consistency.
      std::vector<Variable> newly_bound;
      bool ok = true;
      for (size_t p = 0; p < atom.args.size() && ok; ++p) {
        const Term& t = atom.args[p];
        if (t.is_const()) {
          ok = t.constant() == row[p];
          continue;
        }
        auto it = env.find(t.var());
        if (it != env.end()) {
          ok = it->second == row[p];
        } else {
          env.emplace(t.var(), row[p]);
          newly_bound.push_back(t.var());
        }
      }
      if (ok) Search(remaining - 1);
      for (const Variable& v : newly_bound) env.erase(v);
    };

    if (!bound_positions.empty()) {
      // Canonicalize key to sorted-position order to match index layout.
      std::vector<std::pair<size_t, Value>> kv;
      kv.reserve(bound_positions.size());
      for (size_t i = 0; i < bound_positions.size(); ++i) {
        kv.emplace_back(bound_positions[i], key[i]);
      }
      std::sort(kv.begin(), kv.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      std::vector<size_t> positions;
      Tuple sorted_key;
      for (auto& [p, v] : kv) {
        if (!positions.empty() && positions.back() == p) continue;  // dup var
        positions.push_back(p);
        sorted_key.push_back(v);
      }
      const HashIndex& index = rel->EnsureIndex(positions);
      const std::vector<uint32_t>* rows = index.Lookup(sorted_key);
      if (rows == nullptr) return;
      for (uint32_t r : *rows) {
        if (stop_at_first && found_any) return;
        try_row(rel->TupleAt(r));
      }
    } else {
      for (size_t r = 0; r < rel->size(); ++r) {
        if (stop_at_first && found_any) return;
        try_row(rel->TupleAt(r));
      }
    }
  }
};

}  // namespace

AnswerSet CqEvaluator::EvaluateImpl(const Cq& q, bool full_head,
                                    bool stop_at_first) const {
  AnswerSet out;
  SearchState state;
  state.db = db_;
  std::vector<CqAtom> atoms = q.atoms();
  state.atoms = &atoms;
  state.done.assign(atoms.size(), false);
  state.tuples_examined = &tuples_examined_;
  state.stop_at_first = stop_at_first;
  std::vector<Term> head = q.head();
  state.head = &head;
  state.full_head = full_head;
  state.out = &out;
  state.Search(atoms.size());
  return out;
}

AnswerSet CqEvaluator::Evaluate(const Cq& q, const Binding& binding) const {
  Cq bound = q.Substitute(AsSubstitution(binding));
  return EvaluateImpl(bound, /*full_head=*/false, /*stop_at_first=*/false);
}

AnswerSet CqEvaluator::EvaluateFull(const Cq& q, const Binding& binding) const {
  Cq bound = q.Substitute(AsSubstitution(binding));
  return EvaluateImpl(bound, /*full_head=*/true, /*stop_at_first=*/false);
}

AnswerSet CqEvaluator::EvaluateFull(const Ucq& q, const Binding& binding) const {
  AnswerSet out;
  for (const Cq& d : q.disjuncts()) {
    AnswerSet part = EvaluateFull(d, binding);
    out.insert(part.begin(), part.end());
  }
  return out;
}

bool CqEvaluator::EvaluateBoolean(const Cq& q, const Binding& binding) const {
  Cq bound = q.Substitute(AsSubstitution(binding));
  AnswerSet out = EvaluateImpl(bound, /*full_head=*/false, /*stop_at_first=*/true);
  return !out.empty();
}

std::optional<Tuple> CqEvaluator::FirstFullAnswer(const Cq& q,
                                                  const Binding& binding) const {
  Cq bound = q.Substitute(AsSubstitution(binding));
  AnswerSet out = EvaluateImpl(bound, /*full_head=*/true, /*stop_at_first=*/true);
  if (out.empty()) return std::nullopt;
  return *out.begin();
}

}  // namespace scalein
