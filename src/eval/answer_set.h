#ifndef SCALEIN_EVAL_ANSWER_SET_H_
#define SCALEIN_EVAL_ANSWER_SET_H_

#include <map>
#include <set>
#include <string>

#include "query/term.h"
#include "relational/tuple.h"

namespace scalein {

/// A query answer: a set of tuples. A Boolean query answers with either the
/// empty set (false) or the singleton set holding the 0-ary tuple (true).
using AnswerSet = std::set<Tuple>;

/// A partial assignment of values to variables: the ā fixed for the
/// parameters x̄ of Q(x̄, ȳ) throughout the paper.
using Binding = std::map<Variable, Value>;

inline bool BooleanAnswer(const AnswerSet& answers) { return !answers.empty(); }

inline std::string AnswerSetToString(const AnswerSet& answers,
                                     size_t max_rows = 20) {
  std::string out = "{";
  size_t shown = 0;
  for (const Tuple& t : answers) {
    if (shown == max_rows) {
      out += ", ...";
      break;
    }
    if (shown > 0) out += ", ";
    out += TupleToString(t);
    ++shown;
  }
  out += "}";
  return out;
}

}  // namespace scalein

#endif  // SCALEIN_EVAL_ANSWER_SET_H_
