#ifndef SCALEIN_EVAL_RA_EVALUATOR_H_
#define SCALEIN_EVAL_RA_EVALUATOR_H_

#include <map>
#include <string>

#include "query/ra_expr.h"
#include "relational/database.h"

namespace scalein {

/// Evaluation context for relational algebra: a database plus optional
/// per-relation content overrides. Overrides let the incremental engine
/// evaluate change-propagation expressions where a base relation name stands
/// for ∆R or ∇R (the inserted/deleted tuple sets) rather than R itself.
struct RaContext {
  const Database* db = nullptr;
  std::map<std::string, const Relation*> overrides;

  /// The relation `name` resolves to, honoring overrides; nullptr if unknown.
  const Relation* Lookup(const std::string& name) const;
};

/// Materializing evaluator: computes `expr` bottom-up; the result's columns
/// follow `expr.attributes()` order. Set semantics throughout.
Relation EvalRa(const RaExpr& expr, const RaContext& ctx);
Relation EvalRa(const RaExpr& expr, const Database& db);

/// Evaluates a selection condition against a row laid out as `attrs`.
bool EvalCondition(const SelectionCondition& cond,
                   const std::vector<std::string>& attrs, TupleView row);

}  // namespace scalein

#endif  // SCALEIN_EVAL_RA_EVALUATOR_H_
