#include "eval/fo_evaluator.h"

#include <optional>
#include <set>

#include "exec/exec_context.h"
#include "exec/planner.h"
#include "query/fo_to_ra.h"

namespace scalein {

FoEvaluator::FoEvaluator(const Database* db) : db_(db) {
  adom_ = db->ActiveDomain();
}

namespace {

Value ResolveTerm(const Term& t, const Binding& env) {
  if (t.is_const()) return t.constant();
  auto it = env.find(t.var());
  SI_CHECK_MSG(it != env.end(), "unbound variable in FO evaluation");
  return it->second;
}

}  // namespace

bool FoEvaluator::Holds(const Formula& f, const Binding& env) const {
  switch (f.kind()) {
    case FormulaKind::kTrue:
      return true;
    case FormulaKind::kFalse:
      return false;
    case FormulaKind::kAtom: {
      const Relation* rel = db_->FindRelation(f.relation());
      if (rel == nullptr) return false;
      Tuple t;
      t.reserve(f.args().size());
      for (const Term& arg : f.args()) t.push_back(ResolveTerm(arg, env));
      if (t.size() != rel->arity()) return false;
      return rel->Contains(t);
    }
    case FormulaKind::kEq:
      return ResolveTerm(f.eq_lhs(), env) == ResolveTerm(f.eq_rhs(), env);
    case FormulaKind::kNot:
      return !Holds(f.child(), env);
    case FormulaKind::kAnd:
      for (const Formula& c : f.operands()) {
        if (!Holds(c, env)) return false;
      }
      return true;
    case FormulaKind::kOr:
      for (const Formula& c : f.operands()) {
        if (Holds(c, env)) return true;
      }
      return false;
    case FormulaKind::kImplies:
      return !Holds(f.premise(), env) || Holds(f.conclusion(), env);
    case FormulaKind::kExists:
    case FormulaKind::kForall: {
      Binding local = env;
      return HoldsQuantified(f.body(), f.quantified(), 0,
                             f.kind() == FormulaKind::kExists, &local);
    }
  }
  SI_CHECK(false);
  return false;
}

bool FoEvaluator::HoldsQuantified(const Formula& body,
                                  const std::vector<Variable>& vars,
                                  size_t next, bool is_exists,
                                  Binding* env) const {
  if (next == vars.size()) return Holds(body, *env);
  // Save any outer binding of the same name so shadowing restores correctly.
  std::optional<Value> saved;
  auto prior = env->find(vars[next]);
  if (prior != env->end()) saved = prior->second;
  auto restore = [&]() {
    if (saved.has_value()) {
      env->insert_or_assign(vars[next], *saved);
    } else {
      env->erase(vars[next]);
    }
  };
  for (const Value& v : adom_) {
    env->insert_or_assign(vars[next], v);
    bool sub = HoldsQuantified(body, vars, next + 1, is_exists, env);
    if (is_exists && sub) {
      restore();
      return true;
    }
    if (!is_exists && !sub) {
      restore();
      return false;
    }
  }
  restore();
  return !is_exists;  // ∀ over an exhausted domain holds; ∃ fails
}

AnswerSet FoEvaluator::Evaluate(const FoQuery& query,
                                const Binding& binding) const {
  SI_CHECK_MSG(query.IsWellFormed(), "FO query head/free-variable mismatch");
  // Split the head into bound parameters and open answer columns.
  std::vector<Variable> open;
  for (const Variable& v : query.head) {
    if (!binding.count(v)) open.push_back(v);
  }
  // Engine path: translate to relational algebra and execute through the
  // unified pull engine. Falls back to the naive active-domain enumeration
  // when the translation's caveats apply (empty active domain, no open
  // columns, duplicate head names) or the translation itself fails.
  if (!adom_.empty() && !open.empty()) {
    std::set<std::string> names;
    for (const Variable& v : open) names.insert(v.name());
    if (names.size() == open.size()) {
      std::map<Variable, Term> subst;
      for (const auto& [v, val] : binding) subst.emplace(v, Term::Const(val));
      FoQuery fixed;
      fixed.name = query.name;
      fixed.head = open;
      fixed.body = query.body.Substitute(subst);
      Result<RaExpr> ra = FoToRa(fixed, db_->schema());
      if (ra.ok()) {
        exec::ExecContext ctx(db_);
        exec::Plan plan = exec::PlanRa(*ra, &ctx);
        Relation rows =
            exec::DrainToRelation(plan.root.get(), plan.attributes.size());
        AnswerSet engine_answers;
        for (size_t i = 0; i < rows.size(); ++i) {
          engine_answers.insert(ToTuple(rows.TupleAt(i)));
        }
        return engine_answers;
      }
    }
  }
  AnswerSet answers;
  Binding env = binding;
  // Enumerate assignments of open head variables over adom (active-domain
  // answer semantics) and test the body.
  std::vector<size_t> choice(open.size(), 0);
  // Recursive enumeration via explicit lambda to keep stack shallow per level.
  auto enumerate = [&](auto&& self, size_t i) -> void {
    if (i == open.size()) {
      if (Holds(query.body, env)) {
        Tuple t;
        t.reserve(open.size());
        for (const Variable& v : open) t.push_back(env.at(v));
        answers.insert(std::move(t));
      }
      return;
    }
    for (const Value& v : adom_) {
      env[open[i]] = v;
      self(self, i + 1);
    }
    env.erase(open[i]);
  };
  enumerate(enumerate, 0);
  return answers;
}

bool FoEvaluator::EvaluateBoolean(const FoQuery& query) const {
  SI_CHECK_MSG(query.IsBoolean(), "EvaluateBoolean requires an empty head");
  return Holds(query.body, {});
}

}  // namespace scalein
