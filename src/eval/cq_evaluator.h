#ifndef SCALEIN_EVAL_CQ_EVALUATOR_H_
#define SCALEIN_EVAL_CQ_EVALUATOR_H_

#include <optional>

#include "eval/answer_set.h"
#include "query/cq.h"
#include "relational/database.h"

namespace scalein {

/// Backtracking join evaluator for conjunctive queries and UCQs.
///
/// Atoms are ordered greedily at run time (most-bound-arguments first) and
/// candidate tuples are fetched through hash indexes on the bound positions,
/// so evaluation is output-sensitive in the common case. The database is
/// taken mutable because indexes are created on demand.
class CqEvaluator {
 public:
  explicit CqEvaluator(Database* db) : db_(db) {}

  /// Answers of `q` with `binding` fixing some variables: tuples over the
  /// head positions whose term is still an unbound variable, in head order
  /// (mirrors FoEvaluator::Evaluate for variable-only heads).
  AnswerSet Evaluate(const Cq& q, const Binding& binding = {}) const;

  /// Tuples over *all* head positions (bound variables and constants
  /// materialized into the output).
  AnswerSet EvaluateFull(const Cq& q, const Binding& binding = {}) const;

  /// UCQ answers: union over disjuncts (full-head form).
  AnswerSet EvaluateFull(const Ucq& q, const Binding& binding = {}) const;

  /// Satisfiability of the body under `binding` (Boolean-query evaluation).
  bool EvaluateBoolean(const Cq& q, const Binding& binding = {}) const;

  /// First full-head answer found, or nullopt if none — the early-exit
  /// variant the O(1) fast paths of §3 rely on.
  std::optional<Tuple> FirstFullAnswer(const Cq& q,
                                       const Binding& binding = {}) const;

  /// Total number of candidate tuples handed to the backtracking search since
  /// construction; a coarse work counter for benchmarks.
  uint64_t tuples_examined() const { return tuples_examined_; }

 private:
  AnswerSet EvaluateImpl(const Cq& q, bool full_head, bool stop_at_first) const;

  Database* db_;
  mutable uint64_t tuples_examined_ = 0;
};

}  // namespace scalein

#endif  // SCALEIN_EVAL_CQ_EVALUATOR_H_
