#include "eval/containment.h"

#include <map>

#include "eval/cq_evaluator.h"

namespace scalein {

Value FreezeVariable(const Variable& v) {
  // The \x01 prefix keeps frozen constants disjoint from any user-written
  // string constant.
  return Value::Str(std::string("\x01frz$") + v.name());
}

Term UnfreezeValue(const Value& v) {
  if (v.is_string()) {
    const std::string& s = v.AsString();
    constexpr std::string_view kPrefix = "\x01frz$";
    if (s.size() > kPrefix.size() && std::string_view(s).substr(0, kPrefix.size()) == kPrefix) {
      return Term::Var(Variable::Named(s.substr(kPrefix.size())));
    }
  }
  return Term::Const(v);
}

namespace {

Value FrozenConstant(const Variable& v) { return FreezeVariable(v); }

Schema SchemaFromAtoms(const Cq& q) {
  Schema schema;
  std::map<std::string, size_t> arities;
  for (const CqAtom& a : q.atoms()) {
    auto [it, inserted] = arities.emplace(a.relation, a.args.size());
    if (!inserted) {
      SI_CHECK_MSG(it->second == a.args.size(),
                   "inconsistent arity for relation across CQ atoms");
    }
  }
  for (const auto& [name, arity] : arities) {
    std::vector<std::string> attrs;
    attrs.reserve(arity);
    for (size_t i = 0; i < arity; ++i) attrs.push_back("a" + std::to_string(i));
    schema.Relation(name, attrs);
  }
  return schema;
}

}  // namespace

FrozenCq FreezeCq(const Cq& q) {
  FrozenCq out{Database(SchemaFromAtoms(q)), {}};
  auto freeze_term = [](const Term& t) {
    return t.is_const() ? t.constant() : FrozenConstant(t.var());
  };
  for (const CqAtom& a : q.atoms()) {
    Tuple t;
    t.reserve(a.args.size());
    for (const Term& arg : a.args) t.push_back(freeze_term(arg));
    out.db.Insert(a.relation, t);
  }
  out.frozen_head.reserve(q.head().size());
  for (const Term& h : q.head()) out.frozen_head.push_back(freeze_term(h));
  return out;
}

bool HasHomomorphism(const Cq& from, const Cq& to) {
  SI_CHECK_EQ(from.head().size(), to.head().size());
  FrozenCq frozen = FreezeCq(to);
  CqEvaluator eval(&frozen.db);
  AnswerSet answers = eval.EvaluateFull(from);
  return answers.count(frozen.frozen_head) > 0;
}

bool CqContains(const Cq& outer, const Cq& inner) {
  return HasHomomorphism(outer, inner);
}

bool CqEquivalent(const Cq& a, const Cq& b) {
  return CqContains(a, b) && CqContains(b, a);
}

bool UcqContains(const Ucq& outer, const Ucq& inner) {
  for (const Cq& d_in : inner.disjuncts()) {
    bool covered = false;
    for (const Cq& d_out : outer.disjuncts()) {
      if (CqContains(d_out, d_in)) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

bool UcqEquivalent(const Ucq& a, const Ucq& b) {
  return UcqContains(a, b) && UcqContains(b, a);
}

Cq MinimizeCq(const Cq& q) {
  // Core computation: repeatedly apply a head-preserving endomorphism whose
  // image has fewer (distinct) atoms. Pure atom-dropping is not enough —
  // e.g. the Boolean 4-cycle collapses onto a 2-cycle only by *folding*
  // variables, not by removing atoms.
  Cq current = q;
  for (;;) {
    if (current.atoms().empty()) return current;
    FrozenCq frozen = FreezeCq(current);
    CqEvaluator eval(&frozen.db);

    // Satisfying assignments of the body over the canonical database, with
    // head variables fixed to themselves, are exactly the head-preserving
    // endomorphisms.
    VarSet body_vars = current.BodyVars();
    std::vector<Term> assignment_head;
    std::vector<Variable> order;
    for (const Variable& v : body_vars) {
      assignment_head.push_back(Term::Var(v));
      order.push_back(v);
    }
    Cq assignments_query("endo", assignment_head, current.atoms());
    Binding fix_head;
    for (const Term& h : current.head()) {
      if (h.is_var()) fix_head.emplace(h.var(), FreezeVariable(h.var()));
    }
    AnswerSet endomorphisms = eval.EvaluateFull(assignments_query, fix_head);

    std::optional<Cq> smaller;
    size_t best_atoms = current.atoms().size();
    for (const Tuple& endo : endomorphisms) {
      std::map<Variable, Term> subst;
      for (size_t i = 0; i < order.size(); ++i) {
        subst.emplace(order[i], UnfreezeValue(endo[i]));
      }
      Cq image = current.Substitute(subst);
      // Deduplicate image atoms.
      std::vector<CqAtom> atoms;
      std::set<std::string> seen;
      for (const CqAtom& a : image.atoms()) {
        if (seen.insert(a.ToString()).second) atoms.push_back(a);
      }
      if (atoms.size() < best_atoms) {
        best_atoms = atoms.size();
        smaller = Cq(current.name(), image.head(), std::move(atoms));
      }
    }
    if (!smaller.has_value()) return current;
    current = *std::move(smaller);
  }
}

bool IsTrivialCq(const Cq& q) { return q.atoms().empty(); }

}  // namespace scalein
