#ifndef SCALEIN_EVAL_CONTAINMENT_H_
#define SCALEIN_EVAL_CONTAINMENT_H_

#include <optional>

#include "query/cq.h"
#include "relational/database.h"

namespace scalein {

/// Classic CQ containment / homomorphism machinery (Chandra–Merlin), used by
/// §3 (the ‖Q‖ witness bound rests on the homomorphism semantics of CQ), §6
/// (rewriting-equivalence checks), and the QSI triviality analysis.

/// The canonical (frozen) database of a CQ: every variable becomes a fresh
/// constant, every atom a tuple. `frozen_head` is the head under the same
/// freezing.
struct FrozenCq {
  Database db;
  Tuple frozen_head;
};

/// Builds the canonical database of `q`. Relation arities are taken from the
/// atoms; inconsistent arities for the same relation abort.
FrozenCq FreezeCq(const Cq& q);

/// The frozen constant representing variable `v` in canonical databases.
Value FreezeVariable(const Variable& v);

/// Inverse of freezing: a frozen constant maps back to its variable, any
/// other value stays a constant term.
Term UnfreezeValue(const Value& v);

/// True iff there is a homomorphism from `from` to `to` mapping head to head
/// — equivalently (Chandra–Merlin), `to` ⊆ `from` as queries. Requires equal
/// head arity.
bool HasHomomorphism(const Cq& from, const Cq& to);

/// inner ⊆ outer for all databases.
bool CqContains(const Cq& outer, const Cq& inner);

/// Query equivalence.
bool CqEquivalent(const Cq& a, const Cq& b);

/// inner ⊆ outer for UCQs (Sagiv–Yannakakis: each inner disjunct must be
/// contained in some outer disjunct).
bool UcqContains(const Ucq& outer, const Ucq& inner);

bool UcqEquivalent(const Ucq& a, const Ucq& b);

/// The core of `q`: repeatedly drops atoms whose removal preserves
/// equivalence. The result is a minimal equivalent CQ; its tableau size is
/// the tight ‖Q‖ for witness bounds.
Cq MinimizeCq(const Cq& q);

/// True iff `q` has an empty body after construction — the only way a CQ
/// returns the same (constant) answer on all databases (Proposition 3.5
/// discussion: non-trivial CQs are never scale-independent over all
/// instances without constraints).
bool IsTrivialCq(const Cq& q);

}  // namespace scalein

#endif  // SCALEIN_EVAL_CONTAINMENT_H_
