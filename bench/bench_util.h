#ifndef SCALEIN_BENCH_BENCH_UTIL_H_
#define SCALEIN_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <string>

namespace scalein::bench {

/// Wall-clock stopwatch in milliseconds.
class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }
  void Reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Repeats `fn` until at least `min_ms` of wall time has elapsed (at least
/// once); returns the mean per-iteration time in milliseconds.
template <typename Fn>
double MeasureMs(Fn&& fn, double min_ms = 20.0) {
  // Warmup.
  fn();
  Timer timer;
  int iters = 0;
  do {
    fn();
    ++iters;
  } while (timer.ElapsedMs() < min_ms);
  return timer.ElapsedMs() / iters;
}

inline void Header(const char* experiment, const char* paper_artifact,
                   const char* expectation) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper artifact : %s\n", paper_artifact);
  std::printf("expected shape : %s\n", expectation);
  std::printf("================================================================\n");
}

}  // namespace scalein::bench

#endif  // SCALEIN_BENCH_BENCH_UTIL_H_
