#ifndef SCALEIN_BENCH_BENCH_UTIL_H_
#define SCALEIN_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace scalein::bench {

/// Machine-readable sidecar for a benchmark run: collects flat key → value
/// metrics and writes them as BENCH_<name>.json in the working directory.
/// Keys keep insertion order so the file diffs cleanly between runs; values
/// are numbers or strings. Intended for plotting scripts and regression
/// checks that should not scrape the human-readable tables.
class JsonReport {
 public:
  explicit JsonReport(std::string name) : name_(std::move(name)) {}
  JsonReport(const JsonReport&) = delete;
  JsonReport& operator=(const JsonReport&) = delete;
  ~JsonReport() { Write(); }

  void Add(const std::string& key, uint64_t value) {
    entries_.emplace_back(key, std::to_string(value));
  }
  void Add(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    entries_.emplace_back(key, buf);
  }
  void Add(const std::string& key, const std::string& value) {
    entries_.emplace_back(key, "\"" + Escape(value) + "\"");
  }

  /// Writes BENCH_<name>.json; called automatically from the destructor
  /// (subsequent calls are no-ops).
  void Write() {
    if (written_) return;
    written_ = true;
    std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "JsonReport: cannot open %s\n", path.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"metrics\": {",
                 Escape(name_).c_str());
    for (size_t i = 0; i < entries_.size(); ++i) {
      std::fprintf(f, "%s\n    \"%s\": %s", i == 0 ? "" : ",",
                   Escape(entries_[i].first).c_str(),
                   entries_[i].second.c_str());
    }
    std::fprintf(f, "\n  }\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
  }

 private:
  static std::string Escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      switch (c) {
        case '"':
          out += "\\\"";
          break;
        case '\\':
          out += "\\\\";
          break;
        case '\n':
          out += "\\n";
          break;
        case '\r':
          out += "\\r";
          break;
        case '\t':
          out += "\\t";
          break;
        default:
          // JSON forbids raw control characters inside strings.
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(static_cast<unsigned char>(c)));
            out += buf;
          } else {
            out.push_back(c);
          }
      }
    }
    return out;
  }

  std::string name_;
  std::vector<std::pair<std::string, std::string>> entries_;
  bool written_ = false;
};

/// Wall-clock stopwatch in milliseconds.
class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }
  void Reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Repeats `fn` until at least `min_ms` of wall time has elapsed (at least
/// once); returns the mean per-iteration time in milliseconds.
template <typename Fn>
double MeasureMs(Fn&& fn, double min_ms = 20.0) {
  // Warmup.
  fn();
  Timer timer;
  int iters = 0;
  do {
    fn();
    ++iters;
  } while (timer.ElapsedMs() < min_ms);
  return timer.ElapsedMs() / iters;
}

inline void Header(const char* experiment, const char* paper_artifact,
                   const char* expectation) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper artifact : %s\n", paper_artifact);
  std::printf("expected shape : %s\n", expectation);
  std::printf("================================================================\n");
}

}  // namespace scalein::bench

#endif  // SCALEIN_BENCH_BENCH_UTIL_H_
