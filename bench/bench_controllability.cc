// Experiment E9 (DESIGN.md): cost of the controllability inference itself
// (Theorem 4.4: QCntl is NP-complete). The conjunction rule explores all
// evaluation orders through a subset DP, so analysis cost grows with the
// number of conjuncts; the antichain caps keep it usable. Includes
// google-benchmark microbenchmarks for the hot entry points.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/controllability.h"
#include "query/parser.h"
#include "query/printer.h"
#include "workload/social_gen.h"

using namespace scalein;
using bench::Header;
using bench::MeasureMs;

namespace {

/// Chain query with k atoms r(x0,x1), r(x1,x2), ..., each key-accessible on
/// its first attribute: forces the DP to reason about long join chains.
Formula ChainFormula(size_t k, const Schema& s) {
  std::string text;
  for (size_t i = 0; i < k; ++i) {
    if (i > 0) text += " and ";
    text += "r(x" + std::to_string(i) + ", x" + std::to_string(i + 1) + ")";
  }
  Result<Formula> f = ParseFormula(text, &s);
  SI_CHECK(f.ok());
  return *std::move(f);
}

void AnalysisCostVsConjuncts() {
  Header("E9: controllability analysis cost vs number of conjuncts",
         "Theorem 4.4 (QCntl / QCntlmin NP-complete)",
         "subset-DP work grows exponentially with conjuncts until the "
         "configured cap kicks in");
  Schema s;
  s.Relation("r", {"a", "b"});
  AccessSchema a;
  a.Add("r", {"a"}, 10);
  TablePrinter table({"conjuncts", "minimal sets", "QCntl(K=1)", "truncated",
                      "ms/analysis"});
  for (size_t k : {2u, 4u, 6u, 8u, 10u, 12u}) {
    Formula f = ChainFormula(k, s);
    Result<ControllabilityAnalysis> first =
        ControllabilityAnalysis::Analyze(f, s, a);
    SI_CHECK(first.ok());
    double ms = MeasureMs([&] {
      (void)ControllabilityAnalysis::Analyze(f, s, a);
    });
    table.AddRow({std::to_string(k),
                  std::to_string(first->MinimalControlSets().size()),
                  VerdictName(DecideQCntl(*first, 1)),
                  first->truncated() ? "yes" : "no", FormatDouble(ms, 3)});
  }
  table.Print();
}

void OptionCapAblation() {
  Header("E9 ablation: antichain cap trades completeness for speed",
         "DESIGN.md ablation: antichain representation of option families",
         "small caps truncate (possibly losing derivations) but analyze "
         "faster; the default cap does not truncate these sizes");
  Schema s;
  s.Relation("r", {"a", "b"});
  AccessSchema a;
  a.Add("r", {"a"}, 10);
  a.Add("r", {"b"}, 10);  // two access paths multiply the option space
  Formula f = ChainFormula(8, s);
  TablePrinter table({"max options/node", "minimal sets", "truncated", "ms"});
  for (size_t cap : {4u, 16u, 48u, 128u}) {
    ControlAnalysisOptions options;
    options.max_options_per_node = cap;
    Result<ControllabilityAnalysis> r =
        ControllabilityAnalysis::Analyze(f, s, a, options);
    SI_CHECK(r.ok());
    double ms = MeasureMs(
        [&] { (void)ControllabilityAnalysis::Analyze(f, s, a, options); });
    table.AddRow({std::to_string(cap),
                  std::to_string(r->MinimalControlSets().size()),
                  r->truncated() ? "yes" : "no", FormatDouble(ms, 3)});
  }
  table.Print();
}

// --- google-benchmark microbenchmarks -------------------------------------

void BM_AnalyzeQ1(benchmark::State& state) {
  Schema s = SocialSchema(false);
  AccessSchema a;
  a.Add("friend", {"id1"}, 5000);
  a.AddKey("person", {"id"});
  Result<Formula> f = ParseFormula(
      "exists id. friend(p, id) and person(id, name, \"NYC\")", &s);
  SI_CHECK(f.ok());
  for (auto _ : state) {
    auto r = ControllabilityAnalysis::Analyze(*f, s, a);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_AnalyzeQ1);

void BM_AnalyzeChain(benchmark::State& state) {
  Schema s;
  s.Relation("r", {"a", "b"});
  AccessSchema a;
  a.Add("r", {"a"}, 10);
  Formula f = ChainFormula(static_cast<size_t>(state.range(0)), s);
  for (auto _ : state) {
    auto r = ControllabilityAnalysis::Analyze(f, s, a);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_AnalyzeChain)->Arg(2)->Arg(6)->Arg(10);

}  // namespace

int main(int argc, char** argv) {
  AnalysisCostVsConjuncts();
  OptionCapAblation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
