// Experiment E9: register-bytecode compilation of bounded plans.
//
// The tentpole claim the sidecar pins down for scripts/bench_regress.py:
// executing a compiled bounded plan (exec/vm.h) is >= 1.5x faster than
// interpreting the §4 option tree (core/bounded_eval.h) on the repeated-
// query hot path — while remaining *byte-identical* in every observable.
// The gate enforces:
//   compiled.plain_speedup    >= 1.5   (Q1/Q2 FO hot loop — the serve path)
//   compiled.embedded_speedup >= 1.0   (Q3 chase: probe-bound, so the VM's
//                                       win is smaller; must never regress)
//   compiled.certs_equal      == 1     (sealed certificate payloads match)
// Answers are cross-checked for every parameter before timing anything.

#include <algorithm>
#include <limits>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/bounded_eval.h"
#include "core/controllability.h"
#include "core/embedded_controllability.h"
#include "exec/compiler.h"
#include "exec/vm.h"
#include "obs/journal.h"
#include "par/worker_pool.h"
#include "query/parser.h"
#include "query/printer.h"
#include "workload/social_gen.h"

using namespace scalein;
using bench::Header;
using bench::MeasureMs;

namespace {

constexpr const char* kQ1 =
    "Q1(p, name) := exists id. friend(p, id) and person(id, name, \"NYC\")";
// Friend-of-friend: a 50x50 frontier per parameter, where per-tuple
// interpretive overhead (map bindings, set inserts) dominates — the workload
// the bytecode VM exists for.
constexpr const char* kQ2 =
    "Q2(p, fof) := exists f. friend(p, f) and friend(f, fof)";
constexpr const char* kQ3 =
    "Q3(rn, p, yy) :- friend(p, id), visit(id, rid, yy, mm, dd), "
    "person(id, pn, \"NYC\"), restr(rid, rn, \"NYC\", \"A\")";
constexpr size_t kParams = 192;

/// Seals a certificate from one evaluation's stats under a fixed identity;
/// payload equality across engines is the byte-identity check CI gates on.
std::string SealedPayload(const char* query, const BoundedEvalStats& stats) {
  obs::AccessCertificate cert;
  cert.query_fingerprint = "bench-compiled";
  cert.query_id = "bench";
  cert.query_text = query;
  cert.static_bound = stats.static_bound;
  cert.actual_fetches = stats.base_tuples_fetched;
  cert.index_lookups = stats.index_lookups;
  for (const exec::OpCounters& op : stats.ops) {
    obs::CertOp co;
    co.label = op.label;
    co.rows_out = op.rows_out;
    co.tuples_fetched = op.tuples_fetched;
    co.index_lookups = op.index_lookups;
    co.static_bound = op.static_bound;
    cert.ops.push_back(std::move(co));
  }
  obs::SealCertificate(&cert);
  return obs::CertificatePayload(cert);
}

}  // namespace

int main() {
  Header("E9: bytecode compilation of bounded plans",
         "§4 option trees / Prop 4.5 chase plans lowered to register bytecode",
         "compiled execution >= 1.5x faster than interpretation with "
         "byte-identical answers, accounting, and sealed certificates");

  bench::JsonReport report("compiled");
  par::WorkerPool::Global().Resize(1);  // isolate per-tuple overhead

  // ---- Plain FO path: Q1 + Q2 over the Example 1.1 social workload. ----
  SocialConfig config;
  config.num_persons = 30000;
  config.max_friends_per_person = 50;
  config.num_restaurants = 200;
  config.avg_visits_per_person = 0;
  Schema schema = SocialSchema(false);
  Database db = GenerateSocial(config);
  AccessSchema access = SocialAccessSchema(config);
  SI_CHECK(access.BuildIndexes(&db, schema).ok());

  Variable p = Variable::Named("p");
  std::vector<Binding> params;
  params.reserve(kParams);
  for (size_t i = 0; i < kParams; ++i) {
    params.push_back({{p, Value::Int(static_cast<int64_t>(
                              (i * 131) % config.num_persons))}});
  }

  BoundedEvaluator interp(&db);
  exec::CompiledEvaluator vm(&db);
  bool certs_equal = true;
  double plain_interp_ms = 0.0;
  double plain_vm_ms = 0.0;
  uint64_t plain_fetched = 0;
  double plain_bound = 0.0;

  TablePrinter table({"workload", "interp ms", "vm ms", "speedup",
                      "fetches", "certs"});
  for (const char* text : {kQ1, kQ2}) {
    Result<FoQuery> q = ParseFoQuery(text, &schema);
    SI_CHECK(q.ok());
    Result<ControllabilityAnalysis> analyzed =
        ControllabilityAnalysis::Analyze(q->body, schema, access);
    SI_CHECK(analyzed.ok());
    auto analysis = std::make_shared<const ControllabilityAnalysis>(
        *std::move(analyzed));
    Result<std::shared_ptr<const exec::CompiledProgram>> program =
        exec::CompilePlain(*q, analysis, {p});
    SI_CHECK(program.ok());
    exec::PrebuildCompiledIndexes(db, **program);

    // Cross-check answers + certificate payloads for every parameter first.
    uint64_t fetched = 0;
    for (const Binding& b : params) {
      BoundedEvalStats is, vs;
      is.capture_ops = true;
      vs.capture_ops = true;
      Result<AnswerSet> ia = interp.Evaluate(*q, *analysis, b, &is);
      Result<AnswerSet> va = vm.Evaluate(**program, b, &vs);
      SI_CHECK(ia.ok() && va.ok());
      SI_CHECK(*ia == *va);
      certs_equal &= SealedPayload(text, is) == SealedPayload(text, vs);
      fetched += is.base_tuples_fetched;
    }

    const double interp_ms = MeasureMs([&] {
      for (const Binding& b : params) (void)interp.Evaluate(*q, *analysis, b);
    });
    const double vm_ms = MeasureMs([&] {
      for (const Binding& b : params) (void)vm.Evaluate(**program, b);
    });
    plain_interp_ms += interp_ms;
    plain_vm_ms += vm_ms;
    plain_fetched += fetched;
    Result<double> bound = analysis->StaticFetchBound({p});
    SI_CHECK(bound.ok());
    plain_bound += *bound * static_cast<double>(kParams);
    table.AddRow({q->name, FormatDouble(interp_ms, 3), FormatDouble(vm_ms, 3),
                  FormatDouble(interp_ms / vm_ms, 2) + "x",
                  FormatCount(fetched), certs_equal ? "equal" : "DIFFER"});
  }

  // ---- Embedded path: the Q3 Proposition 4.5 chase. ----
  SocialConfig dated;
  dated.num_persons = 20000;
  dated.max_friends_per_person = 30;
  dated.num_restaurants = 200;
  dated.avg_visits_per_person = 20;
  dated.num_cities = 2;
  dated.num_years = 1;
  dated.dated_visits = true;
  Schema dated_schema = SocialSchema(true);
  Database dated_db = GenerateSocial(dated);
  AccessSchema dated_access = SocialAccessSchema(dated);
  SI_CHECK(dated_access.BuildIndexes(&dated_db, dated_schema).ok());

  Result<Cq> q3 = ParseCq(kQ3, &dated_schema);
  SI_CHECK(q3.ok());
  Variable yy = Variable::Named("yy");
  Result<EmbeddedCqAnalysis> eanalyzed =
      EmbeddedCqAnalysis::Analyze(*q3, dated_schema, dated_access, {p, yy});
  SI_CHECK(eanalyzed.ok());
  auto eanalysis =
      std::make_shared<const EmbeddedCqAnalysis>(*std::move(eanalyzed));
  SI_CHECK(eanalysis->IsScaleIndependent());
  Result<std::shared_ptr<const exec::CompiledProgram>> eprogram =
      exec::CompileEmbedded(eanalysis);
  SI_CHECK(eprogram.ok());
  exec::PrebuildCompiledIndexes(dated_db, **eprogram);

  std::vector<Binding> eparams;
  eparams.reserve(kParams);
  for (size_t i = 0; i < kParams; ++i) {
    eparams.push_back(
        {{p, Value::Int(static_cast<int64_t>((i * 131) % dated.num_persons))},
         {yy, Value::Int(static_cast<int64_t>(dated.first_year))}});
  }

  BoundedEvaluator einterp(&dated_db);
  exec::CompiledEvaluator evm(&dated_db);
  uint64_t embedded_fetched = 0;
  for (const Binding& b : eparams) {
    BoundedEvalStats is, vs;
    is.capture_ops = true;
    vs.capture_ops = true;
    Result<AnswerSet> ia = einterp.EvaluateEmbedded(*eanalysis, b, &is);
    Result<AnswerSet> va = evm.EvaluateEmbedded(**eprogram, b, &vs);
    SI_CHECK(ia.ok() && va.ok());
    SI_CHECK(*ia == *va);
    certs_equal &= SealedPayload(kQ3, is) == SealedPayload(kQ3, vs);
    embedded_fetched += is.base_tuples_fetched;
  }
  const double embedded_interp_ms = MeasureMs([&] {
    for (const Binding& b : eparams) {
      (void)einterp.EvaluateEmbedded(*eanalysis, b);
    }
  });
  const double embedded_vm_ms = MeasureMs([&] {
    for (const Binding& b : eparams) (void)evm.EvaluateEmbedded(**eprogram, b);
  });
  table.AddRow({"Q3 (embedded)", FormatDouble(embedded_interp_ms, 3),
                FormatDouble(embedded_vm_ms, 3),
                FormatDouble(embedded_interp_ms / embedded_vm_ms, 2) + "x",
                FormatCount(embedded_fetched),
                certs_equal ? "equal" : "DIFFER"});
  table.Print();

  const double plain_speedup = plain_interp_ms / plain_vm_ms;
  const double embedded_speedup = embedded_interp_ms / embedded_vm_ms;
  std::printf("\nplain speedup %.2fx, embedded speedup %.2fx, certs %s\n",
              plain_speedup, embedded_speedup,
              certs_equal ? "equal" : "DIFFER");

  report.Add("compiled.plain_interp_ms", plain_interp_ms);
  report.Add("compiled.plain_vm_ms", plain_vm_ms);
  report.Add("compiled.plain_speedup", plain_speedup);
  report.Add("compiled.plain.base_tuples_fetched", plain_fetched);
  report.Add("compiled.plain.static_bound", plain_bound);
  report.Add("compiled.embedded_interp_ms", embedded_interp_ms);
  report.Add("compiled.embedded_vm_ms", embedded_vm_ms);
  report.Add("compiled.embedded_speedup", embedded_speedup);
  report.Add("compiled.embedded.base_tuples_fetched", embedded_fetched);
  report.Add("compiled.certs_equal",
             static_cast<uint64_t>(certs_equal ? 1 : 0));
  return 0;
}
