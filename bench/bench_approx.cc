// Experiment E12 (extension; §7 future work): approximate scale-independent
// answering. When Q is not scale-independent in D w.r.t. M, what fraction of
// Q(D) can be recovered while accessing at most M tuples? The recall-vs-
// budget curve is the "performance ratio" the paper's conclusion asks about.

#include "bench_util.h"
#include "core/approx.h"
#include "core/qdsi.h"
#include "query/printer.h"
#include "workload/setcover_gen.h"

using namespace scalein;
using bench::Header;

int main() {
  Header("E12 (extension): recall vs access budget M",
         "§7 future work: approximate answering under a fetch budget",
         "recall climbs monotonically; full recall exactly at the minimum "
         "witness size; shared support tuples give early gains");

  SetCoverConfig config;
  config.num_elements = 24;
  config.num_sets = 10;
  config.planted_cover_size = 4;
  config.noise_memberships = 40;
  SetCoverInstance inst = GenerateSetCover(config);

  MinWitnessResult exact = MinimumWitnessCq(inst.query, inst.db, 100000);
  SI_CHECK(exact.witness.has_value());
  uint64_t m_star = exact.witness->size();
  std::printf("|D| = %zu tuples, |Q(D)| = %llu answers, minimum witness M* = %llu\n\n",
              inst.db.TotalTuples(),
              static_cast<unsigned long long>(config.num_elements),
              static_cast<unsigned long long>(m_star));

  std::vector<uint64_t> budgets;
  for (uint64_t m = 0; m <= m_star + 4; m += 2) budgets.push_back(m);
  std::vector<RecallPoint> curve = RecallCurve(inst.query, inst.db, budgets);

  TablePrinter table({"budget M", "tuples accessed", "recall", "bar"});
  for (const RecallPoint& p : curve) {
    std::string bar(static_cast<size_t>(p.recall * 40), '#');
    table.AddRow({std::to_string(p.budget), std::to_string(p.accessed),
                  FormatDouble(p.recall, 3), bar});
  }
  table.Print();
  std::printf(
      "\nQDSI cross-check: at M = M*-1 the exact decision is '%s'; at M = M* "
      "it is '%s'.\n",
      VerdictName(DecideQdsiCq(inst.query, inst.db, m_star - 1).verdict),
      VerdictName(DecideQdsiCq(inst.query, inst.db, m_star).verdict));
  return 0;
}
