// Experiments E6/E7 (DESIGN.md): incremental scale independence
// (Example 1.1(b) / §5). Two series:
//   (a) fixed |∆D|, growing |D|: maintenance fetches/latency stay flat while
//       full recomputation grows with |D|;
//   (b) fixed |D|, growing |∆D|: maintenance cost is linear in |∆D| —
//       the paper's 3·|∆D| accounting.
// Plus the Theorem 5.4 RAA derivation for Q2's relational-algebra form.

#include "bench_util.h"
#include "eval/cq_evaluator.h"
#include "incremental/maintainer.h"
#include "incremental/raa_rules.h"
#include "query/parser.h"
#include "query/printer.h"
#include "workload/update_gen.h"

using namespace scalein;
using bench::Header;
using bench::MeasureMs;
using bench::Timer;

namespace {

struct Instance {
  SocialConfig config;
  Schema schema{SocialSchema(false)};
  Database db{Schema{}};
  AccessSchema access;
  Cq q2;

  explicit Instance(uint64_t persons) {
    config.num_persons = persons;
    config.max_friends_per_person = 50;
    config.num_restaurants = 300;
    config.avg_visits_per_person = 6;
    db = GenerateSocial(config);
    access = SocialAccessSchema(config);
    access.Add("visit", {"id"}, 4 * config.avg_visits_per_person + 64);
    SI_CHECK(access.BuildIndexes(&db, schema).ok());
    Result<Cq> q = ParseCq(
        "Q2(p, rn) :- friend(p, id), visit(id, rid), "
        "person(id, pn, \"NYC\"), restr(rid, rn, \"NYC\", \"A\")",
        &schema);
    SI_CHECK(q.ok());
    q2 = *std::move(q);
  }
};

void GrowDatabase() {
  Header("E6a: maintenance vs recomputation while |D| grows",
         "Example 1.1(b) / Corollary 5.3 / Proposition 5.5",
         "maintenance fetches/latency flat in |D|; recomputation grows");
  bench::JsonReport report("incremental_q2_grow_db");
  TablePrinter table({"persons", "|D|", "|dD|", "fetches", "index lookups",
                      "maintain ms", "recompute ms", "speedup"});
  for (uint64_t persons : {5000u, 50000u, 250000u}) {
    Instance inst(persons);
    Variable p = Variable::Named("p");
    Result<IncrementalMaintainer> m =
        IncrementalMaintainer::Create(inst.q2, inst.schema, inst.access, {p});
    SI_CHECK(m.ok());
    SI_CHECK(m->SupportsInsertions("visit"));
    Binding params{{p, Value::Int(7)}};
    Result<AnswerSet> answers = m->InitialAnswers(&inst.db, params);
    SI_CHECK(answers.ok());

    Rng rng(55);
    Update u = VisitInsertions(inst.db, inst.config, 100, &rng);
    BoundedEvalStats stats;
    Timer timer;
    SI_CHECK(m->Maintain(&inst.db, u, params, &*answers, &stats).ok());
    double maintain_ms = timer.ElapsedMs();

    CqEvaluator eval(&inst.db);
    AnswerSet recomputed;
    double recompute_ms =
        MeasureMs([&] { recomputed = eval.EvaluateFull(inst.q2, params); });
    SI_CHECK(recomputed == *answers);
    table.AddRow({FormatCount(persons), FormatCount(inst.db.TotalTuples()),
                  std::to_string(u.TotalTuples()),
                  std::to_string(stats.base_tuples_fetched),
                  std::to_string(stats.index_lookups),
                  FormatDouble(maintain_ms, 3), FormatDouble(recompute_ms, 3),
                  FormatDouble(recompute_ms / maintain_ms, 1) + "x"});
    std::string prefix = "persons_" + std::to_string(persons) + ".";
    report.Add(prefix + "total_tuples", inst.db.TotalTuples());
    report.Add(prefix + "delta_tuples", u.TotalTuples());
    report.Add(prefix + "base_tuples_fetched", stats.base_tuples_fetched);
    report.Add(prefix + "index_lookups", stats.index_lookups);
    report.Add(prefix + "maintain_ms", maintain_ms);
    report.Add(prefix + "recompute_ms", recompute_ms);
  }
  table.Print();
}

void GrowUpdate() {
  Header("E6b: maintenance cost vs |∆D| at fixed |D|",
         "Example 1.1(b): at most 3 lookups per inserted visit tuple",
         "fetches scale linearly with |dD|; fetches/|dD| roughly constant");
  Instance inst(50000);
  Variable p = Variable::Named("p");
  Result<IncrementalMaintainer> m =
      IncrementalMaintainer::Create(inst.q2, inst.schema, inst.access, {p});
  SI_CHECK(m.ok());
  Binding params{{p, Value::Int(7)}};
  Result<AnswerSet> answers = m->InitialAnswers(&inst.db, params);
  SI_CHECK(answers.ok());
  std::printf("static fetch bound per inserted visit tuple: %.0f\n",
              m->FetchBoundPerInsertedTuple("visit"));

  bench::JsonReport report("incremental_q2_grow_update");
  TablePrinter table(
      {"|dD|", "fetches", "index lookups", "fetches/|dD|", "maintain ms"});
  Rng rng(66);
  for (size_t delta : {10u, 40u, 160u, 640u}) {
    Update u = VisitInsertions(inst.db, inst.config, delta, &rng);
    BoundedEvalStats stats;
    Timer timer;
    SI_CHECK(m->Maintain(&inst.db, u, params, &*answers, &stats).ok());
    double ms = timer.ElapsedMs();
    table.AddRow({std::to_string(u.TotalTuples()),
                  std::to_string(stats.base_tuples_fetched),
                  std::to_string(stats.index_lookups),
                  FormatDouble(static_cast<double>(stats.base_tuples_fetched) /
                                   u.TotalTuples(),
                               2),
                  FormatDouble(ms, 3)});
    std::string prefix = "delta_" + std::to_string(u.TotalTuples()) + ".";
    report.Add(prefix + "base_tuples_fetched", stats.base_tuples_fetched);
    report.Add(prefix + "index_lookups", stats.index_lookups);
    report.Add(prefix + "maintain_ms", ms);
  }
  table.Print();

  // Per-operator breakdown of one single-insertion maintenance step: the
  // residual queries the maintainer runs per inserted tuple, each next to its
  // per-lookup bound (same key grammar as fig_bounded_q1). A single insertion
  // keeps the sidecar small — the op list grows with |dD| otherwise.
  Update one = VisitInsertions(inst.db, inst.config, 1, &rng);
  BoundedEvalStats op_stats;
  op_stats.capture_ops = true;
  SI_CHECK(m->Maintain(&inst.db, one, params, &*answers, &op_stats).ok());
  for (size_t i = 0; i < op_stats.ops.size(); ++i) {
    const exec::OpCounters& op = op_stats.ops[i];
    std::string op_prefix = "per_insert.op" + std::to_string(i) + ".";
    report.Add(op_prefix + "label", op.label);
    report.Add(op_prefix + "rows_out", op.rows_out);
    report.Add(op_prefix + "tuples_fetched", op.tuples_fetched);
    report.Add(op_prefix + "index_lookups", op.index_lookups);
    if (op.static_bound >= 0) {
      report.Add(op_prefix + "static_bound", op.static_bound);
    }
  }
}

void RaaDerivation() {
  Header("E7: Theorem 5.4 RAA derivation for Q2's algebra form",
         "§5 relational-algebra / decrement / increment rules",
         "(E, {p}) derivable (Thm 5.4(1)); the ∇/∆ families stay empty for "
         "the full expression — §5's point that incremental scale "
         "independence needs extra access (Prop 5.5's A(R)); a simple join "
         "IS incrementally derivable");
  Schema schema = SocialSchema(false);
  SocialConfig config;
  AccessSchema access = SocialAccessSchema(config);
  access.Add("visit", {"id"}, 64);

  RaExpr friends = RaExpr::Rename(RaExpr::Relation("friend", {"id1", "id2"}),
                                  {{"id1", "p"}, {"id2", "id"}});
  RaExpr visit = RaExpr::Relation("visit", {"id", "rid"});
  SelectionCondition nyc_person;
  nyc_person.conjuncts.push_back(
      SelectionAtom::AttrEqConst("city", Value::Str("NYC")));
  RaExpr person = RaExpr::Project(
      RaExpr::Select(RaExpr::Relation("person", {"id", "name", "city"}),
                     nyc_person),
      {"id"});
  SelectionCondition a_nyc;
  a_nyc.conjuncts.push_back(SelectionAtom::AttrEqConst("city", Value::Str("NYC")));
  a_nyc.conjuncts.push_back(SelectionAtom::AttrEqConst("rating", Value::Str("A")));
  RaExpr restr = RaExpr::Project(
      RaExpr::Select(RaExpr::Relation("restr", {"rid", "rn", "city", "rating"}),
                     a_nyc),
      {"rid", "rn"});
  RaExpr q2 = RaExpr::Project(
      RaExpr::Join(RaExpr::Join(RaExpr::Join(friends, visit), person), restr),
      {"p", "rn"});

  Result<RaaAnalysis> raa = RaaAnalysis::Analyze(q2, schema, access);
  SI_CHECK(raa.ok());
  std::printf("expression: %s\n", q2.ToString().c_str());
  std::printf("derived families: %s\n", raa->ToString().c_str());
  std::printf("sigma_{p=a}(E) scale-independent (Thm 5.4(1)):        %s\n",
              raa->IsScaleIndependent({"p"}) ? "yes" : "no");
  std::printf("sigma_{p=a}(E) incrementally scale-indep (Thm 5.4(2)): %s\n",
              raa->IsIncrementallyScaleIndependent({"p", "rn"}) ? "yes" : "no");
  std::printf(
      "(the empty ∇/∆ families are the faithful §5 verdict: the rules do "
      "not subtract join attributes for annotated expressions, so the "
      "maintenance route for the full Q2 needs Prop 5.5's A(R) extension — "
      "exactly what IncrementalMaintainer implements)\n");

  // A two-way join IS incrementally derivable: Theorem 5.4(2) in action.
  RaExpr simple = RaExpr::Join(RaExpr::Rename(RaExpr::Relation(
                                   "friend", {"id1", "id2"}),
                                               {{"id1", "p"}, {"id2", "id"}}),
                               RaExpr::Relation("visit", {"id", "rid"}));
  Result<RaaAnalysis> simple_raa = RaaAnalysis::Analyze(simple, schema, access);
  SI_CHECK(simple_raa.ok());
  std::printf("friend ⋈ visit incrementally scale-indep given {p}: %s\n",
              simple_raa->IsIncrementallyScaleIndependent({"p"}) ? "yes" : "no");
}

}  // namespace

int main() {
  std::printf("scalein bench: incremental scale independence (§5)\n");
  GrowDatabase();
  GrowUpdate();
  RaaDerivation();
  return 0;
}
