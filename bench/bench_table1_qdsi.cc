// Experiments E1-E3 (DESIGN.md): empirical counterpart of Table 1, the
// paper's complexity matrix for QDSI. Absolute times are machine-dependent;
// the *regimes* are what the table in the paper predicts:
//   - Boolean CQ with ‖Q‖ ≤ M: O(1) regardless of |D| (Corollary 3.2).
//   - data-selecting CQ, fixed query: NP-complete in |D| — the exact solver's
//     search work can grow exponentially, while the yes-certificate fast
//     paths stay cheap (Theorem 3.3).
//   - FO with fixed M: polynomially many subsets (Proposition 3.4);
//     FO with variable M: combinatorial explosion (Theorem 3.1).

#include <cinttypes>

#include "bench_util.h"
#include "core/qdsi.h"
#include "eval/cq_evaluator.h"
#include "query/parser.h"
#include "query/printer.h"
#include "workload/formula_gen.h"
#include "workload/setcover_gen.h"
#include "workload/social_gen.h"

using namespace scalein;
using bench::Header;
using bench::MeasureMs;

namespace {

void BooleanCqConstantTime() {
  Header("E3: Boolean CQ, ‖Q‖ <= M",
         "Table 1, Boolean CQ rows: O(1)-time (combined and data complexity)",
         "decision time flat while |D| grows 100x");
  Result<Cq> q = ParseCq("B() :- friend(p, id), visit(id, rid)");
  SI_CHECK(q.ok());
  TablePrinter table({"|D|", "verdict", "method", "ms/decision"});
  for (uint64_t persons : {1000u, 10000u, 100000u}) {
    SocialConfig config;
    config.num_persons = persons;
    Database db = GenerateSocial(config);
    // Pre-warm the indexes the evaluator will use so the measured time is
    // the decision procedure itself.
    QdsiDecision first = DecideQdsiCq(*q, db, 2);
    double ms = MeasureMs([&] { DecideQdsiCq(*q, db, 2); });
    table.AddRow({FormatCount(db.TotalTuples()), VerdictName(first.verdict),
                  first.method, FormatDouble(ms, 4)});
  }
  table.Print();
}

void DataSelectingCqSupportCover() {
  Header("E2: data-selecting CQ, exact decision at the yes/no boundary",
         "Table 1, CQ data-selecting rows: NP-complete data complexity "
         "(reduction from set cover)",
         "work grows steeply with instance size near the boundary; the "
         "M >= |Q(D)|*‖Q‖ fast path stays cheap");
  TablePrinter table({"elements", "sets", "|D|", "boundary M", "verdict",
                      "B&B nodes", "ms (exact)", "ms (fast path)"});
  for (uint64_t elements : {6u, 10u, 14u, 18u}) {
    SetCoverConfig config;
    config.num_elements = elements;
    config.num_sets = 3 + elements / 2;
    config.planted_cover_size = 3;
    config.noise_memberships = elements * 2;
    config.seed = elements;
    SetCoverInstance inst = GenerateSetCover(config);
    MinWitnessResult minimum = MinimumWitnessCq(inst.query, inst.db, 10000);
    SI_CHECK(minimum.witness.has_value());
    uint64_t boundary = minimum.witness->size();  // smallest yes-budget
    QdsiDecision no_case = DecideQdsiCq(inst.query, inst.db, boundary - 1);
    double exact_ms =
        MeasureMs([&] { DecideQdsiCq(inst.query, inst.db, boundary - 1); });
    double fast_ms = MeasureMs(
        [&] { DecideQdsiCq(inst.query, inst.db, inst.db.TotalTuples()); });
    table.AddRow({std::to_string(elements), std::to_string(config.num_sets),
                  std::to_string(inst.db.TotalTuples()),
                  std::to_string(boundary), VerdictName(no_case.verdict),
                  std::to_string(no_case.work), FormatDouble(exact_ms, 3),
                  FormatDouble(fast_ms, 4)});
  }
  table.Print();
}

void FoFixedVersusVariableM() {
  Header("E1: FO subset search, fixed vs variable M",
         "Table 1, special case: fixed M makes FO data complexity PTIME "
         "(Proposition 3.4); variable M stays intractable (Theorem 3.1)",
         "fixed-M subsets grow polynomially in |D|; variable-M subsets "
         "explode");
  Schema s;
  s.Relation("e", {"a", "b"});
  Result<FoQuery> q = ParseFoQuery("Q(x) := exists y. e(x, y)", &s);
  SI_CHECK(q.ok());
  TablePrinter table({"|D|", "subsets (M=2)", "ms (M=2)", "subsets (M=|D|/2)",
                      "ms (M=|D|/2)"});
  for (size_t n : {6u, 9u, 12u, 15u}) {
    Database db(s);
    Rng rng(n);
    while (db.TotalTuples() < n) {
      db.Insert("e", Tuple{Value::Int(static_cast<int64_t>(rng.Uniform(6))),
                           Value::Int(static_cast<int64_t>(rng.Uniform(6)))});
    }
    QdsiDecision fixed = DecideQdsiFo(*q, db, 2);
    double fixed_ms = MeasureMs([&] { DecideQdsiFo(*q, db, 2); }, 5.0);
    QdsiDecision variable = DecideQdsiFo(*q, db, n / 2);
    double variable_ms = MeasureMs([&] { DecideQdsiFo(*q, db, n / 2); }, 5.0);
    table.AddRow({std::to_string(n), std::to_string(fixed.work),
                  FormatDouble(fixed_ms, 3), std::to_string(variable.work),
                  FormatDouble(variable_ms, 3)});
  }
  table.Print();
}

void CombinedComplexityQuerySize() {
  Header("E1: combined complexity, growing query size",
         "Table 1, CQ combined complexity: Sigma-p-3-complete — both the "
         "query and the witness structure drive the search",
         "per-answer support enumeration grows with ‖Q‖");
  TablePrinter table({"chain length ‖Q‖", "|D|", "answers", "ms (exact)"});
  Schema s;
  s.Relation("e", {"a", "b"});
  for (size_t k : {1u, 2u, 3u, 4u}) {
    // Chain query Q(x0) :- e(x0,x1), ..., e(x_{k-1},x_k) over a random graph.
    std::string text = "Q(x0) :- ";
    for (size_t i = 0; i < k; ++i) {
      if (i > 0) text += ", ";
      text += "e(x" + std::to_string(i) + ", x" + std::to_string(i + 1) + ")";
    }
    Result<Cq> q = ParseCq(text, &s);
    SI_CHECK(q.ok());
    Database db(s);
    Rng rng(77 + k);
    while (db.TotalTuples() < 24) {
      db.Insert("e", Tuple{Value::Int(static_cast<int64_t>(rng.Uniform(8))),
                           Value::Int(static_cast<int64_t>(rng.Uniform(8)))});
    }
    QdsiDecision d = DecideQdsiCq(*q, db, 4);
    double ms = MeasureMs([&] { DecideQdsiCq(*q, db, 4); }, 10.0);
    size_t answers = 0;
    {
      CqEvaluator eval(&db);
      answers = eval.EvaluateFull(*q).size();
    }
    table.AddRow({std::to_string(k), std::to_string(db.TotalTuples()),
                  std::to_string(answers), FormatDouble(ms, 3)});
    (void)d;
  }
  table.Print();
}

}  // namespace

int main() {
  std::printf("scalein bench: Table 1 (QDSI complexity matrix)\n");
  BooleanCqConstantTime();
  DataSelectingCqSupportCover();
  FoFixedVersusVariableM();
  CombinedComplexityQuerySize();
  return 0;
}
