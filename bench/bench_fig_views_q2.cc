// Experiment E8 (DESIGN.md): scale independence using views (Example 1.1(c)
// / Corollary 6.2 / Example 6.3). Q2 rewritten over materialized V1/V2
// touches at most F (the friend cap) base tuples per query, independent of
// |D|; direct evaluation against the base grows with the data.

#include "bench_util.h"
#include "eval/cq_evaluator.h"
#include "incremental/delta_rules.h"
#include "query/parser.h"
#include "query/printer.h"
#include "util/rng.h"
#include "views/view_exec.h"
#include "views/vqsi.h"
#include "workload/social_gen.h"

using namespace scalein;
using bench::Header;
using bench::MeasureMs;

int main() {
  Header("E8: Q2 via materialized views V1/V2 vs direct evaluation",
         "Example 1.1(c) / Example 6.3 / Corollary 6.2",
         "base fetches bounded by the friend cap and flat in |D|; direct "
         "evaluation cost tracks the data");

  Result<Cq> q2 = ParseCq(
      "Q2(p, rn) :- friend(p, id), visit(id, rid), "
      "person(id, pn, \"NYC\"), restr(rid, rn, \"NYC\", \"A\")");
  SI_CHECK(q2.ok());
  Result<Cq> rw = ParseCq(
      "Q2p(p, rn) :- friend(p, id), V2(id, rid), V1(rid, rn, \"A\")");
  SI_CHECK(rw.ok());
  Variable p = Variable::Named("p");

  bench::JsonReport report("fig_views_q2");
  TablePrinter table({"persons", "|D|", "|V1|+|V2|", "base fetches",
                      "view fetches", "index lookups", "views ms",
                      "direct ms"});
  for (uint64_t persons : {5000u, 50000u, 250000u}) {
    SocialConfig config;
    config.num_persons = persons;
    config.max_friends_per_person = 50;
    config.num_restaurants = 300;
    config.avg_visits_per_person = 6;
    Schema schema = SocialSchema(false);
    Database db = GenerateSocial(config);
    AccessSchema access = SocialAccessSchema(config);

    ViewSet views;
    views.Define("V1(rid, rn, rating) :- restr(rid, rn, \"NYC\", rating)",
                 schema)
        .Define("V2(id, rid) :- visit(id, rid), person(id, pn, \"NYC\")",
                schema);
    Result<ViewExecutor> exec = ViewExecutor::Create(db, schema, views, access);
    SI_CHECK(exec.ok());

    Binding params{{p, Value::Int(42)}};
    ViewExecStats stats;
    stats.raw.capture_ops = true;  // per-atom breakdown for the sidecar
    Result<AnswerSet> via_views = exec->Evaluate(*rw, params, &stats);
    SI_CHECK(via_views.ok());
    double views_ms =
        MeasureMs([&] { (void)exec->Evaluate(*rw, params, nullptr); });

    CqEvaluator direct(&db);
    AnswerSet reference = direct.Evaluate(*q2, params);
    SI_CHECK(reference == *via_views);
    double direct_ms = MeasureMs([&] { (void)direct.Evaluate(*q2, params); });

    size_t view_sizes = exec->extended_db().relation("V1").size() +
                        exec->extended_db().relation("V2").size();
    table.AddRow({FormatCount(persons), FormatCount(db.TotalTuples()),
                  FormatCount(view_sizes),
                  std::to_string(stats.base_tuples_fetched),
                  std::to_string(stats.view_tuples_fetched),
                  std::to_string(stats.raw.index_lookups),
                  FormatDouble(views_ms, 3), FormatDouble(direct_ms, 3)});
    std::string prefix = "persons_" + std::to_string(persons) + ".";
    report.Add(prefix + "total_tuples", db.TotalTuples());
    report.Add(prefix + "base_tuples_fetched", stats.base_tuples_fetched);
    report.Add(prefix + "view_tuples_fetched", stats.view_tuples_fetched);
    report.Add(prefix + "index_lookups", stats.raw.index_lookups);
    report.Add(prefix + "views_ms", views_ms);
    report.Add(prefix + "direct_ms", direct_ms);
    // Per-atom breakdown of the rewriting's evaluation: view atoms and the
    // residual friend probe, each next to its per-lookup bound.
    for (size_t i = 0; i < stats.raw.ops.size(); ++i) {
      const exec::OpCounters& op = stats.raw.ops[i];
      std::string op_prefix = prefix + "op" + std::to_string(i) + ".";
      report.Add(op_prefix + "label", op.label);
      report.Add(op_prefix + "rows_out", op.rows_out);
      report.Add(op_prefix + "tuples_fetched", op.tuples_fetched);
      report.Add(op_prefix + "index_lookups", op.index_lookups);
      if (op.static_bound >= 0) {
        report.Add(op_prefix + "static_bound", op.static_bound);
      }
    }
  }
  table.Print();
  std::printf(
      "\nThe base-fetch column never exceeds the friend cap (50): the cost of "
      "Q2(p0) is carried by the cached views, as §6 prescribes.\n");

  // --- View maintenance cost (§6: "subject to the storage and maintenance
  // costs of V(D)") — incremental extent maintenance vs full refresh.
  bench::Header(
      "E8b: view maintenance under base insertions",
      "§6 maintenance-cost caveat + §5 machinery applied to view extents",
      "incremental maintenance cost tracks |update|, full refresh tracks |D|");
  TablePrinter mtable({"persons", "|D|", "|update|", "incremental",
                       "maint fetches", "maint ms", "refresh ms"});
  for (uint64_t persons : {5000u, 50000u}) {
    SocialConfig config;
    config.num_persons = persons;
    config.max_friends_per_person = 50;
    config.num_restaurants = 300;
    config.avg_visits_per_person = 6;
    Schema schema = SocialSchema(false);
    Database db = GenerateSocial(config);
    AccessSchema access = SocialAccessSchema(config);
    ViewSet views;
    views.Define("V1(rid, rn, rating) :- restr(rid, rn, \"NYC\", rating)",
                 schema)
        .Define("V2(id, rid) :- visit(id, rid), person(id, pn, \"NYC\")",
                schema);
    Result<ViewExecutor> exec = ViewExecutor::Create(db, schema, views, access);
    SI_CHECK(exec.ok());

    // A batch of fresh visits.
    Update u;
    Rng rng(persons);
    size_t target = 50;
    const Relation& visit = exec->extended_db().relation("visit");
    while (u.TotalTuples() < target) {
      Tuple t{Value::Int(static_cast<int64_t>(rng.Uniform(persons))),
              Value::Int(static_cast<int64_t>(rng.Uniform(300)))};
      bool dup = false;
      auto it = u.insertions.find("visit");
      if (it != u.insertions.end()) {
        for (const Tuple& existing : it->second) dup |= existing == t;
      }
      if (!dup && !visit.Contains(t)) u.AddInsertion("visit", t);
    }

    BoundedEvalStats stats;
    bool incremental = false;
    bench::Timer timer;
    SI_CHECK(exec->ApplyBaseUpdate(u, &stats, &incremental).ok());
    double maint_ms = timer.ElapsedMs();
    // Full refresh cost on the same data, for comparison.
    bench::Timer refresh_timer;
    SI_CHECK(RefreshViews(
                 const_cast<Database*>(&exec->extended_db()), views)
                 .ok());
    double refresh_ms = refresh_timer.ElapsedMs();
    mtable.AddRow({FormatCount(persons),
                   FormatCount(exec->extended_db().TotalTuples()),
                   std::to_string(u.TotalTuples()),
                   incremental ? "yes" : "no",
                   std::to_string(stats.base_tuples_fetched),
                   FormatDouble(maint_ms, 3), FormatDouble(refresh_ms, 3)});
  }
  mtable.Print();
  return 0;
}
