// Experiment E13 (extension; §7 future work): access-schema design for a
// query workload. The advisor searches statement combinations with the
// controllability engine as oracle; cost grows with the candidate space
// (relations × attribute subsets) and the design size needed.

#include "bench_util.h"
#include "core/advisor.h"
#include "query/parser.h"
#include "query/printer.h"
#include "workload/social_gen.h"

using namespace scalein;
using bench::Header;
using bench::MeasureMs;

int main() {
  Header("E13 (extension): access-schema advisor on the Graph Search workload",
         "§7 future work: optimal access-schema design for a workload",
         "combinations checked grow with workload breadth; the proposed "
         "design is provably sufficient (controllability-certified)");

  Schema schema = SocialSchema(false);
  SocialConfig config;
  config.num_persons = 300;
  config.max_friends_per_person = 12;
  config.num_restaurants = 40;
  config.avg_visits_per_person = 5;
  Database sample = GenerateSocial(config);

  Variable p = Variable::Named("p");
  auto wq = [&](const char* text) {
    Result<FoQuery> q = ParseFoQuery(text, &schema);
    SI_CHECK(q.ok());
    return WorkloadQuery{*std::move(q), {p}};
  };

  std::vector<std::pair<const char*, std::vector<WorkloadQuery>>> workloads = {
      {"Q1 only",
       {wq("Q1(p, name) := exists id. friend(p, id) and person(id, name, "
           "\"NYC\")")}},
      {"Q1 + Q2",
       {wq("Q1(p, name) := exists id. friend(p, id) and person(id, name, "
           "\"NYC\")"),
        wq("Q2(p, rn) := exists id, rid, pn. friend(p, id) and visit(id, rid) "
           "and person(id, pn, \"NYC\") and restr(rid, rn, \"NYC\", \"A\")")}},
      {"Q1 + Q2 + reverse-friends",
       {wq("Q1(p, name) := exists id. friend(p, id) and person(id, name, "
           "\"NYC\")"),
        wq("Q2(p, rn) := exists id, rid, pn. friend(p, id) and visit(id, rid) "
           "and person(id, pn, \"NYC\") and restr(rid, rn, \"NYC\", \"A\")"),
        wq("Qr(p, name) := exists id. friend(id, p) and person(id, name, "
           "\"NYC\")")}},
  };

  TablePrinter table({"workload", "found", "statements", "total bound",
                      "combinations", "ms"});
  AdvisorOptions options;
  options.max_statements = 5;
  options.default_bound = 2000;
  for (const auto& [label, workload] : workloads) {
    Result<AdvisorResult> first =
        AdviseAccessSchema(workload, schema, &sample, options);
    SI_CHECK(first.ok());
    double ms = MeasureMs(
        [&] { (void)AdviseAccessSchema(workload, schema, &sample, options); },
        10.0);
    table.AddRow({label, first->found ? "yes" : "no",
                  std::to_string(first->design.statements().size()),
                  FormatDouble(first->total_fetch_bound, 0),
                  std::to_string(first->combinations_checked),
                  FormatDouble(ms, 2)});
    if (first->found) {
      std::printf("design for '%s':\n%s", label,
                  first->design.ToString().c_str());
    }
  }
  table.Print();
  return 0;
}
