// E9: the multi-session serve layer under load.
//
// Default mode measures and writes BENCH_serve.json for
// scripts/bench_regress.py:
//   * Per-class determinism — each query class runs once, serially, and its
//     measured fetch count must sit within its static Theorem 4.2 bound
//     (`--check-bounds` verifies class_*.base_tuples_fetched <=
//     class_*.static_bound; diff mode pins the counts bit-stable).
//   * Closed-loop throughput/latency — K client sessions issue queries
//     back-to-back (serve.closed.* keys: throughput_qps, p50_ms, p99_ms).
//   * Open-loop Poisson arrivals — a fixed seeded arrival schedule replays
//     against the server (serve.open.* keys + admission verdict counts).
//   * Per-phase latency split — the closed loop runs with the structured
//     access log armed; its records are loaded back and summarised as
//     serve.phase.{queue_wait,exec,e2e}_{p50,p99}_ms sidecar keys.
//   * Instrumentation overhead — paired serial batches with the access log
//     off (serve.instr.plain_ms) and on (serve.instr.instrumented_ms);
//     `--check-bounds` gates the delta at --overhead-pct.
//
// `--overload` runs the 8x oversubscription scenario instead (no sidecar):
// 8 * max_running closed-loop clients hammer a mixed workload (cheap, join,
// over-budget, and unboundable queries) against one run slot per hardware
// thread. The scenario exits non-zero unless
//   * every response is a structured admission verdict (no crash, no hang,
//     no stray error),
//   * every *admitted* query completes within its envelope (a sound bound
//     can never trip its own fetch budget),
//   * shedding happens only through bound-based verdicts (reject
//     no-static-bound/budget/queue-*) — and some shedding did happen,
//   * the queue never exceeds its configured capacity, and
//   * the server stays responsive: a post-burst probe query admits promptly.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "io/shell.h"
#include "serve/access_log.h"
#include "serve/server.h"
#include "util/rng.h"
#include "util/strings.h"

using namespace scalein;
using bench::Header;

namespace {

constexpr size_t kPersons = 400;
constexpr size_t kFriendsPerPerson = 5;

// Query classes. With `access friend(id1) N=50` and `key person(id)`:
// cheap scans one friend list (bound 50), join adds a person lookup per
// friend (bound 100), heavy takes two friend hops (bound quadratic in N —
// larger than the serving session budget, so it degrades under load), and
// nobound touches the secret relation no access statement covers.
const char* kCheap = "F(p, id) := friend(p, id)";
const char* kJoin =
    "Q(p, name) := exists id. friend(p, id) and person(id, name, \"NYC\")";
const char* kHeavy =
    "H(p, name) := exists a. exists b. friend(p, a) and friend(a, b) and "
    "person(b, name, \"NYC\")";
const char* kNoBound = "S(p, b) := secret(p, b)";

std::string EvalLine(const char* query, uint64_t person) {
  return StrFormat("eval p=%llu ", static_cast<unsigned long long>(person)) +
         query;
}

void LoadCatalog(Shell* shell) {
  auto must = [shell](const std::string& line) {
    Result<std::string> out = shell->Execute(line);
    SI_CHECK(out.ok());
  };
  must("schema relation person(id, name, city)");
  must("schema relation friend(id1, id2)");
  must("schema relation secret(a, b)");
  must("access access friend(id1) N=50");
  must("access key person(id)");
  must("row secret 1,2");
  Rng rng(1234);
  for (size_t i = 0; i < kPersons; ++i) {
    must(StrFormat("row person %zu,\"p%zu\",\"%s\"", i, i,
                   rng.Bernoulli(0.5) ? "NYC" : "LA"));
  }
  for (size_t i = 0; i < kPersons; ++i) {
    for (size_t f = 0; f < kFriendsPerPerson; ++f) {
      must(StrFormat("row friend %zu,%llu", i,
                     static_cast<unsigned long long>(rng.Uniform(kPersons))));
    }
  }
}

// Pulls "<key>=<number>" or "(N <key>" style figures out of a deterministic
// serve response ("q1 admit bound=100 lease=100: ...\n...\n(2 answers, 4
// base tuples fetched)").
double ParseAfter(const std::string& text, const std::string& marker) {
  const size_t pos = text.find(marker);
  if (pos == std::string::npos) return -1.0;
  return std::strtod(text.c_str() + pos + marker.size(), nullptr);
}

double ParseBefore(const std::string& text, const std::string& marker) {
  const size_t pos = text.find(marker);
  if (pos == std::string::npos) return -1.0;
  size_t start = text.rfind('\n', pos);
  start = start == std::string::npos ? 0 : start + 1;
  if (text[start] == '(') ++start;
  return std::strtod(text.c_str() + start, nullptr);
}

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const size_t idx = static_cast<size_t>(p * (v.size() - 1));
  return v[idx];
}

struct LoopStats {
  std::vector<double> latencies_ms;
  uint64_t admitted = 0;
  uint64_t degraded = 0;
  uint64_t rejected = 0;
  uint64_t errors = 0;
  double wall_ms = 0;

  void Count(const Result<std::string>& out) {
    if (!out.ok()) {
      ++errors;
      return;
    }
    if (out->find(" admit ") != std::string::npos) {
      ++admitted;
    } else if (out->find(" degrade ") != std::string::npos) {
      ++degraded;
    } else if (out->find(" reject(") != std::string::npos) {
      ++rejected;
    } else {
      ++errors;
    }
  }

  void Merge(const LoopStats& other) {
    latencies_ms.insert(latencies_ms.end(), other.latencies_ms.begin(),
                        other.latencies_ms.end());
    admitted += other.admitted;
    degraded += other.degraded;
    rejected += other.rejected;
    errors += other.errors;
  }
};

// K sessions issue `per_client` queries back-to-back (closed loop). The
// arrival *content* is seeded per client, so the workload is reproducible
// even though interleaving is not.
LoopStats ClosedLoop(serve::Server* server, size_t clients, size_t per_client,
                     uint64_t seed, bool with_heavy) {
  std::vector<LoopStats> per(clients);
  std::vector<std::thread> threads;
  bench::Timer wall;
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([server, c, per_client, seed, with_heavy, &per] {
      const std::string sid = StrFormat("closed%zu", c);
      (void)server->HandleLine(sid, "hello");
      Rng rng(seed + c);
      for (size_t q = 0; q < per_client; ++q) {
        const uint64_t person = rng.Zipf(kPersons, 0.8);
        const uint64_t draw = rng.Uniform(with_heavy ? 10 : 2);
        const char* query = draw == 0 ? kCheap
                            : draw == 1 ? kJoin
                            : draw < 9  ? kHeavy
                                        : kNoBound;
        bench::Timer t;
        Result<std::string> out =
            server->HandleLine(sid, EvalLine(query, person));
        per[c].latencies_ms.push_back(t.ElapsedMs());
        per[c].Count(out);
      }
      (void)server->HandleLine(sid, "bye");
    });
  }
  for (std::thread& t : threads) t.join();
  LoopStats total;
  for (const LoopStats& p : per) total.Merge(p);
  total.wall_ms = wall.ElapsedMs();
  return total;
}

// Poisson arrivals at `rate_qps`, pre-drawn from a fixed seed and split
// round-robin over `clients` sessions; each client sleeps to its schedule
// (open loop: arrival times do not depend on completions).
LoopStats OpenLoop(serve::Server* server, size_t clients, size_t arrivals,
                   double rate_qps, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> schedule_ms(clients);
  std::vector<std::vector<std::string>> lines(clients);
  double t_ms = 0;
  for (size_t i = 0; i < arrivals; ++i) {
    t_ms += -std::log(1.0 - rng.NextDouble()) / rate_qps * 1000.0;
    const uint64_t person = rng.Zipf(kPersons, 0.8);
    const char* query = rng.Bernoulli(0.5) ? kCheap : kJoin;
    schedule_ms[i % clients].push_back(t_ms);
    lines[i % clients].push_back(EvalLine(query, person));
  }
  std::vector<LoopStats> per(clients);
  std::vector<std::thread> threads;
  const auto start = std::chrono::steady_clock::now();
  bench::Timer wall;
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([server, c, start, &schedule_ms, &lines, &per] {
      const std::string sid = StrFormat("open%zu", c);
      (void)server->HandleLine(sid, "hello");
      for (size_t i = 0; i < schedule_ms[c].size(); ++i) {
        std::this_thread::sleep_until(
            start + std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double, std::milli>(
                            schedule_ms[c][i])));
        bench::Timer t;
        Result<std::string> out = server->HandleLine(sid, lines[c][i]);
        per[c].latencies_ms.push_back(t.ElapsedMs());
        per[c].Count(out);
      }
      (void)server->HandleLine(sid, "bye");
    });
  }
  for (std::thread& t : threads) t.join();
  LoopStats total;
  for (const LoopStats& p : per) total.Merge(p);
  total.wall_ms = wall.ElapsedMs();
  return total;
}

void AddLoop(bench::JsonReport* report, const std::string& prefix,
             const LoopStats& stats) {
  const size_t n = stats.latencies_ms.size();
  report->Add(prefix + ".queries", static_cast<uint64_t>(n));
  report->Add(prefix + ".throughput_qps",
              stats.wall_ms > 0 ? n / stats.wall_ms * 1000.0 : 0.0);
  report->Add(prefix + ".p50_ms", Percentile(stats.latencies_ms, 0.50));
  report->Add(prefix + ".p99_ms", Percentile(stats.latencies_ms, 0.99));
  report->Add(prefix + ".admitted", stats.admitted);
  report->Add(prefix + ".degraded", stats.degraded);
  report->Add(prefix + ".rejected", stats.rejected);
  report->Add(prefix + ".errors", stats.errors);
}

constexpr const char* kAccessLogPath = "BENCH_serve_access.jsonl";
constexpr const char* kInstrLogPath = "BENCH_serve_instr.jsonl";

// Drops every rotation generation of a prior run's log so loaded records
// come from this run only.
void RemoveLogGenerations(const char* path) {
  std::remove(path);
  std::remove((std::string(path) + ".1").c_str());
  std::remove((std::string(path) + ".2").c_str());
}

// Serial batch of heavy-class evaluations against a fresh server, min of
// three timed trials (after warmup). `log_path` empty = access log off; the
// plain/instrumented pair isolates the per-request observability cost the
// regression gate caps. Heavy queries keep the ratio honest: the access-log
// append is a constant few microseconds per request, so it is measured
// against requests that do real evaluation work, not protocol microqueries.
double InstrBatchMs(Shell* shell, const std::string& log_path) {
  serve::Server::Options options;
  options.sla.session_fetch_budget = 10000000;
  options.sla.max_running = 1;
  options.access_log_path = log_path;
  serve::Server server(shell, options);
  SI_CHECK(server.Start().ok());
  (void)server.HandleLine("instr", "hello");
  constexpr size_t kEvals = 100;
  for (size_t i = 0; i < 16; ++i) {
    (void)server.HandleLine("instr", EvalLine(kHeavy, i % kPersons));
  }
  double best = 0;
  for (int trial = 0; trial < 3; ++trial) {
    bench::Timer t;
    for (size_t i = 0; i < kEvals; ++i) {
      (void)server.HandleLine("instr", EvalLine(kHeavy, (17 * i) % kPersons));
    }
    const double ms = t.ElapsedMs();
    if (trial == 0 || ms < best) best = ms;
  }
  (void)server.HandleLine("instr", "bye");
  server.Drain();
  return best;
}

int RunOverload() {
  Header("E9b: 8x oversubscription overload",
         "PIQL-style admission control (paper §1, Thm 4.2 bounds as SLAs)",
         "every admitted query completes within its envelope; shedding is "
         "bound-based only; the server stays responsive");
  Shell shell;
  LoadCatalog(&shell);
  serve::Server::Options options;
  options.sla.session_fetch_budget = 2000;
  options.sla.max_running =
      std::max(1u, std::thread::hardware_concurrency());
  options.sla.queue_capacity = 32;
  options.sla.queue_class_capacity = 16;
  options.sla.queue_timeout_ms = 20;
  serve::Server server(&shell, options);
  SI_CHECK(server.Start().ok());

  const size_t clients = 8 * options.sla.max_running;
  constexpr size_t kPerClient = 30;
  std::atomic<uint64_t> envelope_violations{0};
  std::atomic<uint64_t> non_bound_sheds{0};
  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> sheds{0};
  std::atomic<size_t> max_queue_depth{0};

  std::atomic<bool> sampling{true};
  std::thread sampler([&server, &sampling, &max_queue_depth] {
    while (sampling.load(std::memory_order_relaxed)) {
      const size_t depth = server.queue_depth();
      size_t seen = max_queue_depth.load(std::memory_order_relaxed);
      while (depth > seen &&
             !max_queue_depth.compare_exchange_weak(seen, depth)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::vector<std::thread> threads;
  bench::Timer wall;
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      const std::string sid = StrFormat("ovl%zu", c);
      (void)server.HandleLine(sid, "hello");
      Rng rng(99 + c);
      for (size_t q = 0; q < kPerClient; ++q) {
        const uint64_t person = rng.Zipf(kPersons, 0.8);
        const uint64_t draw = rng.Uniform(10);
        const char* query = draw < 3   ? kCheap
                            : draw < 6 ? kJoin
                            : draw < 9 ? kHeavy
                                       : kNoBound;
        Result<std::string> out =
            server.HandleLine(sid, EvalLine(query, person));
        if (!out.ok()) {
          ++errors;
          continue;
        }
        if (out->find(" admit ") != std::string::npos) {
          // A sound static bound can never trip its own fetch envelope.
          if (out->find("tripped: fetch-budget") != std::string::npos) {
            ++envelope_violations;
          }
        } else if (out->find(" degrade ") != std::string::npos) {
          // Degraded runs may trip their reduced lease — that IS the
          // contract (a sound partial extent), not a violation.
        } else if (out->find(" reject(") != std::string::npos) {
          ++sheds;
          // Bound-based shedding only: every refusal must cite the static
          // bound (no-static-bound/budget) or bounded-queue backpressure.
          if (out->find("reject(no-static-bound)") == std::string::npos &&
              out->find("reject(budget)") == std::string::npos &&
              out->find("reject(queue-timeout)") == std::string::npos &&
              out->find("reject(queue-full)") == std::string::npos &&
              out->find("reject(queue-class-full)") == std::string::npos) {
            ++non_bound_sheds;
          }
        } else {
          ++errors;
        }
      }
      (void)server.HandleLine(sid, "bye");
    });
  }
  for (std::thread& t : threads) t.join();
  const double burst_ms = wall.ElapsedMs();
  sampling.store(false, std::memory_order_relaxed);
  sampler.join();

  // Responsiveness probe: the instant the burst ends, a fresh session's
  // cheap query must admit and answer promptly.
  bench::Timer probe;
  (void)server.HandleLine("probe", "hello");
  Result<std::string> probed = server.HandleLine("probe", EvalLine(kCheap, 1));
  const double probe_ms = probe.ElapsedMs();
  (void)server.HandleLine("probe", "bye");

  std::printf("clients=%zu slots=%zu burst=%.0fms max-queue-depth=%zu\n",
              clients, options.sla.max_running, burst_ms,
              max_queue_depth.load());
  std::printf(
      "sheds=%llu errors=%llu envelope-violations=%llu "
      "non-bound-sheds=%llu probe=%.1fms\n",
      static_cast<unsigned long long>(sheds.load()),
      static_cast<unsigned long long>(errors.load()),
      static_cast<unsigned long long>(envelope_violations.load()),
      static_cast<unsigned long long>(non_bound_sheds.load()), probe_ms);

  int rc = 0;
  auto fail = [&rc](const char* what) {
    std::fprintf(stderr, "OVERLOAD VIOLATION: %s\n", what);
    rc = 1;
  };
  if (errors.load() != 0) fail("responses that were not admission verdicts");
  if (envelope_violations.load() != 0) {
    fail("an admitted query tripped its own fetch envelope");
  }
  if (non_bound_sheds.load() != 0) fail("shedding without a bound to cite");
  if (sheds.load() == 0) {
    fail("8x oversubscription shed nothing — scenario lost its teeth");
  }
  if (max_queue_depth.load() > options.sla.queue_capacity) {
    fail("queue grew past its configured capacity");
  }
  if (!probed.ok() ||
      probed->find(" admit ") == std::string::npos) {
    fail("post-burst probe was not admitted");
  }
  if (probe_ms > 5000.0) fail("post-burst probe took > 5s");
  if (server.queue_depth() != 0 || server.running() != 0) {
    fail("queue or run slots leaked after the burst");
  }
  std::printf(rc == 0 ? "overload scenario OK\n"
                      : "overload scenario FAILED\n");
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--overload") == 0) return RunOverload();
  }

  Header("E9: multi-session serve layer",
         "PIQL-style admission control (paper §1, Thm 4.2 bounds as SLAs)",
         "per-class fetch counts within their static bounds; stable "
         "closed/open-loop latency under concurrent sessions");
  bench::JsonReport report("serve");
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  report.Add("hw_threads", static_cast<uint64_t>(hw));

  // The bench controls its own observability plane: ambient env must not
  // flip the access log on (plain run) or redirect it (instrumented run).
  ::unsetenv("SCALEIN_ACCESS_LOG_PATH");
  ::unsetenv("SCALEIN_ACCESS_LOG_MAX_BYTES");
  RemoveLogGenerations(kAccessLogPath);
  RemoveLogGenerations(kInstrLogPath);

  Shell shell;
  LoadCatalog(&shell);
  serve::Server::Options options;
  options.sla.session_fetch_budget = 100000;
  options.sla.max_running = hw;
  options.access_log_path = kAccessLogPath;
  serve::Server server(&shell, options);
  SI_CHECK(server.Start().ok());

  // Per-class serial runs: deterministic fetch counts the regression gate
  // pins against their static bounds (and bit-stable across runs).
  struct ClassSpec {
    const char* key;
    const char* query;
  };
  for (const ClassSpec& spec : {ClassSpec{"class_cheap", kCheap},
                                ClassSpec{"class_join", kJoin},
                                ClassSpec{"class_heavy", kHeavy}}) {
    const std::string sid = std::string("serial_") + spec.key;
    (void)server.HandleLine(sid, "hello");
    Result<std::string> out = server.HandleLine(sid, EvalLine(spec.query, 1));
    SI_CHECK(out.ok());
    const double bound = ParseAfter(*out, "bound=");
    const double fetched = ParseBefore(*out, " base tuples fetched");
    const double answers = ParseBefore(*out, " answers");
    SI_CHECK(bound >= 0 && fetched >= 0);
    report.Add(std::string(spec.key) + ".static_bound", bound);
    report.Add(std::string(spec.key) + ".base_tuples_fetched",
               static_cast<uint64_t>(fetched));
    report.Add(std::string(spec.key) + ".answers",
               static_cast<uint64_t>(answers));
    (void)server.HandleLine(sid, "bye");
  }

  // Closed loop: min(hw, 4) sessions back-to-back.
  const size_t clients = std::min<size_t>(hw, 4);
  LoopStats closed =
      ClosedLoop(&server, clients, /*per_client=*/64, /*seed=*/7,
                 /*with_heavy=*/false);
  AddLoop(&report, "serve.closed", closed);
  std::printf("closed loop: %zu clients, %.0f qps, p99 %.2fms\n", clients,
              closed.latencies_ms.size() / closed.wall_ms * 1000.0,
              Percentile(closed.latencies_ms, 0.99));

  // Per-phase latency split, recomputed from the structured access log the
  // closed loop just wrote — the same artifact scripts/serve_report.py
  // reads offline. Filtered to the closed-loop sessions so the serial
  // class probes above don't skew the percentiles.
  {
    serve::AccessLogLoadReport log_report;
    Result<std::vector<serve::AccessLogRecord>> records =
        serve::LoadAccessLogRecords(kAccessLogPath, &log_report);
    SI_CHECK(records.ok() && log_report.malformed == 0);
    std::vector<double> queue_wait, exec, e2e;
    for (const serve::AccessLogRecord& rec : *records) {
      if (rec.session_id.rfind("closed", 0) != 0) continue;
      queue_wait.push_back(rec.queue_wait_ms);
      exec.push_back(rec.exec_ms);
      e2e.push_back(rec.e2e_ms);
    }
    SI_CHECK(e2e.size() == closed.latencies_ms.size());
    report.Add("serve.phase.records", static_cast<uint64_t>(e2e.size()));
    report.Add("serve.phase.queue_wait_p50_ms", Percentile(queue_wait, 0.50));
    report.Add("serve.phase.queue_wait_p99_ms", Percentile(queue_wait, 0.99));
    report.Add("serve.phase.exec_p50_ms", Percentile(exec, 0.50));
    report.Add("serve.phase.exec_p99_ms", Percentile(exec, 0.99));
    report.Add("serve.phase.e2e_p50_ms", Percentile(e2e, 0.50));
    report.Add("serve.phase.e2e_p99_ms", Percentile(e2e, 0.99));
    std::printf("phase split (closed loop): queue_wait p99 %.3fms, "
                "exec p99 %.3fms, e2e p99 %.3fms over %zu records\n",
                Percentile(queue_wait, 0.99), Percentile(exec, 0.99),
                Percentile(e2e, 0.99), e2e.size());
  }

  // Open loop: seeded Poisson arrivals at a rate the closed loop proved
  // sustainable (half its throughput), so queueing stays transient.
  const double rate_qps = std::max(
      50.0, closed.latencies_ms.size() / closed.wall_ms * 1000.0 / 2.0);
  LoopStats open =
      OpenLoop(&server, clients, /*arrivals=*/256, rate_qps, /*seed=*/11);
  AddLoop(&report, "serve.open", open);
  report.Add("serve.open.offered_qps", rate_qps);
  std::printf("open loop: %.0f qps offered, p99 %.2fms\n", rate_qps,
              Percentile(open.latencies_ms, 0.99));

  server.Drain();

  // Instrumentation overhead: identical serial batches with the access log
  // off, then on. The delta is the per-request cost of the observability
  // plane's only traffic-scaled sink; bench_regress.py --check-bounds caps
  // it at --overhead-pct (+1 ms cushion for timer granularity).
  const double plain_ms = InstrBatchMs(&shell, "");
  const double instrumented_ms = InstrBatchMs(&shell, kInstrLogPath);
  report.Add("serve.instr.plain_ms", plain_ms);
  report.Add("serve.instr.instrumented_ms", instrumented_ms);
  std::printf("instrumentation: plain %.3fms vs instrumented %.3fms "
              "(%+.2f%%)\n",
              plain_ms, instrumented_ms,
              plain_ms > 0 ? 100.0 * (instrumented_ms - plain_ms) / plain_ms
                           : 0.0);

  SI_CHECK(closed.errors == 0 && open.errors == 0);
  return 0;
}
