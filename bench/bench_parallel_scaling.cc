// Experiment E8: morsel-parallel bounded evaluation and the derivation cache.
//
// Two claims the sidecar pins down for scripts/bench_regress.py:
//   1. Parallel speedup without accounting drift — a batch of bounded Q1
//      evaluations over sharded relations runs >= 2x faster at 4 threads
//      than at 1 (enforced only when the host has >= 4 hardware threads),
//      while fetch counts, index lookups, and the Theorem 4.2 verdict are
//      byte-identical at every thread count.
//   2. The analysis cache turns repeated controllability derivations into
//      hash lookups — warm lookups are >= 5x faster than cold derivations.

#include <algorithm>
#include <limits>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/analysis_cache.h"
#include "core/bounded_eval.h"
#include "core/controllability.h"
#include "exec/compiler.h"
#include "exec/vm.h"
#include "obs/journal.h"
#include "par/worker_pool.h"
#include "query/parser.h"
#include "query/printer.h"
#include "workload/social_gen.h"

using namespace scalein;
using bench::Header;
using bench::MeasureMs;

namespace {

constexpr const char* kQ1 =
    "Q1(p, name) := exists id. friend(p, id) and person(id, name, \"NYC\")";
constexpr size_t kBatch = 512;
constexpr size_t kShards = 8;

}  // namespace

int main() {
  Header("E8: morsel-parallel batch evaluation + analysis cache",
         "Theorem 4.2 under parallel execution; §4 derivations memoized",
         "batch latency drops with threads while fetch accounting and "
         "verdicts stay byte-identical; warm analysis >= 5x cheaper");

  bench::JsonReport report("parallel_scaling");
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  report.Add("hw_threads", static_cast<uint64_t>(hw));

  SocialConfig config;
  config.num_persons = 30000;
  config.max_friends_per_person = 50;
  config.num_restaurants = 200;
  config.avg_visits_per_person = 0;
  Schema schema = SocialSchema(false);
  Database db = GenerateSocial(config);
  AccessSchema access = SocialAccessSchema(config);
  SI_CHECK(access.BuildIndexes(&db, schema).ok());
  for (const char* rel : {"friend", "person"}) {
    db.relation(rel).Shard(kShards);
  }

  Result<FoQuery> q1 = ParseFoQuery(kQ1, &schema);
  SI_CHECK(q1.ok());
  Result<ControllabilityAnalysis> analysis =
      ControllabilityAnalysis::Analyze(q1->body, schema, access);
  SI_CHECK(analysis.ok());
  Variable p = Variable::Named("p");
  Result<double> per_query_bound = analysis->StaticFetchBound({p});
  SI_CHECK(per_query_bound.ok());

  std::vector<Binding> batch;
  batch.reserve(kBatch);
  for (size_t i = 0; i < kBatch; ++i) {
    batch.push_back({{p, Value::Int(static_cast<int64_t>(
                             (i * 131) % config.num_persons))}});
  }

  BoundedEvaluator evaluator(&db);
  // Compiled twin: the same batch through the bytecode VM (exec/vm.h) must
  // scale identically and keep byte-identical accounting at every width.
  Result<ControllabilityAnalysis> reanalysis =
      ControllabilityAnalysis::Analyze(q1->body, schema, access);
  SI_CHECK(reanalysis.ok());
  auto shared_analysis =
      std::make_shared<const ControllabilityAnalysis>(*std::move(reanalysis));
  Result<std::shared_ptr<const exec::CompiledProgram>> program =
      exec::CompilePlain(*q1, shared_analysis, {p});
  SI_CHECK(program.ok());
  exec::PrebuildCompiledIndexes(db, **program);
  exec::CompiledEvaluator vm(&db);
  // Governed twin of the evaluator: an armed governor with a budget no run
  // can trip pins down the cost of the ledger/lease/replay machinery itself.
  exec::GovernorLimits governed_limits;
  governed_limits.fetch_budget = 1ULL << 60;
  TablePrinter table({"threads", "batch ms", "compiled ms", "governed ms",
                      "queries/s", "fetches", "index lookups", "verdict"});
  par::WorkerPool& pool = par::WorkerPool::Global();
  uint64_t fetches_at_1 = 0;
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    pool.Resize(threads);
    BoundedEvalStats stats;
    std::vector<Result<AnswerSet>> results =
        evaluator.EvaluateBatch(*q1, *analysis, batch, &stats);
    for (const Result<AnswerSet>& r : results) SI_CHECK(r.ok());
    double batch_ms = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < 3; ++rep) {
      batch_ms = std::min(batch_ms, MeasureMs([&] {
        (void)evaluator.EvaluateBatch(*q1, *analysis, batch, nullptr);
      }));
    }
    // Compiled lane: identical batch through the VM — answers and fetch
    // accounting must match the interpreter at this thread count exactly.
    BoundedEvalStats compiled_stats;
    std::vector<Result<AnswerSet>> compiled_results =
        vm.EvaluateBatch(**program, batch, &compiled_stats);
    SI_CHECK(compiled_results.size() == results.size());
    for (size_t i = 0; i < results.size(); ++i) {
      SI_CHECK(compiled_results[i].ok());
      SI_CHECK(*compiled_results[i] == *results[i]);
    }
    SI_CHECK(compiled_stats.base_tuples_fetched == stats.base_tuples_fetched);
    SI_CHECK(compiled_stats.index_lookups == stats.index_lookups);
    double compiled_ms = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < 3; ++rep) {
      compiled_ms = std::min(compiled_ms, MeasureMs([&] {
        (void)vm.EvaluateBatch(**program, batch, nullptr);
      }));
    }
    evaluator.set_limits(governed_limits);
    BoundedEvalStats governed_stats;
    std::vector<Result<AnswerSet>> governed_results =
        evaluator.EvaluateBatch(*q1, *analysis, batch, &governed_stats);
    for (const Result<AnswerSet>& r : governed_results) SI_CHECK(r.ok());
    double governed_ms = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < 3; ++rep) {
      governed_ms = std::min(governed_ms, MeasureMs([&] {
        (void)evaluator.EvaluateBatch(*q1, *analysis, batch, nullptr);
      }));
    }
    evaluator.set_limits({});
    // Governed accounting must agree with ungoverned to the tuple.
    SI_CHECK(governed_stats.base_tuples_fetched == stats.base_tuples_fetched);
    SI_CHECK(governed_stats.index_lookups == stats.index_lookups);
    // The batch-level Theorem 4.2 bound: each of the kBatch evaluations
    // fetches at most M tuples.
    const double batch_bound = *per_query_bound * static_cast<double>(kBatch);
    obs::AccessCertificate cert;
    cert.static_bound = batch_bound;
    cert.actual_fetches = stats.base_tuples_fetched;
    const char* verdict = obs::CertVerdictName(obs::DeriveVerdict(cert));
    if (threads == 1) fetches_at_1 = stats.base_tuples_fetched;
    SI_CHECK(stats.base_tuples_fetched == fetches_at_1);

    table.AddRow({std::to_string(threads), FormatDouble(batch_ms, 3),
                  FormatDouble(compiled_ms, 3), FormatDouble(governed_ms, 3),
                  FormatCount(static_cast<uint64_t>(kBatch / (batch_ms / 1e3))),
                  FormatCount(stats.base_tuples_fetched),
                  FormatCount(stats.index_lookups), verdict});
    std::string prefix = "threads_" + std::to_string(threads) + ".";
    report.Add(prefix + "threads", static_cast<uint64_t>(threads));
    report.Add(prefix + "batch_ms", batch_ms);
    report.Add(prefix + "compiled_batch_ms", compiled_ms);
    report.Add(prefix + "compiled_base_tuples_fetched",
               compiled_stats.base_tuples_fetched);
    report.Add(prefix + "governed_batch_ms", governed_ms);
    report.Add(prefix + "governed_base_tuples_fetched",
               governed_stats.base_tuples_fetched);
    report.Add(prefix + "base_tuples_fetched", stats.base_tuples_fetched);
    report.Add(prefix + "index_lookups", stats.index_lookups);
    report.Add(prefix + "static_bound", batch_bound);
    report.Add(prefix + "verdict", std::string(verdict));
  }
  pool.Resize(1);
  table.Print();

  // Derivation cache over the session's working set: the §4 DP for Q1 plus
  // the Proposition 4.5 chase for embedded Q3 (the expensive derivation the
  // cache exists for). Cold = fresh cache, both derivations run; warm = the
  // same two lookups served from the cache.
  SocialConfig dated_config;
  dated_config.dated_visits = true;
  Schema dated_schema = SocialSchema(true);
  AccessSchema dated_access = SocialAccessSchema(dated_config);
  constexpr const char* kQ3 =
      "Q3(rn, p, yy) :- friend(p, id), visit(id, rid, yy, mm, dd), "
      "person(id, pn, \"NYC\"), restr(rid, rn, \"NYC\", \"A\")";
  Result<Cq> q3 = ParseCq(kQ3, &dated_schema);
  SI_CHECK(q3.ok());
  const VarSet q3_params = {p, Variable::Named("yy")};
  auto derive_all = [&](AnalysisCache& cache) {
    SI_CHECK(cache.GetOrAnalyze(q1->body, kQ1, schema, access).ok());
    SI_CHECK(cache
                 .GetOrAnalyzeEmbedded(*q3, kQ3, dated_schema, dated_access,
                                       q3_params)
                 .ok());
  };
  const double cold_ms = MeasureMs([&] {
    AnalysisCache cache;
    derive_all(cache);
  });
  AnalysisCache cache;
  derive_all(cache);
  const double warm_ms = MeasureMs([&] { derive_all(cache); });
  SI_CHECK(cache.stats().hits > 0);
  std::printf("\nanalysis cache: cold %s ms, warm %s ms (%.1fx)\n",
              FormatDouble(cold_ms, 5).c_str(),
              FormatDouble(warm_ms, 5).c_str(), cold_ms / warm_ms);
  report.Add("cache.cold_analysis_ms", cold_ms);
  report.Add("cache.warm_analysis_ms", warm_ms);
  report.Add("cache.cache_hit", static_cast<uint64_t>(1));
  return 0;
}
