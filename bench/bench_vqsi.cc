// Experiment E11 (DESIGN.md): cost of deciding VQSI (Theorem 6.1,
// NP-complete). The rewriting search space grows with the number of views
// whose bodies map into the query; irrelevant views are cheap to discard.

#include "bench_util.h"
#include "query/parser.h"
#include "query/printer.h"
#include "views/vqsi.h"
#include "workload/social_gen.h"

using namespace scalein;
using bench::Header;
using bench::MeasureMs;

int main() {
  Header("E11: VQSI decision cost vs number of views",
         "Theorem 6.1 (VQSI NP-complete for CQ)",
         "candidates checked grow with relevant views; verdicts match the "
         "constrained-variable characterization");

  Schema schema = SocialSchema(false);
  Result<Cq> q2 = ParseCq(
      "Q2(p, rn) :- friend(p, id), visit(id, rid), "
      "person(id, pn, \"NYC\"), restr(rid, rn, \"NYC\", \"A\")",
      &schema);
  SI_CHECK(q2.ok());
  Result<Cq> boolean = ParseCq(
      "B() :- visit(id, rid), person(id, pn, \"NYC\"), "
      "restr(rid, rn, \"NYC\", \"A\")",
      &schema);
  SI_CHECK(boolean.ok());

  TablePrinter table({"views", "query", "M", "verdict", "candidates", "ms"});
  for (size_t extra : {0u, 2u, 4u, 8u}) {
    ViewSet views;
    views.Define("V1(rid, rn, rating) :- restr(rid, rn, \"NYC\", rating)",
                 schema)
        .Define("V2(id, rid) :- visit(id, rid), person(id, pn, \"NYC\")",
                schema);
    // Extra relevant views: rating-specific restaurant lists.
    static const char* kRatings[] = {"A", "B", "C"};
    for (size_t i = 0; i < extra; ++i) {
      std::string def = "W" + std::to_string(i) + "(rid, rn) :- restr(rid, rn, \"NYC\", \"" +
                        kRatings[i % 3] + "\")";
      views.Define(def, schema);
    }

    for (const Cq* q : {&*q2, &*boolean}) {
      uint64_t m = q->IsBoolean() ? 1 : 10;
      VqsiDecision first = DecideVqsiCq(*q, views, schema, m);
      double ms = MeasureMs([&] { DecideVqsiCq(*q, views, schema, m); }, 10.0);
      table.AddRow({std::to_string(2 + extra), q->name(), std::to_string(m),
                    VerdictName(first.verdict),
                    std::to_string(first.candidates_checked),
                    FormatDouble(ms, 3)});
    }
  }
  table.Print();
  std::printf(
      "\nQ2 stays 'no' (its distinguished variables remain base-connected: "
      "Theorem 6.1), while the Boolean variant flips to 'yes' once the views "
      "cover its whole body.\n");
  return 0;
}
