// Experiment E5 (DESIGN.md): Example 4.6 / Proposition 4.5 — Q3 becomes
// scale-independent once the access schema embeds the 366-days-per-year
// statement and the one-visit-per-day FD. The embedded chase executor's
// data access stays bounded as |D| grows; the indexed join evaluator (no
// bound guarantees) and a full scan serve as baselines.

#include "bench_util.h"
#include "core/bounded_eval.h"
#include "core/embedded_controllability.h"
#include "eval/cq_evaluator.h"
#include "query/parser.h"
#include "query/printer.h"
#include "workload/social_gen.h"

using namespace scalein;
using bench::Header;
using bench::MeasureMs;

int main() {
  Header("E5: Q3(p0, yy) under the embedded access schema",
         "Example 4.6 / Proposition 4.5",
         "embedded chase: fetches bounded by 366-based product, flat in |D|; "
         "answers identical to the reference evaluator");

  Result<Cq> q3 = ParseCq(
      "Q3(rn, p, yy) :- friend(p, id), visit(id, rid, yy, mm, dd), "
      "person(id, pn, \"NYC\"), restr(rid, rn, \"NYC\", \"A\")");
  SI_CHECK(q3.ok());
  Variable p = Variable::Named("p");
  Variable yy = Variable::Named("yy");

  bench::JsonReport report("fig_embedded_q3");
  TablePrinter table({"persons", "|D|", "plan", "fetches", "index lookups",
                      "static bound", "chase ms", "join-eval ms", "answers"});
  for (uint64_t persons : {2000u, 20000u, 200000u}) {
    SocialConfig config;
    config.num_persons = persons;
    config.max_friends_per_person = 50;
    config.num_restaurants = 300;
    config.avg_visits_per_person = 8;
    config.dated_visits = true;
    Schema schema = SocialSchema(true);
    Database db = GenerateSocial(config);
    AccessSchema access = SocialAccessSchema(config);
    SI_CHECK(access.BuildIndexes(&db, schema).ok());

    Result<EmbeddedCqAnalysis> analysis =
        EmbeddedCqAnalysis::Analyze(*q3, schema, access, {p, yy});
    SI_CHECK(analysis.ok());
    SI_CHECK(analysis->IsScaleIndependent());

    BoundedEvaluator evaluator(&db);
    Binding params{{p, Value::Int(42)},
                   {yy, Value::Int(static_cast<int64_t>(config.first_year))}};
    BoundedEvalStats stats;
    stats.capture_ops = true;  // per-atom breakdown for the sidecar
    Result<AnswerSet> answers =
        evaluator.EvaluateEmbedded(*analysis, params, &stats);
    SI_CHECK(answers.ok());
    double chase_ms = MeasureMs(
        [&] { (void)evaluator.EvaluateEmbedded(*analysis, params, nullptr); });

    CqEvaluator join_eval(&db);
    AnswerSet reference = join_eval.Evaluate(*q3, params);
    SI_CHECK(reference == *answers);
    double join_ms = MeasureMs([&] { (void)join_eval.Evaluate(*q3, params); });

    table.AddRow({FormatCount(persons), FormatCount(db.TotalTuples()),
                  std::to_string(analysis->plan().atom_plans.size()) + " atoms",
                  std::to_string(stats.base_tuples_fetched),
                  std::to_string(stats.index_lookups),
                  FormatDouble(analysis->StaticFetchBound(), 0),
                  FormatDouble(chase_ms, 3), FormatDouble(join_ms, 3),
                  std::to_string(answers->size())});
    std::string prefix = "persons_" + std::to_string(persons) + ".";
    report.Add(prefix + "total_tuples", db.TotalTuples());
    report.Add(prefix + "base_tuples_fetched", stats.base_tuples_fetched);
    report.Add(prefix + "index_lookups", stats.index_lookups);
    report.Add(prefix + "static_bound", analysis->StaticFetchBound());
    report.Add(prefix + "chase_ms", chase_ms);
    report.Add(prefix + "join_eval_ms", join_ms);
    // Per-atom breakdown of the chase: which atom fetched how much, next to
    // its per-lookup bound (same key grammar as fig_bounded_q1).
    for (size_t i = 0; i < stats.ops.size(); ++i) {
      const exec::OpCounters& op = stats.ops[i];
      std::string op_prefix = prefix + "op" + std::to_string(i) + ".";
      report.Add(op_prefix + "label", op.label);
      report.Add(op_prefix + "rows_out", op.rows_out);
      report.Add(op_prefix + "tuples_fetched", op.tuples_fetched);
      report.Add(op_prefix + "index_lookups", op.index_lookups);
      if (op.static_bound >= 0) {
        report.Add(op_prefix + "static_bound", op.static_bound);
      }
    }
  }
  table.Print();

  std::printf("\nWithout the embedded statements the same query has NO plan "
              "(checked below):\n");
  SocialConfig config;
  config.dated_visits = true;
  Schema schema = SocialSchema(true);
  AccessSchema plain_only;
  plain_only.Add("friend", {"id1"}, config.max_friends_per_person);
  plain_only.AddKey("person", {"id"});
  plain_only.AddKey("restr", {"rid"});
  Result<EmbeddedCqAnalysis> blocked =
      EmbeddedCqAnalysis::Analyze(*q3, schema, plain_only, {p, yy});
  SI_CHECK(blocked.ok());
  std::printf("  plan without embedded statements: %s\n",
              blocked->IsScaleIndependent() ? "EXISTS (unexpected!)" : "none");
  return 0;
}
