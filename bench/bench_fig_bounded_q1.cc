// Experiment E4 (DESIGN.md): Example 1.1(a) / Theorem 4.2 — the headline
// scale-independence figure. Q1(p0) under the access schema touches a
// bounded number of tuples while |D| grows by orders of magnitude; a
// scan-based baseline (no access schema) grows linearly with |D|.

#include <algorithm>
#include <cinttypes>
#include <limits>

#include "bench_util.h"
#include "core/bounded_eval.h"
#include "core/controllability.h"
#include "exec/governor.h"
#include "obs/flight_recorder.h"
#include "query/parser.h"
#include "query/printer.h"
#include "workload/social_gen.h"

using namespace scalein;
using bench::Header;
using bench::MeasureMs;

namespace {

/// The no-access-schema baseline: one full pass over `friend` collecting p's
/// friends, then one full pass over `person` filtering NYC — what a system
/// without indexes must do (O(|D|) per query).
size_t ScanBaseline(const Database& db, int64_t p, uint64_t* rows_touched) {
  const Relation& friends = db.relation("friend");
  const Relation& person = db.relation("person");
  std::set<Value, std::less<Value>> friend_ids;
  for (size_t i = 0; i < friends.size(); ++i) {
    ++*rows_touched;
    TupleView row = friends.TupleAt(i);
    if (row[0] == Value::Int(p)) friend_ids.insert(row[1]);
  }
  size_t answers = 0;
  Value nyc = Value::Str(kNyc);
  for (size_t i = 0; i < person.size(); ++i) {
    ++*rows_touched;
    TupleView row = person.TupleAt(i);
    if (row[2] == nyc && friend_ids.count(row[0])) ++answers;
  }
  return answers;
}

}  // namespace

int main() {
  Header("E4: Q1(p0) bounded evaluation vs scan baseline",
         "Example 1.1(a) / Example 4.1 / Theorem 4.2 (M >= 10000 story)",
         "bounded executor: fetches and latency flat in |D|; scan baseline "
         "linear in |D| — the gap widens to orders of magnitude");

  bench::JsonReport report("fig_bounded_q1");
  TablePrinter table({"persons", "|D|", "bounded fetches", "index lookups",
                      "bound", "bounded ms", "governed ms", "scan rows",
                      "scan ms", "speedup"});
  for (uint64_t persons : {3000u, 30000u, 300000u}) {
    SocialConfig config;
    config.num_persons = persons;
    config.max_friends_per_person = 50;
    config.num_restaurants = 200;
    config.avg_visits_per_person = 0;  // Q1 does not use visits
    Schema schema = SocialSchema(false);
    Database db = GenerateSocial(config);
    AccessSchema access = SocialAccessSchema(config);
    SI_CHECK(access.BuildIndexes(&db, schema).ok());

    Result<FoQuery> q1 = ParseFoQuery(
        "Q1(p, name) := exists id. friend(p, id) and person(id, name, \"NYC\")",
        &schema);
    SI_CHECK(q1.ok());
    Result<ControllabilityAnalysis> analysis =
        ControllabilityAnalysis::Analyze(q1->body, schema, access);
    SI_CHECK(analysis.ok());
    Variable p = Variable::Named("p");
    SI_CHECK(analysis->IsControlledBy({p}));

    BoundedEvaluator evaluator(&db);
    Binding params{{p, Value::Int(42)}};
    BoundedEvalStats stats;
    stats.capture_ops = true;  // per-operator breakdown for the sidecar
    Result<AnswerSet> bounded_answers =
        evaluator.Evaluate(*q1, *analysis, params, &stats);
    SI_CHECK(bounded_answers.ok());
    // Same evaluation with the resource governor fully armed but sized to
    // never trip AND the flight recorder installed as the global sink:
    // isolates the per-fetch Charge/Checkpoint overhead plus the per-query
    // recorder append, which the regression script holds to <= 3% of the
    // ungoverned/unobserved time. The two variants are measured in
    // alternation and each takes its best window — a 3% gate on
    // microsecond-scale work needs frequency drift cancelled, not averaged
    // in.
    BoundedEvaluator governed_evaluator(&db);
    exec::GovernorLimits governed_limits;
    governed_limits.fetch_budget = 1'000'000'000;
    governed_limits.deadline_ms = 3'600'000;
    governed_limits.output_row_cap = 1'000'000'000;
    governed_evaluator.set_limits(governed_limits);
    obs::FlightRecorder recorder;
    double bounded_ms = std::numeric_limits<double>::infinity();
    double governed_ms = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < 5; ++rep) {
      bounded_ms = std::min(
          bounded_ms, MeasureMs([&] {
            (void)evaluator.Evaluate(*q1, *analysis, params, nullptr);
          }));
      obs::FlightRecorder::InstallGlobal(&recorder);
      governed_ms = std::min(
          governed_ms, MeasureMs([&] {
            (void)governed_evaluator.Evaluate(*q1, *analysis, params, nullptr);
          }));
      obs::FlightRecorder::InstallGlobal(nullptr);
    }

    uint64_t scan_rows = 0;
    size_t scan_answers = ScanBaseline(db, 42, &scan_rows);
    SI_CHECK(scan_answers == bounded_answers->size());
    double scan_ms = MeasureMs([&] {
      uint64_t ignored = 0;
      (void)ScanBaseline(db, 42, &ignored);
    });

    table.AddRow({FormatCount(persons), FormatCount(db.TotalTuples()),
                  std::to_string(stats.base_tuples_fetched),
                  std::to_string(stats.index_lookups),
                  FormatDouble(*analysis->StaticFetchBound({p}), 0),
                  FormatDouble(bounded_ms, 4), FormatDouble(governed_ms, 4),
                  FormatCount(scan_rows), FormatDouble(scan_ms, 3),
                  FormatDouble(scan_ms / bounded_ms, 1) + "x"});
    std::string prefix = "persons_" + std::to_string(persons) + ".";
    report.Add(prefix + "total_tuples", db.TotalTuples());
    report.Add(prefix + "base_tuples_fetched", stats.base_tuples_fetched);
    report.Add(prefix + "index_lookups", stats.index_lookups);
    report.Add(prefix + "static_bound", *analysis->StaticFetchBound({p}));
    report.Add(prefix + "bounded_ms", bounded_ms);
    report.Add(prefix + "bounded_governed_ms", governed_ms);
    report.Add(prefix + "scan_rows", scan_rows);
    report.Add(prefix + "scan_ms", scan_ms);
    // Per-operator breakdown of the executed derivation (EXPLAIN ANALYZE
    // counters): one key group per derivation node, plus its static bound.
    for (size_t i = 0; i < stats.ops.size(); ++i) {
      const exec::OpCounters& op = stats.ops[i];
      std::string op_prefix = prefix + "op" + std::to_string(i) + ".";
      report.Add(op_prefix + "label", op.label);
      report.Add(op_prefix + "rows_out", op.rows_out);
      report.Add(op_prefix + "tuples_fetched", op.tuples_fetched);
      report.Add(op_prefix + "index_lookups", op.index_lookups);
      if (op.static_bound >= 0) {
        report.Add(op_prefix + "static_bound", op.static_bound);
      }
    }
  }
  table.Print();
  std::printf(
      "\nNote: with the paper's production numbers (5000-friend cap, 1e9 "
      "users) the same static bound M = 10000 applies; only the scan column "
      "would keep growing.\n");
  return 0;
}
