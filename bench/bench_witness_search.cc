// Experiment E10 (DESIGN.md): witness search on planted set-cover instances —
// the literal shape of the Theorem 3.3 NP-hardness reduction. Compares the
// exact branch-and-bound against the polynomial greedy heuristic: the exact
// search's node count grows combinatorially with instance size, greedy stays
// polynomial at a small quality cost.

#include "bench_util.h"
#include "core/qdsi.h"
#include "query/printer.h"
#include "workload/setcover_gen.h"

using namespace scalein;
using bench::Header;
using bench::MeasureMs;

int main() {
  Header("E10: exact vs greedy witness search (set-cover shape)",
         "Theorem 3.3 lower bound (reduction from SCP)",
         "exact: node count grows steeply with sets/noise; greedy: fast, "
         "witness at most a small factor larger");

  TablePrinter table({"elements", "sets", "noise", "exact size", "B&B nodes",
                      "exact ms", "greedy size", "greedy ms", "quality"});
  for (uint64_t elements : {8u, 12u, 16u, 20u, 24u}) {
    SetCoverConfig config;
    config.num_elements = elements;
    config.num_sets = 4 + elements / 2;
    config.planted_cover_size = 3;
    config.noise_memberships = elements * 3;
    config.seed = 100 + elements;
    SetCoverInstance inst = GenerateSetCover(config);

    MinWitnessResult exact = MinimumWitnessCq(inst.query, inst.db, 100000);
    SI_CHECK(exact.witness.has_value());
    double exact_ms =
        MeasureMs([&] { MinimumWitnessCq(inst.query, inst.db, 100000); }, 10.0);

    TupleSet greedy = GreedyWitnessCq(inst.query, inst.db);
    SI_CHECK(
        IsWitnessCq(inst.query, inst.db, SubDatabase(inst.db, greedy)));
    double greedy_ms =
        MeasureMs([&] { (void)GreedyWitnessCq(inst.query, inst.db); }, 10.0);

    table.AddRow(
        {std::to_string(elements), std::to_string(config.num_sets),
         std::to_string(config.noise_memberships),
         std::to_string(exact.witness->size()), std::to_string(exact.nodes_explored),
         FormatDouble(exact_ms, 3), std::to_string(greedy.size()),
         FormatDouble(greedy_ms, 3),
         FormatDouble(static_cast<double>(greedy.size()) /
                          static_cast<double>(exact.witness->size()),
                      3)});
  }
  table.Print();
  std::printf(
      "\n'quality' = greedy/exact witness size (1.0 = optimal; ln(n) worst "
      "case, matching the set-cover approximation bound).\n");
  return 0;
}
