file(REMOVE_RECURSE
  "CMakeFiles/cq_to_ra_test.dir/cq_to_ra_test.cc.o"
  "CMakeFiles/cq_to_ra_test.dir/cq_to_ra_test.cc.o.d"
  "cq_to_ra_test"
  "cq_to_ra_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cq_to_ra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
