# Empty compiler generated dependencies file for cq_to_ra_test.
# This may be replaced when dependencies are built.
