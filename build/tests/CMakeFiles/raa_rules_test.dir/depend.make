# Empty dependencies file for raa_rules_test.
# This may be replaced when dependencies are built.
