file(REMOVE_RECURSE
  "CMakeFiles/raa_rules_test.dir/raa_rules_test.cc.o"
  "CMakeFiles/raa_rules_test.dir/raa_rules_test.cc.o.d"
  "raa_rules_test"
  "raa_rules_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raa_rules_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
