file(REMOVE_RECURSE
  "CMakeFiles/delta_rules_test.dir/delta_rules_test.cc.o"
  "CMakeFiles/delta_rules_test.dir/delta_rules_test.cc.o.d"
  "delta_rules_test"
  "delta_rules_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delta_rules_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
