file(REMOVE_RECURSE
  "CMakeFiles/access_schema_test.dir/access_schema_test.cc.o"
  "CMakeFiles/access_schema_test.dir/access_schema_test.cc.o.d"
  "access_schema_test"
  "access_schema_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/access_schema_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
