file(REMOVE_RECURSE
  "CMakeFiles/controllability_test.dir/controllability_test.cc.o"
  "CMakeFiles/controllability_test.dir/controllability_test.cc.o.d"
  "controllability_test"
  "controllability_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/controllability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
