# Empty compiler generated dependencies file for controllability_test.
# This may be replaced when dependencies are built.
