# Empty dependencies file for ucq_maintainer_test.
# This may be replaced when dependencies are built.
