file(REMOVE_RECURSE
  "CMakeFiles/ucq_maintainer_test.dir/ucq_maintainer_test.cc.o"
  "CMakeFiles/ucq_maintainer_test.dir/ucq_maintainer_test.cc.o.d"
  "ucq_maintainer_test"
  "ucq_maintainer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ucq_maintainer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
