# Empty dependencies file for cq_evaluator_test.
# This may be replaced when dependencies are built.
