file(REMOVE_RECURSE
  "CMakeFiles/cq_evaluator_test.dir/cq_evaluator_test.cc.o"
  "CMakeFiles/cq_evaluator_test.dir/cq_evaluator_test.cc.o.d"
  "cq_evaluator_test"
  "cq_evaluator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cq_evaluator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
