file(REMOVE_RECURSE
  "CMakeFiles/fo_evaluator_test.dir/fo_evaluator_test.cc.o"
  "CMakeFiles/fo_evaluator_test.dir/fo_evaluator_test.cc.o.d"
  "fo_evaluator_test"
  "fo_evaluator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fo_evaluator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
