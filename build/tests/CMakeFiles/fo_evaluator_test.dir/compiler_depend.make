# Empty compiler generated dependencies file for fo_evaluator_test.
# This may be replaced when dependencies are built.
