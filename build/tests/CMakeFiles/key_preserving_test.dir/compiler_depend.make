# Empty compiler generated dependencies file for key_preserving_test.
# This may be replaced when dependencies are built.
