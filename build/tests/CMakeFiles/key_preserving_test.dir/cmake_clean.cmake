file(REMOVE_RECURSE
  "CMakeFiles/key_preserving_test.dir/key_preserving_test.cc.o"
  "CMakeFiles/key_preserving_test.dir/key_preserving_test.cc.o.d"
  "key_preserving_test"
  "key_preserving_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/key_preserving_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
