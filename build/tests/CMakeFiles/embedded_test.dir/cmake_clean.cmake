file(REMOVE_RECURSE
  "CMakeFiles/embedded_test.dir/embedded_test.cc.o"
  "CMakeFiles/embedded_test.dir/embedded_test.cc.o.d"
  "embedded_test"
  "embedded_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embedded_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
