# Empty dependencies file for fo_to_ra_test.
# This may be replaced when dependencies are built.
