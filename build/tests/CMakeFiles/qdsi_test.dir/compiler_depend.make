# Empty compiler generated dependencies file for qdsi_test.
# This may be replaced when dependencies are built.
