file(REMOVE_RECURSE
  "CMakeFiles/qdsi_test.dir/qdsi_test.cc.o"
  "CMakeFiles/qdsi_test.dir/qdsi_test.cc.o.d"
  "qdsi_test"
  "qdsi_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qdsi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
