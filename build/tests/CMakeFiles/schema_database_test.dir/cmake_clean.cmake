file(REMOVE_RECURSE
  "CMakeFiles/schema_database_test.dir/schema_database_test.cc.o"
  "CMakeFiles/schema_database_test.dir/schema_database_test.cc.o.d"
  "schema_database_test"
  "schema_database_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schema_database_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
