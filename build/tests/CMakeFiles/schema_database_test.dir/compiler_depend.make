# Empty compiler generated dependencies file for schema_database_test.
# This may be replaced when dependencies are built.
