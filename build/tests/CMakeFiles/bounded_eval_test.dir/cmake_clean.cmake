file(REMOVE_RECURSE
  "CMakeFiles/bounded_eval_test.dir/bounded_eval_test.cc.o"
  "CMakeFiles/bounded_eval_test.dir/bounded_eval_test.cc.o.d"
  "bounded_eval_test"
  "bounded_eval_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bounded_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
