# Empty dependencies file for bounded_eval_test.
# This may be replaced when dependencies are built.
