file(REMOVE_RECURSE
  "CMakeFiles/ra_fuzz_test.dir/ra_fuzz_test.cc.o"
  "CMakeFiles/ra_fuzz_test.dir/ra_fuzz_test.cc.o.d"
  "ra_fuzz_test"
  "ra_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ra_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
