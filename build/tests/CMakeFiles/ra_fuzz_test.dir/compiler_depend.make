# Empty compiler generated dependencies file for ra_fuzz_test.
# This may be replaced when dependencies are built.
