file(REMOVE_RECURSE
  "CMakeFiles/delta_qsi_test.dir/delta_qsi_test.cc.o"
  "CMakeFiles/delta_qsi_test.dir/delta_qsi_test.cc.o.d"
  "delta_qsi_test"
  "delta_qsi_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delta_qsi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
