# Empty dependencies file for delta_qsi_test.
# This may be replaced when dependencies are built.
