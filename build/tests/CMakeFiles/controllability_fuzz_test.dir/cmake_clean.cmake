file(REMOVE_RECURSE
  "CMakeFiles/controllability_fuzz_test.dir/controllability_fuzz_test.cc.o"
  "CMakeFiles/controllability_fuzz_test.dir/controllability_fuzz_test.cc.o.d"
  "controllability_fuzz_test"
  "controllability_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/controllability_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
