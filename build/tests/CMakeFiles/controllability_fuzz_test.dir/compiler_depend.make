# Empty compiler generated dependencies file for controllability_fuzz_test.
# This may be replaced when dependencies are built.
