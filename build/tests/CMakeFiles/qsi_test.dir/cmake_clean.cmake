file(REMOVE_RECURSE
  "CMakeFiles/qsi_test.dir/qsi_test.cc.o"
  "CMakeFiles/qsi_test.dir/qsi_test.cc.o.d"
  "qsi_test"
  "qsi_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
