# Empty compiler generated dependencies file for qsi_test.
# This may be replaced when dependencies are built.
