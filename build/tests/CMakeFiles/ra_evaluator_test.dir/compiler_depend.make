# Empty compiler generated dependencies file for ra_evaluator_test.
# This may be replaced when dependencies are built.
