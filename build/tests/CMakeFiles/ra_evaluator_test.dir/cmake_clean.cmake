file(REMOVE_RECURSE
  "CMakeFiles/ra_evaluator_test.dir/ra_evaluator_test.cc.o"
  "CMakeFiles/ra_evaluator_test.dir/ra_evaluator_test.cc.o.d"
  "ra_evaluator_test"
  "ra_evaluator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ra_evaluator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
