file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_qdsi.dir/bench_table1_qdsi.cc.o"
  "CMakeFiles/bench_table1_qdsi.dir/bench_table1_qdsi.cc.o.d"
  "bench_table1_qdsi"
  "bench_table1_qdsi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_qdsi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
