# Empty dependencies file for bench_table1_qdsi.
# This may be replaced when dependencies are built.
