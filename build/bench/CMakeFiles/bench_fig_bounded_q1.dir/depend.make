# Empty dependencies file for bench_fig_bounded_q1.
# This may be replaced when dependencies are built.
