# Empty dependencies file for bench_fig_views_q2.
# This may be replaced when dependencies are built.
