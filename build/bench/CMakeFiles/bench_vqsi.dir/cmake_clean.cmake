file(REMOVE_RECURSE
  "CMakeFiles/bench_vqsi.dir/bench_vqsi.cc.o"
  "CMakeFiles/bench_vqsi.dir/bench_vqsi.cc.o.d"
  "bench_vqsi"
  "bench_vqsi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vqsi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
