# Empty compiler generated dependencies file for bench_vqsi.
# This may be replaced when dependencies are built.
