# Empty compiler generated dependencies file for bench_fig_incremental_q2.
# This may be replaced when dependencies are built.
