# Empty compiler generated dependencies file for bench_fig_embedded_q3.
# This may be replaced when dependencies are built.
