# Empty dependencies file for scalein.
# This may be replaced when dependencies are built.
