
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/access_schema.cc" "src/CMakeFiles/scalein.dir/core/access_schema.cc.o" "gcc" "src/CMakeFiles/scalein.dir/core/access_schema.cc.o.d"
  "/root/repo/src/core/advisor.cc" "src/CMakeFiles/scalein.dir/core/advisor.cc.o" "gcc" "src/CMakeFiles/scalein.dir/core/advisor.cc.o.d"
  "/root/repo/src/core/approx.cc" "src/CMakeFiles/scalein.dir/core/approx.cc.o" "gcc" "src/CMakeFiles/scalein.dir/core/approx.cc.o.d"
  "/root/repo/src/core/bounded_eval.cc" "src/CMakeFiles/scalein.dir/core/bounded_eval.cc.o" "gcc" "src/CMakeFiles/scalein.dir/core/bounded_eval.cc.o.d"
  "/root/repo/src/core/controllability.cc" "src/CMakeFiles/scalein.dir/core/controllability.cc.o" "gcc" "src/CMakeFiles/scalein.dir/core/controllability.cc.o.d"
  "/root/repo/src/core/embedded_controllability.cc" "src/CMakeFiles/scalein.dir/core/embedded_controllability.cc.o" "gcc" "src/CMakeFiles/scalein.dir/core/embedded_controllability.cc.o.d"
  "/root/repo/src/core/qdsi.cc" "src/CMakeFiles/scalein.dir/core/qdsi.cc.o" "gcc" "src/CMakeFiles/scalein.dir/core/qdsi.cc.o.d"
  "/root/repo/src/core/qsi.cc" "src/CMakeFiles/scalein.dir/core/qsi.cc.o" "gcc" "src/CMakeFiles/scalein.dir/core/qsi.cc.o.d"
  "/root/repo/src/core/witness.cc" "src/CMakeFiles/scalein.dir/core/witness.cc.o" "gcc" "src/CMakeFiles/scalein.dir/core/witness.cc.o.d"
  "/root/repo/src/eval/containment.cc" "src/CMakeFiles/scalein.dir/eval/containment.cc.o" "gcc" "src/CMakeFiles/scalein.dir/eval/containment.cc.o.d"
  "/root/repo/src/eval/cq_evaluator.cc" "src/CMakeFiles/scalein.dir/eval/cq_evaluator.cc.o" "gcc" "src/CMakeFiles/scalein.dir/eval/cq_evaluator.cc.o.d"
  "/root/repo/src/eval/fo_evaluator.cc" "src/CMakeFiles/scalein.dir/eval/fo_evaluator.cc.o" "gcc" "src/CMakeFiles/scalein.dir/eval/fo_evaluator.cc.o.d"
  "/root/repo/src/eval/ra_evaluator.cc" "src/CMakeFiles/scalein.dir/eval/ra_evaluator.cc.o" "gcc" "src/CMakeFiles/scalein.dir/eval/ra_evaluator.cc.o.d"
  "/root/repo/src/incremental/delta_qsi.cc" "src/CMakeFiles/scalein.dir/incremental/delta_qsi.cc.o" "gcc" "src/CMakeFiles/scalein.dir/incremental/delta_qsi.cc.o.d"
  "/root/repo/src/incremental/delta_rules.cc" "src/CMakeFiles/scalein.dir/incremental/delta_rules.cc.o" "gcc" "src/CMakeFiles/scalein.dir/incremental/delta_rules.cc.o.d"
  "/root/repo/src/incremental/key_preserving.cc" "src/CMakeFiles/scalein.dir/incremental/key_preserving.cc.o" "gcc" "src/CMakeFiles/scalein.dir/incremental/key_preserving.cc.o.d"
  "/root/repo/src/incremental/maintainer.cc" "src/CMakeFiles/scalein.dir/incremental/maintainer.cc.o" "gcc" "src/CMakeFiles/scalein.dir/incremental/maintainer.cc.o.d"
  "/root/repo/src/incremental/raa_rules.cc" "src/CMakeFiles/scalein.dir/incremental/raa_rules.cc.o" "gcc" "src/CMakeFiles/scalein.dir/incremental/raa_rules.cc.o.d"
  "/root/repo/src/incremental/ucq_maintainer.cc" "src/CMakeFiles/scalein.dir/incremental/ucq_maintainer.cc.o" "gcc" "src/CMakeFiles/scalein.dir/incremental/ucq_maintainer.cc.o.d"
  "/root/repo/src/io/catalog.cc" "src/CMakeFiles/scalein.dir/io/catalog.cc.o" "gcc" "src/CMakeFiles/scalein.dir/io/catalog.cc.o.d"
  "/root/repo/src/io/shell.cc" "src/CMakeFiles/scalein.dir/io/shell.cc.o" "gcc" "src/CMakeFiles/scalein.dir/io/shell.cc.o.d"
  "/root/repo/src/query/cq.cc" "src/CMakeFiles/scalein.dir/query/cq.cc.o" "gcc" "src/CMakeFiles/scalein.dir/query/cq.cc.o.d"
  "/root/repo/src/query/cq_to_ra.cc" "src/CMakeFiles/scalein.dir/query/cq_to_ra.cc.o" "gcc" "src/CMakeFiles/scalein.dir/query/cq_to_ra.cc.o.d"
  "/root/repo/src/query/fo_to_ra.cc" "src/CMakeFiles/scalein.dir/query/fo_to_ra.cc.o" "gcc" "src/CMakeFiles/scalein.dir/query/fo_to_ra.cc.o.d"
  "/root/repo/src/query/formula.cc" "src/CMakeFiles/scalein.dir/query/formula.cc.o" "gcc" "src/CMakeFiles/scalein.dir/query/formula.cc.o.d"
  "/root/repo/src/query/parser.cc" "src/CMakeFiles/scalein.dir/query/parser.cc.o" "gcc" "src/CMakeFiles/scalein.dir/query/parser.cc.o.d"
  "/root/repo/src/query/printer.cc" "src/CMakeFiles/scalein.dir/query/printer.cc.o" "gcc" "src/CMakeFiles/scalein.dir/query/printer.cc.o.d"
  "/root/repo/src/query/ra_expr.cc" "src/CMakeFiles/scalein.dir/query/ra_expr.cc.o" "gcc" "src/CMakeFiles/scalein.dir/query/ra_expr.cc.o.d"
  "/root/repo/src/query/term.cc" "src/CMakeFiles/scalein.dir/query/term.cc.o" "gcc" "src/CMakeFiles/scalein.dir/query/term.cc.o.d"
  "/root/repo/src/relational/database.cc" "src/CMakeFiles/scalein.dir/relational/database.cc.o" "gcc" "src/CMakeFiles/scalein.dir/relational/database.cc.o.d"
  "/root/repo/src/relational/index.cc" "src/CMakeFiles/scalein.dir/relational/index.cc.o" "gcc" "src/CMakeFiles/scalein.dir/relational/index.cc.o.d"
  "/root/repo/src/relational/relation.cc" "src/CMakeFiles/scalein.dir/relational/relation.cc.o" "gcc" "src/CMakeFiles/scalein.dir/relational/relation.cc.o.d"
  "/root/repo/src/relational/schema.cc" "src/CMakeFiles/scalein.dir/relational/schema.cc.o" "gcc" "src/CMakeFiles/scalein.dir/relational/schema.cc.o.d"
  "/root/repo/src/relational/tuple.cc" "src/CMakeFiles/scalein.dir/relational/tuple.cc.o" "gcc" "src/CMakeFiles/scalein.dir/relational/tuple.cc.o.d"
  "/root/repo/src/relational/value.cc" "src/CMakeFiles/scalein.dir/relational/value.cc.o" "gcc" "src/CMakeFiles/scalein.dir/relational/value.cc.o.d"
  "/root/repo/src/util/rng.cc" "src/CMakeFiles/scalein.dir/util/rng.cc.o" "gcc" "src/CMakeFiles/scalein.dir/util/rng.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/scalein.dir/util/status.cc.o" "gcc" "src/CMakeFiles/scalein.dir/util/status.cc.o.d"
  "/root/repo/src/util/strings.cc" "src/CMakeFiles/scalein.dir/util/strings.cc.o" "gcc" "src/CMakeFiles/scalein.dir/util/strings.cc.o.d"
  "/root/repo/src/views/rewriting.cc" "src/CMakeFiles/scalein.dir/views/rewriting.cc.o" "gcc" "src/CMakeFiles/scalein.dir/views/rewriting.cc.o.d"
  "/root/repo/src/views/view_def.cc" "src/CMakeFiles/scalein.dir/views/view_def.cc.o" "gcc" "src/CMakeFiles/scalein.dir/views/view_def.cc.o.d"
  "/root/repo/src/views/view_exec.cc" "src/CMakeFiles/scalein.dir/views/view_exec.cc.o" "gcc" "src/CMakeFiles/scalein.dir/views/view_exec.cc.o.d"
  "/root/repo/src/views/vqsi.cc" "src/CMakeFiles/scalein.dir/views/vqsi.cc.o" "gcc" "src/CMakeFiles/scalein.dir/views/vqsi.cc.o.d"
  "/root/repo/src/workload/formula_gen.cc" "src/CMakeFiles/scalein.dir/workload/formula_gen.cc.o" "gcc" "src/CMakeFiles/scalein.dir/workload/formula_gen.cc.o.d"
  "/root/repo/src/workload/setcover_gen.cc" "src/CMakeFiles/scalein.dir/workload/setcover_gen.cc.o" "gcc" "src/CMakeFiles/scalein.dir/workload/setcover_gen.cc.o.d"
  "/root/repo/src/workload/social_gen.cc" "src/CMakeFiles/scalein.dir/workload/social_gen.cc.o" "gcc" "src/CMakeFiles/scalein.dir/workload/social_gen.cc.o.d"
  "/root/repo/src/workload/update_gen.cc" "src/CMakeFiles/scalein.dir/workload/update_gen.cc.o" "gcc" "src/CMakeFiles/scalein.dir/workload/update_gen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
