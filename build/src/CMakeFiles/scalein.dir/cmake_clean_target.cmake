file(REMOVE_RECURSE
  "libscalein.a"
)
