file(REMOVE_RECURSE
  "CMakeFiles/incremental_feed.dir/incremental_feed.cpp.o"
  "CMakeFiles/incremental_feed.dir/incremental_feed.cpp.o.d"
  "incremental_feed"
  "incremental_feed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incremental_feed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
