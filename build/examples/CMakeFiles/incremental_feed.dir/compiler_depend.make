# Empty compiler generated dependencies file for incremental_feed.
# This may be replaced when dependencies are built.
