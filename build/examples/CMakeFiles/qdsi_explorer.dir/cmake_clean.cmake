file(REMOVE_RECURSE
  "CMakeFiles/qdsi_explorer.dir/qdsi_explorer.cpp.o"
  "CMakeFiles/qdsi_explorer.dir/qdsi_explorer.cpp.o.d"
  "qdsi_explorer"
  "qdsi_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qdsi_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
