# Empty dependencies file for qdsi_explorer.
# This may be replaced when dependencies are built.
