file(REMOVE_RECURSE
  "CMakeFiles/scalein_shell.dir/scalein_shell.cpp.o"
  "CMakeFiles/scalein_shell.dir/scalein_shell.cpp.o.d"
  "scalein_shell"
  "scalein_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalein_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
