# Empty dependencies file for scalein_shell.
# This may be replaced when dependencies are built.
