#!/usr/bin/env python3
"""Post-mortem report over a flight-recorder dump.

    trace_report.py <dump.json> [--trace spans.json] [--bench BENCH_x.json...]
                    [--top N]

The dump is the JSON document written by the shell's ``dump`` command, the
SCALEIN_DUMP_PATH post-mortem hook, or the shell binary's signal handler:

    {"reason":..., "recorder":{...,"events":[...]},
     "journal":{...,"certificates":[...]}, "metrics":{...}}

Sections reported:

  * header — dump reason, event/certificate counts, history dropped;
  * top queries by fetches — certificates ranked by ``actual_fetches``,
    each against its static Theorem 4.2 bound;
  * certificate violations — certificates whose verdict is ``exceeded``
    (a theorem violation) or ``tripped`` (governor stopped the query);
  * trip timeline — governor-trip / failpoint-fire / slow-query events in
    sequence order, with nanosecond timestamps relative to the first event;
  * event kind histogram — what the recorder saw, by kind.

With ``--trace`` (a Chrome ``traceEvents`` JSON from the tracer) the report
joins span names against recorded event labels and prints the slowest spans
next to the dump's view of the same work. With ``--bench`` sidecars it cross-
checks certificate fetch counts against the benches' recorded bounds.

Exit status: 0 report printed, 2 unreadable input. The report itself never
fails the build — it is a forensic tool, not a gate (bench_regress.py is the
gate).
"""

import argparse
import json
import sys


def load_json(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def fmt_bound(bound):
    if bound is None or bound < 0:
        return "(no static bound)"
    return f"bound {bound:g}"


def report_header(dump):
    recorder = dump.get("recorder", {})
    journal = dump.get("journal", {})
    events = recorder.get("events", [])
    certs = journal.get("certificates", [])
    print(f"dump reason: {dump.get('reason', '?')}")
    print(f"events: {len(events)} in ring "
          f"({recorder.get('appended', 0)} appended, "
          f"{recorder.get('dropped', 0)} dropped)")
    print(f"certificates: {len(certs)} "
          f"({journal.get('dropped', 0)} dropped)")
    return events, certs


def report_top_queries(certs, top_n):
    print(f"\n== top queries by fetches (top {top_n}) ==")
    if not certs:
        print("  (no certificates)")
        return
    ranked = sorted(certs, key=lambda c: c.get("actual_fetches", 0),
                    reverse=True)
    for cert in ranked[:top_n]:
        fp = cert.get("query_fingerprint", "?")
        fetches = cert.get("actual_fetches", 0)
        verdict = cert.get("verdict", "?")
        print(f"  {fp}  fetches={fetches}  "
              f"{fmt_bound(cert.get('static_bound'))}  [{verdict}]")
        query = cert.get("query", "")
        if query:
            print(f"      {query}")


def report_violations(certs):
    print("\n== certificate violations ==")
    bad = [c for c in certs if c.get("verdict") in ("exceeded", "tripped")]
    if not bad:
        print("  none — every certified query stayed within its bound")
        return
    for cert in bad:
        fp = cert.get("query_fingerprint", "?")
        verdict = cert.get("verdict", "?")
        line = (f"  {fp}  [{verdict}]  "
                f"fetches={cert.get('actual_fetches', 0)}  "
                f"{fmt_bound(cert.get('static_bound'))}")
        reason = cert.get("trip_reason", "")
        if reason:
            line += f"  — {reason}"
        print(line)
        query = cert.get("query", "")
        if query:
            print(f"      {query}")


TIMELINE_KINDS = ("governor-trip", "failpoint-fire", "slow-query")


def report_trip_timeline(events):
    print("\n== trip timeline ==")
    timeline = [e for e in events if e.get("kind") in TIMELINE_KINDS]
    if not timeline:
        print("  none — no trips, failpoint fires, or slow queries recorded")
        return
    t0 = events[0].get("t_ns", 0) if events else 0
    for e in timeline:
        dt_ms = (e.get("t_ns", 0) - t0) / 1e6
        args = e.get("args", {})
        detail = " ".join(f"{k}={v}" for k, v in args.items())
        print(f"  +{dt_ms:10.3f} ms  seq={e.get('seq', '?'):>5}  "
              f"{e.get('kind')}  {e.get('label', '')}  {detail}")


def report_kind_histogram(events):
    print("\n== event kinds ==")
    counts = {}
    for e in events:
        counts[e.get("kind", "?")] = counts.get(e.get("kind", "?"), 0) + 1
    for kind in sorted(counts):
        print(f"  {kind:20s} {counts[kind]}")


def report_trace_join(events, trace_path):
    trace = load_json(trace_path)
    spans = trace.get("traceEvents", [])
    print(f"\n== slowest spans ({trace_path}) ==")
    complete = [s for s in spans if s.get("ph") == "X"]
    if not complete:
        print("  (no complete spans)")
        return
    labels = {e.get("label", "") for e in events}
    for span in sorted(complete, key=lambda s: s.get("dur", 0),
                       reverse=True)[:10]:
        name = span.get("name", "?")
        seen = "also in dump" if name in labels else ""
        print(f"  {span.get('dur', 0):>10} us  {name}  {seen}")


def report_bench_join(certs, bench_paths):
    for path in bench_paths:
        bench = load_json(path)
        print(f"\n== bench cross-check ({path}) ==")
        bounds = {k: v for k, v in bench.items() if k.endswith("static_bound")}
        if not bounds:
            print("  (sidecar records no static bounds)")
            continue
        max_bound = max(float(v) for v in bounds.values())
        over = [c for c in certs
                if c.get("static_bound", -1) >= 0
                and c.get("actual_fetches", 0) > max_bound]
        print(f"  sidecar max static bound: {max_bound:g}; "
              f"{len(over)} certificate(s) above it")


def main():
    parser = argparse.ArgumentParser(
        description="report over a flight-recorder dump")
    parser.add_argument("dump", help="dump JSON written by the shell/recorder")
    parser.add_argument("--trace", help="Chrome traceEvents JSON to join")
    parser.add_argument("--bench", nargs="*", default=[],
                        help="BENCH_*.json sidecars to cross-check")
    parser.add_argument("--top", type=int, default=5,
                        help="queries to list in the fetch ranking")
    args = parser.parse_args()

    dump = load_json(args.dump)
    events, certs = report_header(dump)
    report_top_queries(certs, args.top)
    report_violations(certs)
    report_trip_timeline(events)
    report_kind_histogram(events)
    if args.trace:
        report_trace_join(events, args.trace)
    if args.bench:
        report_bench_join(certs, args.bench)
    return 0


if __name__ == "__main__":
    sys.exit(main())
