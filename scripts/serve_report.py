#!/usr/bin/env python3
"""Offline serving report over the server's structured access log.

    serve_report.py <access.jsonl> [--journal <journal.jsonl>] [--top N]

The access log is the file written by the serve layer when
SCALEIN_ACCESS_LOG_PATH is set: one JSON object per served request — the
AccessLogRecord of src/serve/access_log.h — with the same size-based
rotation as the certificate journal (``path`` -> ``path.1`` -> ``path.2``).
The report reads every surviving generation oldest-first, exactly like
LoadAccessLogRecords, so its tallies match a server that wrote the same
files.

Sections reported:

  * header — files read, record/malformed counts;
  * classes — per-bound-class admission tallies, byte-identical to the
    server's ``classes`` command (Server::RenderClasses), so online and
    offline views can be diffed directly;
  * phase latency — queue_wait / exec / e2e p50+p99 per class, the offline
    twin of the serve.queue_wait_ms.<class> etc. histograms ``stats prom``
    exposes;
  * slowest requests — top N by e2e, with their phase split and query id;
  * bound slack — how far admitted work ran under its static Theorem 4.2
    bound (the admission SLA's safety margin in practice);
  * tags — per client-tag request counts, when any request was tagged;
  * journal join (``--journal``) — each access-log record is joined to its
    sealed certificate by query_id; seals are re-verified here in Python
    (FNV-1a over the reconstructed payload, numbers in C's ``%.6g``) and
    fetch counts cross-checked, so the observational channel and the sealed
    channel can be audited against each other.

Exit status: 0 report printed, 2 unreadable input. Like workload_report.py
this is a forensic tool, not a gate — tampered or malformed lines are
counted and excluded, never fatal.
"""

import argparse
import json
import os
import sys

FNV_OFFSET = 0xCBF29CE484222325
FNV_PRIME = 0x100000001B3
MASK64 = (1 << 64) - 1

BOUND_CLASSES = ("small", "medium", "large", "huge")
SHED_REASONS = ("queue-full", "queue-class-full", "queue-timeout", "draining")
VERDICTS = ("within-bound", "exceeded", "no-static-bound", "tripped")


def json_number(value):
    """C's JsonNumber: snprintf("%.6g") — Python's %-formatting matches."""
    return "%.6g" % value


def generations_oldest_first(path):
    """Surviving generations oldest-first: path.2, path.1, path."""
    files = []
    for gen in (2, 1, 0):
        candidate = path if gen == 0 else "%s.%d" % (path, gen)
        if os.path.exists(candidate):
            files.append(candidate)
    return files


def load_records(path):
    files = generations_oldest_first(path)
    if not files:
        print(f"error: no access log at {path} (nor rotated generations)",
              file=sys.stderr)
        sys.exit(2)
    records = []
    report = {"files": len(files), "records": 0, "malformed": 0}
    for file in files:
        try:
            with open(file, "r", encoding="utf-8") as f:
                lines = f.read().splitlines()
        except OSError as e:
            print(f"error: cannot read {file}: {e}", file=sys.stderr)
            sys.exit(2)
        for lineno, line in enumerate(lines, 1):
            if not line.strip():
                continue
            try:
                rec = json.loads(line)
            except ValueError:
                report["malformed"] += 1
                continue
            if (not isinstance(rec, dict)
                    or rec.get("class") not in BOUND_CLASSES
                    or rec.get("action") not in ("admit", "queue", "degrade",
                                                 "reject")):
                report["malformed"] += 1
                continue
            report["records"] += 1
            records.append(rec)
    return records, report


class ClassTally:
    """Mirror of Server::ClassTally — shed vs rejected split by reason."""

    def __init__(self):
        self.total = 0
        self.admitted = 0
        self.degraded = 0
        self.rejected = 0
        self.shed = 0

    def observe(self, rec):
        self.total += 1
        action = rec.get("action")
        if action == "admit":
            self.admitted += 1
        elif action == "degrade":
            self.degraded += 1
        elif action == "reject":
            if rec.get("reject", "none") in SHED_REASONS:
                self.shed += 1
            else:
                self.rejected += 1


def render_classes(tallies):
    """Byte-identical to Server::RenderClasses (same StrFormat strings)."""
    total = sum(t.total for t in tallies.values())
    out = "classes: %d request(s)\n" % total
    for name in BOUND_CLASSES:
        t = tallies[name]
        shed_rate = t.shed / t.total if t.total > 0 else 0.0
        out += ("  %s n=%d admitted=%d degraded=%d rejected=%d shed=%d "
                "shed_rate=%.4f\n"
                % (name, t.total, t.admitted, t.degraded, t.rejected, t.shed,
                   shed_rate))
    return out


def percentile(values, p):
    """Same nearest-rank rule as bench_serve's Percentile()."""
    if not values:
        return 0.0
    ordered = sorted(values)
    return ordered[int(p * (len(ordered) - 1))]


def fnv1a64(data):
    h = FNV_OFFSET
    for b in data:
        h = ((h ^ b) * FNV_PRIME) & MASK64
    return h


def certificate_payload(cert):
    """Byte-for-byte mirror of obs::CertificatePayload."""
    parts = [
        "fp=" + cert.get("query_fingerprint", ""),
        "qid=" + cert.get("query_id", ""),
        "q=" + cert.get("query", ""),
        "bound=" + json_number(cert.get("static_bound", -1.0)),
        "fetches=" + str(cert.get("actual_fetches", 0)),
        "lookups=" + str(cert.get("index_lookups", 0)),
        "tripped=" + ("1" if cert.get("tripped", False) else "0"),
        "trip=" + cert.get("trip_reason", ""),
        "verdict=" + cert.get("verdict", ""),
    ]
    for op in cert.get("ops", []):
        parts.append(
            "op=%s,%d,%d,%d,%s"
            % (
                op.get("label", ""),
                op.get("rows_out", 0),
                op.get("tuples_fetched", 0),
                op.get("index_lookups", 0),
                json_number(op.get("static_bound", -1.0)),
            )
        )
    return "|".join(parts)


def verify_certificate(cert):
    if cert.get("verdict") not in VERDICTS:
        return False
    try:
        signature = int(cert.get("signature", ""), 16)
    except ValueError:
        return False
    return signature == fnv1a64(certificate_payload(cert).encode("utf-8"))


def load_journal(path):
    """query_id -> (certificate, sealed?) over every surviving generation."""
    by_qid = {}
    for file in generations_oldest_first(path):
        try:
            with open(file, "r", encoding="utf-8") as f:
                lines = f.read().splitlines()
        except OSError as e:
            print(f"error: cannot read {file}: {e}", file=sys.stderr)
            sys.exit(2)
        for line in lines:
            if not line.strip():
                continue
            try:
                cert = json.loads(line)
            except ValueError:
                continue
            if not isinstance(cert, dict) or "query_id" not in cert:
                continue
            by_qid[cert["query_id"]] = (cert, verify_certificate(cert))
    return by_qid


def phase_section(records):
    print("phase latency (ms):")
    by_class = {name: [] for name in BOUND_CLASSES}
    for rec in records:
        by_class[rec["class"]].append(rec)
    for name in BOUND_CLASSES:
        recs = by_class[name]
        if not recs:
            continue
        row = ["  %s n=%d" % (name, len(recs))]
        for phase in ("queue_wait_ms", "exec_ms", "e2e_ms"):
            values = [r.get(phase, 0.0) for r in recs]
            row.append("%s p50=%s p99=%s"
                       % (phase[:-3], json_number(percentile(values, 0.50)),
                          json_number(percentile(values, 0.99))))
        print("  ".join(row))
    if not records:
        print("  (none)")


def slowest_section(records, top):
    print(f"slowest requests (top {top} by e2e):")
    ranked = sorted(records, key=lambda r: -r.get("e2e_ms", 0.0))[:top]
    if not ranked:
        print("  (none)")
    for rec in ranked:
        tag = rec.get("client_tag", "")
        print("  %s %s %s e2e=%sms queue_wait=%sms exec=%sms fetches=%d%s"
              % (rec.get("query_id", "?"), rec["class"], rec["action"],
                 json_number(rec.get("e2e_ms", 0.0)),
                 json_number(rec.get("queue_wait_ms", 0.0)),
                 json_number(rec.get("exec_ms", 0.0)),
                 rec.get("fetches", 0),
                 " tag=" + tag if tag else ""))


def slack_section(records):
    # Admission's safety margin in practice: how far under its static
    # Theorem 4.2 bound admitted work actually ran.
    ratios = []
    for rec in records:
        bound = rec.get("static_bound", -1.0)
        if rec["action"] in ("admit", "degrade") and bound > 0:
            ratios.append(rec.get("fetches", 0) / bound)
    print("bound slack (fetches / static bound, admitted+degraded):")
    if not ratios:
        print("  (none)")
        return
    print("  n=%d mean=%.4f p50=%.4f max=%.4f"
          % (len(ratios), sum(ratios) / len(ratios),
             percentile(ratios, 0.50), max(ratios)))


def tags_section(records):
    by_tag = {}
    for rec in records:
        tag = rec.get("client_tag", "")
        if tag:
            by_tag[tag] = by_tag.get(tag, 0) + 1
    if not by_tag:
        return
    print("client tags:")
    for tag, count in sorted(by_tag.items(), key=lambda kv: (-kv[1], kv[0])):
        print("  %s n=%d" % (tag, count))
    print()


def journal_section(records, journal_path):
    by_qid = load_journal(journal_path)
    joined = sealed = tampered = fetch_mismatches = 0
    missing = []
    for rec in records:
        qid = rec.get("query_id", "")
        if qid not in by_qid:
            missing.append(qid)
            continue
        joined += 1
        cert, ok = by_qid[qid]
        if ok:
            sealed += 1
        else:
            tampered += 1
        # Both channels observed the same run; the sealed fetch count and
        # the observational one must agree (refusals journal 0 fetches).
        if cert.get("actual_fetches", 0) != rec.get("fetches", 0):
            fetch_mismatches += 1
    print(f"journal join ({journal_path}):")
    print("  joined=%d (sealed=%d, tampered=%d)  missing=%d  "
          "fetch_mismatches=%d"
          % (joined, sealed, tampered, len(missing), fetch_mismatches))
    for qid in missing[:5]:
        print(f"  missing from journal: {qid}")
    if len(missing) > 5:
        print(f"  ... and {len(missing) - 5} more")


def main():
    parser = argparse.ArgumentParser(
        description="serving report over a structured access log")
    parser.add_argument("access_log", help="SCALEIN_ACCESS_LOG_PATH file")
    parser.add_argument("--journal", default=None,
                        help="SCALEIN_JOURNAL_PATH file to join by query_id")
    parser.add_argument("--top", type=int, default=5,
                        help="requests shown in the slowest section")
    args = parser.parse_args()

    records, report = load_records(args.access_log)

    print(f"serve report: {args.access_log}")
    print("files: %d  records: %d (%d malformed)"
          % (report["files"], report["records"], report["malformed"]))
    print()

    # The server's `classes` command, byte for byte.
    tallies = {name: ClassTally() for name in BOUND_CLASSES}
    for rec in records:
        tallies[rec["class"]].observe(rec)
    sys.stdout.write(render_classes(tallies))
    print()

    phase_section(records)
    print()
    slowest_section(records, args.top)
    print()
    slack_section(records)
    print()
    tags_section(records)
    if args.journal:
        journal_section(records, args.journal)
    return 0


if __name__ == "__main__":
    sys.exit(main())
