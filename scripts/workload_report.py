#!/usr/bin/env python3
"""Offline workload report over the shell's persistent JSONL journal.

    workload_report.py <journal.jsonl> [--top N] [--slack-threshold X]

The journal is the file written by the shell when SCALEIN_JOURNAL_PATH is
set: one JSON object per line — a sealed access certificate plus the
non-sealed ``latency_ms`` / ``noncontrollable`` siblings — with size-based
rotation ``path`` -> ``path.1`` -> ``path.2``. The report reads every
surviving generation oldest-first, exactly like JournalStore::Load, so its
aggregates match a shell that replayed the same files.

Every certificate's FNV-1a seal is re-verified here, in Python, with no
engine involved: the payload string is reconstructed byte-for-byte
(numbers printed with C's ``%.6g``, the same format CertificatePayload
uses) and hashed. Tampered entries are counted and excluded from the
aggregates, never fatal.

Sections reported:

  * header — files read, entry/sealed/tampered/malformed counts;
  * workload top — one line per query fingerprint, byte-identical to the
    shell's ``workload top N`` rendering, so online and offline views can
    be diffed directly;
  * views would help — recurring classes that are non-controllable or
    exceed their static bound, ranked by how often; materializing a view
    (paper sec. on scale-independent views) would make these controllable;
  * FD-aware bounds would help — classes whose static Theorem 4.2 bound is
    a large multiple of what they actually fetch; functional-dependency
    reasoning would tighten the bound without touching the data.

Exit status: 0 report printed, 2 unreadable input. Like trace_report.py
this is a forensic tool, not a gate.
"""

import argparse
import os
import sys

import json

FNV_OFFSET = 0xCBF29CE484222325
FNV_PRIME = 0x100000001B3
MASK64 = (1 << 64) - 1

VERDICTS = ("within-bound", "exceeded", "no-static-bound", "tripped")


def json_number(value):
    """C's JsonNumber: snprintf("%.6g") — Python's %-formatting matches."""
    return "%.6g" % value


def derive_verdict(cert):
    if cert.get("tripped", False):
        return "tripped"
    bound = cert.get("static_bound", -1.0)
    if bound < 0:
        return "no-static-bound"
    return "within-bound" if cert.get("actual_fetches", 0) <= bound else "exceeded"


def certificate_payload(cert):
    """Byte-for-byte mirror of obs::CertificatePayload."""
    parts = [
        "fp=" + cert.get("query_fingerprint", ""),
        "qid=" + cert.get("query_id", ""),
        "q=" + cert.get("query", ""),
        "bound=" + json_number(cert.get("static_bound", -1.0)),
        "fetches=" + str(cert.get("actual_fetches", 0)),
        "lookups=" + str(cert.get("index_lookups", 0)),
        "tripped=" + ("1" if cert.get("tripped", False) else "0"),
        "trip=" + cert.get("trip_reason", ""),
        "verdict=" + cert.get("verdict", ""),
    ]
    for op in cert.get("ops", []):
        parts.append(
            "op=%s,%d,%d,%d,%s"
            % (
                op.get("label", ""),
                op.get("rows_out", 0),
                op.get("tuples_fetched", 0),
                op.get("index_lookups", 0),
                json_number(op.get("static_bound", -1.0)),
            )
        )
    return "|".join(parts)


def fnv1a64(data):
    h = FNV_OFFSET
    for b in data:
        h = ((h ^ b) * FNV_PRIME) & MASK64
    return h


def verify_certificate(cert):
    if cert.get("verdict") not in VERDICTS:
        return False
    if cert.get("verdict") != derive_verdict(cert):
        return False
    try:
        signature = int(cert.get("signature", ""), 16)
    except ValueError:
        return False
    return signature == fnv1a64(certificate_payload(cert).encode("utf-8"))


def journal_files(path):
    """Surviving generations oldest-first: path.2, path.1, path."""
    files = []
    for gen in (2, 1, 0):
        candidate = path if gen == 0 else "%s.%d" % (path, gen)
        if os.path.exists(candidate):
            files.append(candidate)
    return files


def load_entries(path):
    files = journal_files(path)
    if not files:
        print(f"error: no journal at {path} (nor rotated generations)",
              file=sys.stderr)
        sys.exit(2)
    entries = []
    report = {"files": len(files), "entries": 0, "sealed": 0, "tampered": 0,
              "malformed": 0}
    for file in files:
        try:
            with open(file, "r", encoding="utf-8") as f:
                lines = f.read().splitlines()
        except OSError as e:
            print(f"error: cannot read {file}: {e}", file=sys.stderr)
            sys.exit(2)
        for lineno, line in enumerate(lines, 1):
            if not line.strip():
                continue
            try:
                cert = json.loads(line)
            except ValueError:
                report["malformed"] += 1
                continue
            if not isinstance(cert, dict) or "verdict" not in cert:
                report["malformed"] += 1
                continue
            report["entries"] += 1
            if verify_certificate(cert):
                report["sealed"] += 1
                entries.append(cert)
            else:
                report["tampered"] += 1
                print(f"warning: {file}:{lineno}: seal mismatch, excluded",
                      file=sys.stderr)
    return entries, report


class FingerprintStats:
    """The deterministic slice of WorkloadFingerprintStats."""

    def __init__(self, fingerprint):
        self.fingerprint = fingerprint
        self.sample_query = ""
        self.count = 0
        self.within = 0
        self.exceeded = 0
        self.tripped = 0
        self.no_bound = 0
        self.noncontrollable = 0
        self.total_fetches = 0
        self.accuracy_sum = 0.0
        self.slack_sum = 0.0
        self.accuracy_count = 0

    def observe(self, cert):
        if self.count == 0:
            self.sample_query = cert.get("query", "")
        self.count += 1
        verdict = cert.get("verdict")
        if verdict == "within-bound":
            self.within += 1
        elif verdict == "exceeded":
            self.exceeded += 1
        elif verdict == "tripped":
            self.tripped += 1
        else:
            self.no_bound += 1
        if cert.get("noncontrollable", False):
            self.noncontrollable += 1
        fetches = cert.get("actual_fetches", 0)
        self.total_fetches += fetches
        bound = cert.get("static_bound", -1.0)
        if bound > 0 and not cert.get("tripped", False):
            self.accuracy_sum += fetches / bound
            self.slack_sum += bound / max(fetches, 1)
            self.accuracy_count += 1

    def line(self):
        """Byte-identical to the C++ FormatFingerprintLine (sans newline)."""
        accuracy = ("%.4f" % (self.accuracy_sum / self.accuracy_count)
                    if self.accuracy_count > 0 else "-")
        return ("  %s n=%d within=%d exceeded=%d tripped=%d nobound=%d "
                "nonctrl=%d fetches=%d accuracy=%s"
                % (self.fingerprint, self.count, self.within, self.exceeded,
                   self.tripped, self.no_bound, self.noncontrollable,
                   self.total_fetches, accuracy))

    def mean_slack(self):
        return (self.slack_sum / self.accuracy_count
                if self.accuracy_count > 0 else -1.0)


def aggregate(entries):
    stats = {}
    noncontrollable = 0
    for cert in entries:
        fp = cert.get("query_fingerprint", "")
        stats.setdefault(fp, FingerprintStats(fp)).observe(cert)
        if cert.get("noncontrollable", False):
            noncontrollable += 1
    return stats, noncontrollable


def main():
    parser = argparse.ArgumentParser(
        description="workload report over a persistent shell journal")
    parser.add_argument("journal", help="SCALEIN_JOURNAL_PATH file")
    parser.add_argument("--top", type=int, default=10,
                        help="classes shown in the workload section")
    parser.add_argument("--slack-threshold", type=float, default=10.0,
                        help="mean bound/actual above which FD-aware bounds "
                             "are recommended")
    args = parser.parse_args()

    entries, report = load_entries(args.journal)
    stats, noncontrollable = aggregate(entries)

    print(f"workload report: {args.journal}")
    print("files: %d  entries: %d (%d sealed, %d tampered, %d malformed)"
          % (report["files"], report["entries"], report["sealed"],
             report["tampered"], report["malformed"]))
    print()

    # The shell's `workload top N` rendering, byte for byte.
    ranked = sorted(stats.values(), key=lambda s: (-s.count, s.fingerprint))
    print("workload: %d fingerprint(s), %d observation(s), "
          "%d non-controllable" % (len(stats), len(entries), noncontrollable))
    for s in ranked[:args.top]:
        print(s.line())
    print()

    # Classes a materialized view would rescue: recurring evaluations that
    # are either rejected as non-controllable or fetch past their bound.
    helped = [s for s in stats.values() if s.noncontrollable + s.exceeded > 0]
    helped.sort(key=lambda s: (-(s.noncontrollable + s.exceeded),
                               s.fingerprint))
    print("views would help (non-controllable or bound-exceeding classes):")
    if not helped:
        print("  (none)")
    for s in helped:
        print("  %s score=%d nonctrl=%d exceeded=%d n=%d  %s"
              % (s.fingerprint, s.noncontrollable + s.exceeded,
                 s.noncontrollable, s.exceeded, s.count, s.sample_query))
    print()

    # Classes whose Theorem 4.2 bound is wildly pessimistic: an FD-aware
    # bound (or tighter access constraints) would admit them under a much
    # smaller SLA budget.
    slack = [s for s in stats.values()
             if s.mean_slack() >= args.slack_threshold]
    slack.sort(key=lambda s: (-s.mean_slack(), s.fingerprint))
    print("FD-aware bounds would help (mean slack >= %g):"
          % args.slack_threshold)
    if not slack:
        print("  (none)")
    for s in slack:
        print("  %s slack=%.1fx n=%d accuracy=%.4f  %s"
              % (s.fingerprint, s.mean_slack(), s.count,
                 s.accuracy_sum / s.accuracy_count, s.sample_query))
    return 0


if __name__ == "__main__":
    sys.exit(main())
