#!/usr/bin/env python3
"""Regression gate over BENCH_*.json sidecars.

Two modes:

  Diff mode — compare a current sidecar against a baseline:
      bench_regress.py baseline.json current.json
  Any fetch-class counter (``*tuples_fetched``, ``*index_lookups``,
  ``*fetched*``, ``*rows``) that grew versus the baseline is a regression
  (exit 1): scale independence means the access pattern is deterministic, so
  these counters must be bit-stable run to run. Timing keys (``*_ms``) are
  reported but never fail the diff — wall clock belongs to the machine, not
  the patch.

  Bound-check mode — verify invariants inside one or more sidecars:
      bench_regress.py --check-bounds a.json [b.json ...] [--overhead-pct 3]
  Violations are accumulated across *all* sidecars and printed together
  before the script exits non-zero, so a compiled regression and a serve
  regression landing in the same PR surface in one CI run instead of two.
  Checks that every measured fetch count stays within its recorded static
  Theorem 4.2 bound (``base_tuples_fetched <= static_bound`` per scale, and
  per-op ``opN.tuples_fetched <= opN.static_bound * max(1, opN.index_lookups)``
  — per-op bounds are per index probe), and that the armed-
  but-untripped resource governor costs at most ``--overhead-pct`` percent:
  sum(bounded_governed_ms) <= (1 + pct/100) * sum(bounded_ms), summed across
  scales so single-scale timer noise averages out. Sidecars carrying
  ``serve.instr.*`` keys (bench_serve) get the same percentage cap (+1 ms
  cushion) on the access-log-armed batch versus the plain batch.

  Sidecars with thread-scaling groups (a ``threads`` leaf, written by
  bench_parallel_scaling) get four more gates: every fetch-class counter
  and the Theorem 4.2 ``verdict`` must be byte-identical across thread
  counts (parallelism must not perturb accounting); the 4-thread batch must
  run >= 2x faster than 1-thread when the host reports >= 4 hardware
  threads; the armed-but-untripped governed batch (``governed_batch_ms``)
  may cost at most 5% (+1 ms cushion) over the ungoverned batch at the
  widest thread group the host runs unoversubscribed; and a warm
  analysis-cache lookup
  (``cache.warm_analysis_ms``) must be >= 5x cheaper than a cold
  derivation.

  Sidecars carrying ``compiled.*`` keys (bench_compiled) gate the bytecode
  VM: ``compiled.plain_speedup`` must be >= 1.5 (the repeated-query serve
  path is the tentpole claim), ``compiled.embedded_speedup`` must be >= 1.0
  (the Proposition 4.5 chase is index-probe-bound, so the VM's win is
  smaller there — but it must never regress), and ``compiled.certs_equal``
  must be 1 (sealed certificate payloads byte-identical across engines).

Exit status: 0 clean, 1 regression/violation, 2 usage or unreadable input.
"""

import argparse
import json
import sys


FETCH_KEY_MARKERS = ("tuples_fetched", "index_lookups", "fetched", "rows")


def load_metrics(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_regress: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        print(f"bench_regress: {path} has no 'metrics' object", file=sys.stderr)
        sys.exit(2)
    return metrics


def as_number(value):
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


def is_fetch_key(key):
    last = key.rsplit(".", 1)[-1]
    return any(marker in last for marker in FETCH_KEY_MARKERS)


def diff_mode(baseline_path, current_path):
    baseline = load_metrics(baseline_path)
    current = load_metrics(current_path)
    failures = []
    for key, base_value in sorted(baseline.items()):
        base_num = as_number(base_value)
        if base_num is None or key not in current:
            continue
        cur_num = as_number(current[key])
        if cur_num is None:
            continue
        if key.endswith("_ms"):
            if base_num > 0:
                delta = 100.0 * (cur_num - base_num) / base_num
                if abs(delta) >= 10.0:
                    print(f"  note  {key}: {base_num:g} -> {cur_num:g} ms "
                          f"({delta:+.1f}%)")
            continue
        if is_fetch_key(key) and cur_num > base_num:
            failures.append(f"{key}: {base_num:g} -> {cur_num:g}")
    missing = sorted(k for k in baseline if k not in current)
    for key in missing:
        if is_fetch_key(key):
            failures.append(f"{key}: present in baseline, missing in current")
    if failures:
        print(f"FAIL: {len(failures)} fetch-counter regression(s) "
              f"({baseline_path} -> {current_path}):")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"OK: no fetch-counter regressions ({baseline_path} -> "
          f"{current_path})")
    return 0


def check_bounds_one(path, overhead_pct):
    """Returns the list of violations found in one sidecar (empty = clean)."""
    metrics = load_metrics(path)
    failures = []

    # Group keys by their dotted prefix ("persons_3000.", "...op2.") so each
    # fetch count is compared against the static bound recorded next to it.
    groups = {}
    for key, value in metrics.items():
        prefix, _, leaf = key.rpartition(".")
        groups.setdefault(prefix, {})[leaf] = value

    for prefix, leaves in sorted(groups.items()):
        bound = as_number(leaves.get("static_bound"))
        if bound is None or bound < 0:
            continue
        # Per-operator groups (the ones carrying a `label`) record a
        # *per-lookup* bound: an atom driven by k index probes may fetch up
        # to k * bound tuples in total. Scale-level groups record the
        # query's M itself and are compared strictly.
        if "label" in leaves:
            lookups = as_number(leaves.get("index_lookups")) or 0
            bound = bound * max(1.0, lookups)
        for fetch_leaf in ("base_tuples_fetched", "tuples_fetched"):
            fetched = as_number(leaves.get(fetch_leaf))
            if fetched is not None and fetched > bound:
                failures.append(
                    f"{prefix}.{fetch_leaf} = {fetched:g} exceeds "
                    f"allowed bound = {bound:g}")

    governed_ms = 0.0
    bounded_ms = 0.0
    for prefix, leaves in sorted(groups.items()):
        g = as_number(leaves.get("bounded_governed_ms"))
        b = as_number(leaves.get("bounded_ms"))
        if g is not None and b is not None and b > 0:
            governed_ms += g
            bounded_ms += b
    if bounded_ms > 0:
        overhead = 100.0 * (governed_ms - bounded_ms) / bounded_ms
        print(f"governor overhead: {overhead:+.2f}% "
              f"(governed {governed_ms:.4f} ms vs bounded {bounded_ms:.4f} ms,"
              f" limit {overhead_pct:g}%)")
        if overhead > overhead_pct:
            failures.append(
                f"governor overhead {overhead:.2f}% exceeds "
                f"{overhead_pct:g}% cap")

    # Serve instrumentation overhead: the access-log-armed batch may cost at
    # most --overhead-pct over the plain batch (+1 ms absolute cushion so
    # sub-millisecond batches don't trip on timer granularity), mirroring
    # the governed-parallel gate. Written by bench_serve.
    plain = as_number(metrics.get("serve.instr.plain_ms"))
    instrumented = as_number(metrics.get("serve.instr.instrumented_ms"))
    if plain and instrumented is not None:
        overhead = 100.0 * (instrumented - plain) / plain
        print(f"serve instrumentation overhead: {overhead:+.2f}% "
              f"(instrumented {instrumented:.3f} ms vs plain {plain:.3f} ms, "
              f"limit {overhead_pct:g}%)")
        if instrumented > plain * (1.0 + overhead_pct / 100.0) + 1.0:
            failures.append(
                f"access-log instrumentation costs {overhead:.2f}% over the "
                f"plain batch (need <= {overhead_pct:g}% + 1 ms cushion)")

    failures += check_thread_scaling(metrics, groups)
    failures += check_compiled(metrics)
    return failures


def check_compiled(metrics):
    """Gates for sidecars with compiled.* keys (bench_compiled).

    The tentpole claim: bytecode execution of a cached bounded plan beats
    the option-tree interpreter by >= 1.5x on the plain FO hot path. The
    embedded chase only has to not regress (>= 1.0x), and the sealed
    certificate payloads must be byte-identical across both engines.
    """
    failures = []
    plain = as_number(metrics.get("compiled.plain_speedup"))
    if plain is not None:
        print(f"compiled plain speedup: {plain:.2f}x (need >= 1.5x)")
        if plain < 1.5:
            failures.append(
                f"compiled plain path only {plain:.2f}x faster than the "
                f"interpreter (need >= 1.5x)")
    embedded = as_number(metrics.get("compiled.embedded_speedup"))
    if embedded is not None:
        print(f"compiled embedded speedup: {embedded:.2f}x (need >= 1x)")
        if embedded < 1.0:
            failures.append(
                f"compiled embedded chase is {embedded:.2f}x the interpreter "
                f"— a regression (need >= 1x)")
    certs = as_number(metrics.get("compiled.certs_equal"))
    if certs is not None and certs != 1:
        failures.append(
            "compiled.certs_equal != 1: sealed certificate payloads differ "
            "between the interpreter and the bytecode VM")
    return failures


def check_bounds_mode(paths, overhead_pct):
    """Checks every sidecar, printing all violations before exiting."""
    total = 0
    for path in paths:
        failures = check_bounds_one(path, overhead_pct)
        if failures:
            print(f"FAIL: {len(failures)} bound violation(s) in {path}:")
            for f in failures:
                print(f"  {f}")
            total += len(failures)
        else:
            print(f"OK: bounds hold in {path}")
    if total:
        print(f"FAIL: {total} bound violation(s) across "
              f"{len(paths)} sidecar(s)")
        return 1
    return 0


def check_thread_scaling(metrics, groups):
    """Gates for sidecars with thread-scaling groups (bench_parallel_scaling).

    Determinism: all fetch-class counters and the recorded verdict must be
    identical across thread counts. Speedup: 4 threads >= 2x over 1 thread,
    enforced only on hosts with >= 4 hardware threads (a 1-core runner can
    verify determinism but not scaling). Cache: warm lookup <= cold / 5.
    """
    failures = []
    thread_groups = {
        prefix: leaves for prefix, leaves in groups.items()
        if as_number(leaves.get("threads")) is not None
    }
    if thread_groups:
        reference_prefix = min(
            thread_groups, key=lambda p: as_number(thread_groups[p]["threads"]))
        reference = thread_groups[reference_prefix]
        for prefix, leaves in sorted(thread_groups.items()):
            if prefix == reference_prefix:
                continue
            for leaf, ref_value in reference.items():
                if leaf in ("threads", "batch_ms"):
                    continue
                if not (is_fetch_key(leaf) or leaf == "verdict"):
                    continue
                if leaves.get(leaf) != ref_value:
                    failures.append(
                        f"{prefix}.{leaf} = {leaves.get(leaf)!r} differs from "
                        f"{reference_prefix}.{leaf} = {ref_value!r} — "
                        f"accounting must not depend on thread count")

        hw = as_number(metrics.get("hw_threads")) or 1
        by_threads = {
            int(as_number(leaves["threads"])): leaves
            for leaves in thread_groups.values()
        }
        if hw >= 4 and 1 in by_threads and 4 in by_threads:
            t1 = as_number(by_threads[1].get("batch_ms"))
            t4 = as_number(by_threads[4].get("batch_ms"))
            if t1 and t4:
                speedup = t1 / t4
                print(f"parallel speedup at 4 threads: {speedup:.2f}x "
                      f"(need >= 2x)")
                if speedup < 2.0:
                    failures.append(
                        f"4-thread batch is only {speedup:.2f}x faster than "
                        f"1-thread (need >= 2x)")
        elif hw < 4:
            print(f"note: host has {hw:g} hardware thread(s); "
                  f"skipping the parallel-speedup gate")

        # Governed-parallelism overhead: an armed-but-untripped governor
        # (ledger leases + charge-log replay) may cost at most 5% over the
        # ungoverned batch. Measured at the widest thread group the host can
        # run without oversubscription — beyond hw_threads the lanes time-
        # slice one core and the timing measures the scheduler, not the
        # protocol. A 1 ms absolute cushion keeps sub-millisecond batches
        # from tripping on timer granularity alone.
        runnable = [t for t in by_threads if 1 < t <= hw]
        if runnable:
            widest = max(runnable)
            ungov = as_number(by_threads[widest].get("batch_ms"))
            gov = as_number(by_threads[widest].get("governed_batch_ms"))
            if ungov and gov is not None:
                overhead = 100.0 * (gov - ungov) / ungov
                print(f"governed-parallel overhead at {widest} threads: "
                      f"{overhead:+.2f}% (governed {gov:.3f} ms vs "
                      f"ungoverned {ungov:.3f} ms, limit 5%)")
                if gov > ungov * 1.05 + 1.0:
                    failures.append(
                        f"governed batch at {widest} threads is "
                        f"{overhead:.2f}% slower than ungoverned "
                        f"(need <= 5% + 1 ms cushion)")
        else:
            print(f"note: host has {hw:g} hardware thread(s); skipping the "
                  f"governed-overhead gate (no multi-lane group fits)")

    cold = as_number(metrics.get("cache.cold_analysis_ms"))
    warm = as_number(metrics.get("cache.warm_analysis_ms"))
    if cold is not None and warm is not None and warm > 0:
        speedup = cold / warm
        print(f"analysis cache speedup: {speedup:.1f}x (need >= 5x)")
        if speedup < 5.0:
            failures.append(
                f"warm analysis lookup only {speedup:.1f}x faster than cold "
                f"derivation (need >= 5x)")
    return failures


def main():
    parser = argparse.ArgumentParser(
        description="diff BENCH_*.json sidecars / verify fetch bounds")
    parser.add_argument("files", nargs="+",
                        help="baseline.json current.json, or one or more "
                             "files with --check-bounds")
    parser.add_argument("--check-bounds", action="store_true",
                        help="verify static-bound, governor-overhead, and "
                             "compiled-speedup invariants inside each given "
                             "sidecar, accumulating all violations")
    parser.add_argument("--overhead-pct", type=float, default=3.0,
                        help="max governed-vs-ungoverned overhead percent "
                             "(default 3)")
    args = parser.parse_args()

    if args.check_bounds:
        return check_bounds_mode(args.files, args.overhead_pct)
    if len(args.files) != 2:
        parser.error("diff mode takes baseline.json current.json")
    return diff_mode(args.files[0], args.files[1])


if __name__ == "__main__":
    sys.exit(main())
